"""Setuptools shim.

The canonical project metadata lives in ``pyproject.toml``.  This file
exists so that ``pip install -e .`` works in fully offline environments
where the ``wheel`` package is unavailable and pip falls back to the
legacy ``setup.py develop`` code path.
"""

from setuptools import setup

setup()
