"""Packed inference: PackingPipeline -> PackedModel -> batched forward pass.

This example shows the model-level consumer of the packing flow end to
end:

1. build a (sparsified) LeNet-5 in shift + pointwise form,
2. pack every packable layer through the :class:`PackingPipeline`
   (Algorithm 2 grouping + Algorithm 3 conflict pruning + packing +
   tiling, optionally fanned out over the pipeline's persistent worker
   pool),
3. assemble the per-layer packings into a :class:`PackedModel`,
4. run a batched forward pass through the packed representations and
   check it against the dense reference forward — bit-identical in
   ``"exact"`` mode, numerically equal under the MX-cell routing
   semantics (``"mx"`` mode),
5. read the model-level tile / cycle accounting off the systolic timing
   plan.

Run with:  python examples/packed_inference.py
"""

from __future__ import annotations

import copy

import numpy as np

from repro.combining import PackedModel, PackingPipeline, PipelineConfig
from repro.models import build_model


def main() -> None:
    rng = np.random.default_rng(0)

    # A LeNet-5 slice whose pointwise weights are ~80% pruned, the regime
    # where column combining pays off.
    model = build_model("lenet5", in_channels=1, num_classes=10, scale=1.0,
                        image_size=12, rng=np.random.default_rng(1))
    for _, layer in model.packable_layers():
        weights = layer.weight.data
        weights *= rng.random(weights.shape) < 0.2
    print("model:", ", ".join(f"{name} {layer.weight.data.shape}"
                              for name, layer in model.packable_layers()))

    # Pack every layer through the pipeline.  The pipeline's process pool
    # is persistent — reused across run() calls until the context exits.
    config = PipelineConfig(alpha=8, gamma=0.5, workers=2)
    with PackingPipeline(config) as pipeline:
        packed = PackedModel.from_model(model, pipeline=pipeline)
    for name, matrix in packed.packed_layers():
        print(f"  {name}: {matrix.original_shape[1]} columns -> "
              f"{matrix.num_groups} groups, "
              f"packing efficiency {matrix.packing_efficiency():.0%}")

    # Batched forward pass through the packed representations.
    images = rng.normal(size=(8, 1, 12, 12))
    outputs = packed.forward(images)            # bit-exact dense realization
    mx_outputs = packed.forward(images, mode="mx")  # MX-cell routing

    # Dense reference: the same model holding the conflict-pruned weights.
    reference = copy.deepcopy(model)
    for (_, layer), (_, sparse) in zip(reference.packable_layers(),
                                       packed.to_sparse()):
        layer.weight.data = sparse
    reference.eval()
    expected = reference.forward(images)

    exact_match = np.array_equal(outputs, expected)
    mx_close = np.allclose(mx_outputs, expected, rtol=1e-10, atol=1e-12)
    print(f"exact mode bit-identical to dense reference: {exact_match}")
    print(f"mx mode matches dense reference numerically: {mx_close}")
    print(f"predictions: {packed.predict(images).tolist()}")

    # Model-level accounting from the systolic timing plan (the spatial
    # sizes were observed during the forward pass).
    plan = packed.plan()
    summary = packed.summary(plan)
    print(f"packed model totals: {summary['num_layers']} layers, "
          f"{summary['total_tiles']} tiles, {summary['total_cycles']} cycles, "
          f"utilization {summary['utilization']:.0%}, "
          f"packing efficiency {summary['packing_efficiency']:.0%}, "
          f"MX fan-in {summary['multiplexing_degree']}")


if __name__ == "__main__":
    main()
