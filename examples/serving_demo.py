"""Serving demo: save packed artifacts -> start a server -> fire requests.

The full serving path of the reproduction, end to end:

1. build two sparsified LeNet-5 variants, pack them through the
   :class:`PackingPipeline`, quantize + calibrate one of them,
2. persist both as versioned packed artifacts
   (:func:`~repro.combining.serialization.save_packed`, uncompressed so
   they are memory-mappable) — the format a server cold-starts from
   without re-running the pipeline,
3. register the artifacts by name in a
   :class:`~repro.serving.registry.ModelRegistry` (lazy load, LRU-bounded
   residency) and start an
   :class:`~repro.serving.server.InferenceServer` whose
   :class:`~repro.serving.batcher.DynamicBatcher` coalesces single-sample
   requests into batched forwards,
4. fire a mixed-model request stream from concurrent client threads, and
   check every response is bit-identical to the direct batch-invariant
   forward on that request alone — dynamic batching changes throughput,
   never bits,
5. serve the same stream again on the **process backend** and check the
   responses are bit-identical across backends too,
6. **hot-swap** the float model to a retrained variant while clients are
   mid-flight (:meth:`~repro.serving.registry.ModelRegistry.swap`): the
   new artifact loads off to the side and the entry flips atomically, so
   in-flight requests finish on the old immutable plan, later ones serve
   the new one, and every response is bit-identical to one of the two
   artifacts' direct forwards — zero downtime, zero ambiguous bits,
7. read the per-model latency / batch / systolic-cycle accounting off the
   servers,
8. turn the **observability layer** on (``profile=True`` + request
   tracing) and serve the stream once more: every response stays
   bit-identical to the unobserved run, while the server now reports
   p50/p90/p99 latency digests from exactly-mergeable histograms, the
   batcher's flush-reason split, per-layer wall time, and per-request
   span timelines (enqueue -> coalesce -> forward -> respond),
9. attach the **operational layer**: declare SLO rules (p99 service
   latency, error rate, queue depth), attach the live HTTP exporter on
   an ephemeral port (``server.serve_metrics(port=0)``), scrape
   ``/metrics`` and ``/health`` over real HTTP while the server runs,
   and read the rolling-window quantiles, per-rule verdicts, and the
   lifecycle event log (model loads, exporter start, ...) back off the
   endpoint.

Execution architecture
----------------------

Serving runs on immutable execution plans
(:class:`~repro.combining.execplan.ExecutionPlan`): the registry compiles
(or, for V2 artifacts, directly loads) a read-only, picklable op tree per
model, so forwards never install state into a shared module graph and
need no per-model lock — worker threads run batches for the *same* model
concurrently.  With ``backend="process"`` the server instead ships
``(artifact path, mode, batch)`` to persistent worker processes; each
worker memory-maps the uncompressed artifact (``load_plan(mmap="auto")``)
so all workers share one resident copy of the packed arrays through the
page cache.  Pick the process backend for CPU-bound sustained load on
artifact-backed models, where the GIL caps thread scaling; pick threads
for live (``add()``-registered) models or low request rates.  Either way
the bits never change.

What makes the bits batch-independent is the **batch-invariant kernel**
(:mod:`repro.combining.kernels`).  A general BLAS gemm picks its
blocking — and therefore its float summation order — from the full
operand shapes, so a sample's bits change with the batch it rides in.
The server's default ``kernel="blocked"`` pins the whole schedule from
weight / spatial dimensions only: the pointwise contraction runs one
k-blocked ``(n, c) @ (c, H*W)`` gemm per sample, the dense head runs
fixed 16-row tiles, and per-k-block partials sum left to right.  BLAS
never sees the batch size, so splitting a batch concatenates to the
exact whole-batch bits — while the inner blocks still dispatch to BLAS,
measuring ~3.8x faster than the retained ``kernel="loops"`` einsum
reference on the ResNet-20 serving shapes (at or below the raw batched
einsum's own time there; see ``benchmarks/test_bench_serving.py``).

Run with:  python examples/serving_demo.py
"""

from __future__ import annotations

import tempfile
import threading
from pathlib import Path

import numpy as np

from repro.combining import PipelineConfig, PackedModel, QuantizedPackedModel
from repro.models import build_model
from repro.serving import (
    InferenceServer,
    ModelRegistry,
    load_packed,
    save_packed,
)

MODEL_KWARGS = {"in_channels": 1, "num_classes": 10, "scale": 1.0,
                "image_size": 12}


def build_artifacts(directory: Path) -> dict[str, Path]:
    """Pack two LeNet-5 variants and persist them as packed artifacts."""
    rng = np.random.default_rng(0)
    paths: dict[str, Path] = {}
    model = build_model("lenet5", rng=np.random.default_rng(1), **MODEL_KWARGS)
    for _, layer in model.packable_layers():
        layer.weight.data *= rng.random(layer.weight.data.shape) < 0.2
    packed = PackedModel.from_model(model, PipelineConfig(alpha=8, gamma=0.5))
    spec = {"name": "lenet5", "kwargs": MODEL_KWARGS}
    # compress=False keeps every array memory-mappable: the registry and
    # the process workers map the file instead of copying it.
    paths["lenet5"] = save_packed(packed, directory / "lenet5.packed.npz",
                                  model_spec=spec, compress=False)

    quantized = QuantizedPackedModel(packed, bits=8)
    quantized.calibrate(rng.normal(size=(32, 1, 12, 12)))
    paths["lenet5-int8"] = save_packed(
        quantized, directory / "lenet5.int8.npz", model_spec=spec,
        compress=False)
    for name, path in paths.items():
        print(f"saved artifact {name}: {path.name} "
              f"({path.stat().st_size / 1024:.0f} KiB)")
    return paths


def build_v2_artifact(directory: Path) -> Path:
    """A 'retrained' LeNet-5: same architecture, different weights —
    exactly what a hot-swap target looks like to the registry."""
    rng = np.random.default_rng(9)
    model = build_model("lenet5", rng=np.random.default_rng(8),
                        **MODEL_KWARGS)
    for _, layer in model.packable_layers():
        layer.weight.data *= rng.random(layer.weight.data.shape) < 0.2
    packed = PackedModel.from_model(model, PipelineConfig(alpha=8, gamma=0.5))
    spec = {"name": "lenet5", "kwargs": MODEL_KWARGS}
    return save_packed(packed, directory / "lenet5.v2.packed.npz",
                       model_spec=spec, compress=False)


def build_registry(paths: dict[str, Path]) -> ModelRegistry:
    """A fresh registry over the artifacts (lazy load, LRU residency)."""
    registry = ModelRegistry(max_resident=2)
    registry.register("lenet5", path=paths["lenet5"], mode="exact")
    registry.register("lenet5-int8", path=paths["lenet5-int8"],
                      mode="quantized")
    return registry


def serve_stream(registry: ModelRegistry, requests: list, backend: str
                 ) -> tuple[dict[int, np.ndarray], dict]:
    """Serve the request stream from three client threads; return
    (responses by request index, server stats)."""
    with InferenceServer(registry, max_batch=16, max_wait=0.002,
                         workers=2, backend=backend) as server:
        responses: dict[int, np.ndarray] = {}
        lock = threading.Lock()

        def client(offset: int) -> None:
            # Submit asynchronously, then gather: in-flight requests
            # are what the dynamic batcher coalesces.
            pending = [(index, server.submit(*requests[index]))
                       for index in range(offset, len(requests), 3)]
            for index, request in pending:
                output = request.result(timeout=30.0)
                with lock:
                    responses[index] = output

        threads = [threading.Thread(target=client, args=(offset,))
                   for offset in range(3)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stats = server.stats()
    return responses, stats


def main() -> None:
    rng = np.random.default_rng(42)
    with tempfile.TemporaryDirectory() as tmp:
        paths = build_artifacts(Path(tmp))
        requests = [(name, rng.normal(size=(1, 12, 12)))
                    for _ in range(24) for name in ("lenet5", "lenet5-int8")]

        registry = build_registry(paths)
        responses, stats = serve_stream(registry, requests, backend="thread")

        # Every response must match the direct single-request forward on
        # the loaded plans, bit for bit, however the batcher coalesced.
        exact = registry.get("lenet5")
        int8 = registry.get("lenet5-int8")
        matches = 0
        for index, (name, sample) in enumerate(requests):
            resident = exact if name == "lenet5" else int8
            expected = resident.forward(sample[None])[0]
            matches += np.array_equal(responses[index], expected)
        print(f"thread backend: responses bit-identical to direct forward: "
              f"{matches}/{len(requests)}")

        # The same stream through the process backend: worker processes
        # mmap the artifacts and must produce the same bits.
        process_responses, process_stats = serve_stream(
            build_registry(paths), requests, backend="process")
        matches = sum(
            np.array_equal(responses[index], process_responses[index])
            for index in range(len(requests)))
        print(f"process backend: responses bit-identical to thread backend: "
              f"{matches}/{len(requests)}")

        # Live hot swap: cut "lenet5" over to the retrained variant while
        # clients are mid-flight.  The new artifact loads off to the side
        # (old plan keeps serving — no drain, no downtime) and the entry
        # flips atomically; every response must be bit-identical to one
        # of the two artifacts' direct forwards.
        v2_path = build_v2_artifact(Path(tmp))
        old_direct = load_packed(paths["lenet5"])
        new_direct = load_packed(v2_path)
        swap_registry = build_registry(paths)
        swap_samples = [rng.normal(size=(1, 12, 12)) for _ in range(24)]
        with InferenceServer(swap_registry, max_batch=8, max_wait=0.002,
                             workers=2) as server:
            pending = [server.submit("lenet5", sample)
                       for sample in swap_samples]
            swap_info = swap_registry.swap("lenet5", v2_path)
            outputs = [request.result(timeout=30.0) for request in pending]
        old_count = sum(
            np.array_equal(output,
                           old_direct.forward(sample[None],
                                              batch_invariant=True)[0])
            for sample, output in zip(swap_samples, outputs))
        new_count = sum(
            np.array_equal(output,
                           new_direct.forward(sample[None],
                                              batch_invariant=True)[0])
            for sample, output in zip(swap_samples, outputs))
        print(f"hot swap under traffic: generation "
              f"{swap_info['generation']}, fingerprint "
              f"{swap_info['previous_fingerprint'][:8]} -> "
              f"{swap_info['fingerprint'][:8]}; "
              f"{old_count} responses on the old artifact, {new_count} on "
              f"the new, {len(swap_samples) - old_count - new_count} "
              f"ambiguous")

        for label, run_stats in [("thread", stats), ("process", process_stats)]:
            totals = run_stats["totals"]
            plan_cache = totals["plan_cache"]
            print(f"[{label}] served {totals['requests']} requests in "
                  f"{totals['batches']} batches "
                  f"(mean batch {totals['mean_batch_size']:.1f}), "
                  f"{totals['cycles']} systolic cycles, kernel "
                  f"{run_stats['kernel']}; accounting plan cache "
                  f"{plan_cache['hits']} hits / {plan_cache['misses']} misses")
            for name, model_stats in sorted(run_stats["per_model"].items()):
                print(f"  {name}: {model_stats['requests']} requests, "
                      f"mean queue "
                      f"{model_stats['queued_seconds']['mean'] * 1e3:.2f} ms, "
                      f"mean service "
                      f"{model_stats['service_seconds']['mean'] * 1e3:.2f} ms")
        registry_stats = stats["registry"]
        print(f"registry: {registry_stats['loads']} artifact loads, "
              f"{registry_stats['hits']} hits, "
              f"{registry_stats['evictions']} evictions")

        # Observability: the same stream with per-layer profiling and
        # request tracing on.  Profiling wraps each packed layer op in
        # perf-counter reads — it never touches the math, so responses
        # stay bit-identical to the unobserved run.
        with InferenceServer(build_registry(paths), max_batch=16,
                             max_wait=0.002, workers=2, profile=True,
                             trace_capacity=64) as server:
            pending = [(index, server.submit(*requests[index]))
                       for index in range(len(requests))]
            observed = {index: request.result(timeout=30.0)
                        for index, request in pending}
            obs_stats = server.stats()
            profile = server.layer_profile(top=3)
            traces = server.traces(limit=2)
        matches = sum(np.array_equal(responses[index], observed[index])
                      for index in range(len(requests)))
        print(f"profiled+traced run: responses bit-identical to the "
              f"unobserved run: {matches}/{len(requests)}")
        totals = obs_stats["totals"]
        queued, service = totals["queued_seconds"], totals["service_seconds"]
        print(f"latency (all models, exactly merged): queued p50/p99 "
              f"{queued['p50'] * 1e3:.2f}/{queued['p99'] * 1e3:.2f} ms, "
              f"service p50/p99 "
              f"{service['p50'] * 1e3:.2f}/{service['p99'] * 1e3:.2f} ms")
        flush = totals["flush_reasons"]
        print("flush reasons: " + ", ".join(
            f"{reason}={flush[reason]}" for reason in sorted(flush)))
        for name, layers in sorted(profile.items()):
            ranked = ", ".join(
                f"{row['layer']} {row['total_seconds'] * 1e3:.2f} ms"
                for row in layers)
            print(f"  slowest layers [{name}]: {ranked}")
        for trace in traces:
            timeline = " -> ".join(
                f"{span['name']} {span['seconds'] * 1e3:.2f} ms"
                for span in trace["spans"])
            print(f"  trace {trace['trace_id']} ({trace['model']}): "
                  f"{timeline}")

        # Operational layer: SLO rules evaluated over rolling windows,
        # plus the live HTTP exporter — scraped over real HTTP while the
        # server is under traffic.  All of it is wrapping only: the
        # observed responses stay bit-identical (checked above for the
        # profiled run; the exporter only *reads* server state).
        import json
        import urllib.request

        from repro.serving import SLORule

        rules = (
            SLORule("service-p99", "latency_quantile", target=0.5,
                    quantile=0.99, latency="service"),
            SLORule("error-rate", "error_rate", target=0.01),
            SLORule("queue-depth", "queue_depth", target=256),
        )
        with InferenceServer(build_registry(paths), max_batch=16,
                             max_wait=0.002, workers=2,
                             slo=rules) as server:
            exporter = server.serve_metrics(port=0)  # ephemeral port
            pending = [server.submit(*request) for request in requests]
            for request in pending:
                request.result(timeout=30.0)
            with urllib.request.urlopen(exporter.url + "/health",
                                        timeout=10.0) as response:
                health = json.loads(response.read())
                health_status = response.status
            with urllib.request.urlopen(exporter.url + "/metrics",
                                        timeout=10.0) as response:
                metrics_text = response.read().decode("utf-8")
            events = server.events()
        print(f"exporter at {exporter.url}: /health {health_status} "
              f"(status {health['status']!r}), /metrics "
              f"{metrics_text.count(chr(10))} lines of Prometheus text")
        windows = health["windows"]
        service = windows["service"]
        print(f"rolling window ({windows['requests']} requests): service "
              f"p50/p99 {service['p50'] * 1e3:.2f}/"
              f"{service['p99'] * 1e3:.2f} ms")
        for rule in health["slo"]["rules"]:
            print(f"  slo {rule['name']}: value {rule['value']:.4g} vs "
                  f"target {rule['target']:.4g} -> {rule['verdict']}")
        kinds = sorted({event["kind"] for event in events})
        print(f"lifecycle events ({len(events)} retained): "
              + ", ".join(kinds))


if __name__ == "__main__":
    main()
