"""Cross-layer pipelining: end-to-end latency of per-layer systolic arrays.

Deploys every layer of the full-size column-combined ResNet-20 (and
LeNet-5) in its own systolic array and compares single-sample latency with
and without cross-layer pipelining (Section 3.6 / 7.4), then shows where
the pipelined design lands relative to the CPU / GPU / FPGA latencies the
paper quotes in Table 3.

Run with:  python examples/cross_layer_pipelining.py
"""

from __future__ import annotations

from repro.experiments.table3 import network_latencies
from repro.hardware.reference import TABLE3_ROWS
from repro.systolic.pipeline import pipeline_latency, pipeline_speedup, sequential_latency

FREQUENCY_HZ = 1.5e8  # the paper's FPGA clock


def main() -> None:
    for network, kwargs, accumulation in (
        ("lenet5", {"image_size": 32}, 16),
        ("resnet20", {"width_multiplier": 6, "image_size": 32}, 32),
    ):
        latencies = network_latencies(network, accumulation_bits=accumulation, **kwargs)
        sequential = sequential_latency(latencies) / FREQUENCY_HZ * 1e6
        pipelined = pipeline_latency(latencies) / FREQUENCY_HZ * 1e6
        print(f"{network}: sequential {sequential:.1f} us -> pipelined {pipelined:.1f} us "
              f"({pipeline_speedup(latencies):.1f}x)")
        for layer in latencies[:3]:
            print(f"    {layer.name}: first output after {layer.first_output_cycles} cycles, "
                  f"streams {layer.stream_cycles} cycles")
        print("    ...")

    print("\nTable 3 context (paper-reported latencies for CIFAR-10):")
    for row in TABLE3_ROWS:
        marker = ">" if row.latency_is_lower_bound else ""
        print(f"    {row.platform:<12} {marker}{row.latency_microseconds:.2f} us/frame")


if __name__ == "__main__":
    main()
