"""Quickstart: pack a sparse filter matrix and deploy it on a systolic array.

This example walks through the paper's core idea at the matrix level:

1. take a sparse filter matrix (rows = filters, columns = input channels),
2. group its columns under the alpha / gamma constraints (Algorithm 2),
3. prune conflicting weights within each group (Algorithm 3),
4. pack each group into a single combined column,
5. run the packed matrix on a weight-stationary systolic array with MX
   cells and confirm the result matches the pruned matrix exactly, while
   using far fewer columns (and therefore tiles, cycles, and energy).

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro.combining import (
    column_combine_prune,
    group_columns,
    pack_filter_matrix,
    tile_count,
)
from repro.hardware.energy import EnergyModel
from repro.systolic import ArrayConfig, SystolicArray, TiledMatmul


def main() -> None:
    rng = np.random.default_rng(0)

    # A sparse convolutional layer: 96 filters over 94 input channels with
    # 16% nonzero weights (the Figure 14b example of the paper).
    rows, cols, density = 96, 94, 0.16
    filter_matrix = rng.normal(size=(rows, cols)) * (rng.random((rows, cols)) < density)
    print(f"sparse filter matrix: {rows}x{cols}, "
          f"{np.count_nonzero(filter_matrix) / filter_matrix.size:.0%} nonzero")

    # Algorithm 2: group columns (alpha = max group size, gamma = conflicts/row).
    grouping = group_columns(filter_matrix, alpha=8, gamma=0.5)
    print(f"column grouping: {cols} columns -> {grouping.num_groups} groups "
          f"(sizes {sorted(grouping.group_sizes(), reverse=True)[:5]}...)")

    # Algorithm 3: within each group, keep only the largest weight per row.
    pruned, _ = column_combine_prune(filter_matrix, grouping)
    packed = pack_filter_matrix(filter_matrix, grouping)
    print(f"packed filter matrix: {packed.num_rows}x{packed.num_groups}, "
          f"packing efficiency {packed.packing_efficiency():.0%}")

    # Deploy on a 32x32 systolic array: the packed matrix needs far fewer tiles.
    before = tile_count(rows, cols, 32, 32)
    after = tile_count(rows, packed.num_groups, 32, 32)
    print(f"tiles on a 32x32 array: {before} -> {after} ({before / after:.1f}x fewer)")

    # Functional check: MX-cell execution is exact.
    data = rng.normal(size=(cols, 256))
    array = TiledMatmul(ArrayConfig(rows=32, cols=32, alpha=8))
    dense_run = array.multiply_dense(filter_matrix, data)
    packed_run = array.multiply_packed(packed, data)
    assert np.allclose(packed_run.output, pruned @ data)
    print(f"packed output matches pruned filter matrix: True")
    print(f"cycles: dense {dense_run.total_cycles} -> packed {packed_run.total_cycles} "
          f"({dense_run.total_cycles / packed_run.total_cycles:.1f}x fewer)")

    # Energy: every occupied cell burns a MAC per word, so packing saves energy.
    energy = EnergyModel()
    dense_energy = energy.compute_energy(dense_run.occupied_macs)
    packed_energy = energy.compute_energy(packed_run.occupied_macs)
    print(f"compute energy: {dense_energy / 1e6:.2f} uJ -> {packed_energy / 1e6:.2f} uJ "
          f"({dense_energy / packed_energy:.1f}x lower)")

    # A small untiled array example with the cycle model.
    small = SystolicArray(ArrayConfig(rows=96, cols=packed.num_groups, alpha=8))
    result = small.multiply_packed(packed, data)
    print(f"single-array utilization efficiency: {result.utilization:.0%} "
          f"(vs {dense_run.utilization:.0%} without column combining)")


if __name__ == "__main__":
    main()
