"""Column combining with limited training data (Section 6 scenario).

A customer hands a vendor a *pretrained dense model* but — for privacy
reasons — only a small fraction of the training data.  The vendor runs the
column-combining joint optimization on that fraction.  This example
compares the resulting accuracy against training a new model from scratch
on the same fraction, reproducing the Figure 15b comparison at example
scale.

Run with:  python examples/limited_data_retraining.py
"""

from __future__ import annotations

import numpy as np

from repro.combining import ColumnCombineConfig, ColumnCombineTrainer
from repro.combining.trainer import train_dense
from repro.data import synthetic_cifar10
from repro.models import ResNet20
from repro.nn.serialization import load_state_dict, state_dict


def combine_on_fraction(base_state, fraction: float, train, test, pretrained: bool,
                        seed: int = 0) -> float:
    """Run Algorithm 1 on a data fraction; optionally start from the dense model."""
    model = ResNet20(in_channels=3, num_classes=10, scale=0.5,
                     rng=np.random.default_rng(seed))
    if pretrained:
        load_state_dict(model, base_state)
    subset = train.fraction(fraction, rng=np.random.default_rng(seed))
    config = ColumnCombineConfig(alpha=8, beta=0.20, gamma=0.5, target_fraction=0.25,
                                 epochs_per_round=1, final_epochs=2, max_rounds=5,
                                 lr=0.1, seed=seed)
    trainer = ColumnCombineTrainer(model, subset, test, config)
    return trainer.run().final_accuracy


def main() -> None:
    train = synthetic_cifar10(768, image_size=12, seed=0, split_seed=0)
    test = synthetic_cifar10(256, image_size=12, seed=0, split_seed=1)

    # The customer's dense model, trained on the full dataset.
    customer_model = ResNet20(in_channels=3, num_classes=10, scale=0.5,
                              rng=np.random.default_rng(0))
    dense_history = train_dense(customer_model, train, test, epochs=5, lr=0.1)
    print(f"customer's dense model accuracy: {dense_history.final_accuracy:.3f}")
    base_state = state_dict(customer_model)

    print(f"\n{'fraction':>9} {'new model':>10} {'pretrained':>11}")
    for fraction in (0.05, 0.15, 0.35, 1.0):
        new_accuracy = combine_on_fraction(base_state, fraction, train, test,
                                           pretrained=False)
        pre_accuracy = combine_on_fraction(base_state, fraction, train, test,
                                           pretrained=True)
        print(f"{fraction:>9.0%} {new_accuracy:>10.3f} {pre_accuracy:>11.3f}")
    print("\nExpected shape (Figure 15b): the pretrained model dominates at small "
          "fractions and the gap closes as more data becomes available.")


if __name__ == "__main__":
    main()
