"""Quantized packed inference: calibrate once, serve integer forwards.

This example walks the serving path end to end:

1. build a (sparsified) LeNet-5 in shift + pointwise form and pack its
   layers through the :class:`PackingPipeline`,
2. wrap the :class:`PackedModel` in a :class:`QuantizedPackedModel` —
   the integer twin that chains every packed layer through the systolic
   system's quantized execution (8-bit MX-cell routing, 32-bit
   accumulation, per-layer re-quantization),
3. calibrate the per-layer quantizers once on a calibration batch and
   freeze them (a deployed array cannot refit scales on data it has not
   seen),
4. run batched integer forwards, compare top-1 predictions against the
   exact float packed forward, and read the per-layer quantization
   error / saturation / cycle report,
5. sweep the cell bit width to see the accuracy-vs-bits trade the
   hardware design space exposes (bit-serial MACs: fewer bits, fewer
   cycles, more quantization error).

Run with:  python examples/quantized_inference.py
"""

from __future__ import annotations

import numpy as np

from repro.combining import (
    PipelineConfig,
    QuantizedPackedModel,
)
from repro.models import build_model


def main() -> None:
    rng = np.random.default_rng(0)

    # A LeNet-5 slice with half of its pointwise weights pruned away.
    model = build_model("lenet5", in_channels=1, num_classes=10, scale=1.0,
                        image_size=12, rng=np.random.default_rng(1))
    for _, layer in model.packable_layers():
        weights = layer.weight.data
        weights *= rng.random(weights.shape) < 0.5

    # Pack and wrap for 8-bit integer execution in one step.
    quantized = QuantizedPackedModel.from_model(
        model, PipelineConfig(alpha=8, gamma=0.5), bits=8)
    print("packed layers:", ", ".join(quantized.layer_names()))

    # Calibrate once; the fitted per-layer scales are frozen for serving.
    calibration = rng.normal(size=(32, 1, 12, 12))
    quantized.calibrate(calibration)
    for entry in quantized.layer_calibrations():
        print(f"  {entry.name}: input scale {entry.input_quantizer.scale:.2e}, "
              f"weight scale {entry.weight_quantizer.scale:.2e}")

    # Batched integer forward vs the exact float packed forward.  The
    # agreement check runs first: it forwards with track_errors=False (the
    # cheap serving shape), while the tracked forward below feeds the
    # per-layer report.
    images = rng.normal(size=(64, 1, 12, 12))
    agreement = quantized.prediction_agreement(images)
    outputs = quantized.forward(images)
    exact = quantized.packed.forward(images)
    rmse = float(np.sqrt(np.mean((outputs - exact) ** 2)))
    print(f"8-bit top-1 agreement with exact packed forward: {agreement:.1%}")
    print(f"8-bit output rmse vs exact packed forward: {rmse:.2e}")

    # Per-layer quantization accounting for the forward above.
    for report in quantized.layer_report():
        print(f"  {report.name}: divergence rmse {report.divergence_rmse:.2e}, "
              f"input saturation {report.input_saturation:.2%}, "
              f"{report.num_tiles} tiles, {report.cycles} cycles")

    # The accuracy-vs-bits trade: fewer bits stream fewer cycles but
    # diverge further from the float computation.
    print("bits  agreement  cycles")
    for bits in (2, 4, 6, 8):
        swept = QuantizedPackedModel(quantized.packed, bits=bits)
        swept.calibrate(calibration)
        swept_agreement = swept.prediction_agreement(images)
        cycles = swept.summary()["quantized_cycles"]
        print(f"{bits:>4}  {swept_agreement:>9.1%}  {cycles}")


if __name__ == "__main__":
    main()
