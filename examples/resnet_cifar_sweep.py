"""ResNet-20 on (synthetic) CIFAR-10: alpha / gamma parameter sweep.

Reproduces the study behind Figures 13b and 13c at example scale: train the
shift + pointwise ResNet-20 with Algorithm 1 for several values of alpha
(columns per group) and gamma (conflicts per row), and report how
classification accuracy and utilization efficiency trade off.

Run with:  python examples/resnet_cifar_sweep.py
"""

from __future__ import annotations

import numpy as np

from repro.combining import ColumnCombineConfig, ColumnCombineTrainer
from repro.data import synthetic_cifar10
from repro.models import ResNet20


def train_once(alpha: int, gamma: float, train, test, seed: int = 0):
    """Run Algorithm 1 once and return (accuracy, utilization, nonzeros)."""
    model = ResNet20(in_channels=3, num_classes=10, scale=0.5,
                     rng=np.random.default_rng(seed))
    config = ColumnCombineConfig(alpha=alpha, beta=0.20,
                                 gamma=gamma if alpha > 1 else 0.0,
                                 target_fraction=0.25, epochs_per_round=1,
                                 final_epochs=2, max_rounds=5, lr=0.1, seed=seed)
    trainer = ColumnCombineTrainer(model, train, test, config)
    history = trainer.run()
    return history.final_accuracy, trainer.utilization(), history.final_nonzeros


def main() -> None:
    train = synthetic_cifar10(512, image_size=12, seed=0, split_seed=0)
    test = synthetic_cifar10(256, image_size=12, seed=0, split_seed=1)

    print("alpha sweep (gamma = 0.5)")
    print(f"{'alpha':>6} {'accuracy':>9} {'utilization':>12} {'nonzeros':>9}")
    for alpha in (1, 2, 4, 8):
        accuracy, utilization, nonzeros = train_once(alpha, 0.5, train, test)
        print(f"{alpha:>6} {accuracy:>9.3f} {utilization:>12.1%} {nonzeros:>9}")

    print("\ngamma sweep (alpha = 8)")
    print(f"{'gamma':>6} {'accuracy':>9} {'utilization':>12} {'nonzeros':>9}")
    for gamma in (0.1, 0.5, 0.9):
        accuracy, utilization, nonzeros = train_once(8, gamma, train, test)
        print(f"{gamma:>6} {accuracy:>9.3f} {utilization:>12.1%} {nonzeros:>9}")


if __name__ == "__main__":
    main()
