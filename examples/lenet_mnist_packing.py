"""LeNet-5 on (synthetic) MNIST: the full joint-optimization pipeline.

This example exercises the whole stack the paper describes:

1. build the shift + pointwise LeNet-5 and a synthetic MNIST-like dataset,
2. run Algorithm 1 (iterative pruning, column grouping, column-combine
   pruning, retraining) until the target sparsity is reached,
3. pack each layer's filter matrix and deploy it on the bit-serial
   systolic array system with 8-bit quantized inputs and weights,
4. compare the packed, quantized, integer execution of the first
   convolutional layer against the floating-point layer,
5. report utilization efficiency, tile counts, and ASIC energy.

Run with:  python examples/lenet_mnist_packing.py
"""

from __future__ import annotations

import numpy as np

from repro.combining import ColumnCombineConfig, ColumnCombineTrainer
from repro.data import synthetic_mnist
from repro.hardware.asic import ASICDesign, evaluate_asic
from repro.models import LeNet5
from repro.systolic import ArrayConfig, SystolicSystem


def main() -> None:
    rng = np.random.default_rng(0)
    image_size = 12

    # Synthetic MNIST-like data (the real dataset is unavailable offline).
    train = synthetic_mnist(768, image_size=image_size, seed=0, split_seed=0)
    test = synthetic_mnist(256, image_size=image_size, seed=0, split_seed=1)

    model = LeNet5(in_channels=1, num_classes=10, scale=1.0, image_size=image_size, rng=rng)
    config = ColumnCombineConfig(alpha=8, beta=0.20, gamma=0.5, target_fraction=0.3,
                                 epochs_per_round=2, final_epochs=3, max_rounds=4,
                                 lr=0.05, batch_size=64)
    trainer = ColumnCombineTrainer(model, train, test, config)
    history = trainer.run()

    print(f"Algorithm 1 finished after {len(history.records) - 1} epochs")
    print(f"  nonzero conv weights: {trainer.initial_nonzeros} -> {history.final_nonzeros}")
    print(f"  test accuracy:        {history.records[0].test_accuracy:.3f} -> "
          f"{history.final_accuracy:.3f}")
    print(f"  utilization:          {trainer.utilization():.1%}")

    # Pack every convolutional layer and plan the deployment.
    packed_layers = trainer.packed_layers()
    spatial_sizes = [image_size, image_size // 2]
    system = SystolicSystem(ArrayConfig(rows=32, cols=32, alpha=8, accumulation_bits=16))
    plan = system.plan_model(packed_layers, spatial_sizes)
    for layer in plan.layers:
        print(f"  layer {layer.name}: {layer.original_columns} cols -> "
              f"{layer.packed_columns} combined, {layer.num_tiles} tiles, "
              f"utilization {layer.utilization:.0%}")

    # Quantized integer execution of the first layer on the array system.
    images = test.images[:8]
    name, packed = packed_layers[0]
    quantized_out, info = system.run_layer(packed, images, apply_shift=True, apply_relu=True)
    # Float reference: shift + pruned pointwise + ReLU.
    first_layer = model.features[0]
    float_out = np.maximum(first_layer.pointwise.forward(first_layer.shift.forward(images)), 0.0)
    relative_error = (np.abs(quantized_out - float_out).mean()
                      / (np.abs(float_out).mean() + 1e-12))
    print(f"quantized vs float first-layer output: mean relative error {relative_error:.3%} "
          f"({info['num_tiles']} tiles, {info['cycles']} cycles)")

    # ASIC evaluation of the packed model.
    design = ASICDesign(name="lenet-example", accumulation_bits=16, array_rows=32,
                        array_cols=32, sram_kilobytes=16.0)
    report = evaluate_asic(design, plan, "lenet5", history.final_accuracy)
    print(f"ASIC model: {report.energy_per_sample_joules * 1e6:.2f} uJ/sample, "
          f"{report.energy_efficiency_fpj:.0f} frames/J, "
          f"{report.area_efficiency:.0f} fps/mm^2")


if __name__ == "__main__":
    main()
