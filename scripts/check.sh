#!/usr/bin/env bash
# Quick local check: fast tier-1 signal plus the engine differential suites.
#
#   scripts/check.sh            # fast tests only (benchmarks are marked slow)
#   scripts/check.sh -k metric  # extra pytest args are forwarded to the fast run
#
# The full tier-1 gate remains `PYTHONPATH=src python -m pytest -x -q`.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== engine differential suites (grouping + conflict pruning) =="
python -m pytest -x -q tests/test_combining_grouping_engines.py \
    tests/test_combining_pruning_engines.py

echo "== fast test suite (pytest -m 'not slow') =="
python -m pytest -x -q -m "not slow" \
    --ignore=tests/test_combining_grouping_engines.py \
    --ignore=tests/test_combining_pruning_engines.py "$@"
