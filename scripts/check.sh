#!/usr/bin/env bash
# Quick local check: fast tier-1 signal plus the differential / golden suites.
#
#   scripts/check.sh            # fast tests only (benchmarks are marked slow)
#   scripts/check.sh -k metric  # extra pytest args are forwarded to the fast run
#
# The quick tier is budgeted: the `-m "not slow"` run must finish within
# QUICK_TIER_BUDGET_SECONDS (default 10) so the fast signal stays fast —
# new tests that blow the budget belong in the slow tier.
#
# The full tier-1 gate remains `PYTHONPATH=src python -m pytest -x -q`.
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

QUICK_TIER_BUDGET_SECONDS="${QUICK_TIER_BUDGET_SECONDS:-10}"

echo "== engine differential suites (grouping + conflict pruning) =="
python -m pytest -x -q tests/test_combining_grouping_engines.py \
    tests/test_combining_pruning_engines.py

echo "== packed-model inference differential + golden regression suites =="
python -m pytest -x -q tests/test_combining_inference.py \
    tests/test_golden_regression.py

echo "== quantized inference differential + accuracy-vs-bits sweep suites =="
python -m pytest -x -q -m "not slow" tests/test_combining_quantized.py \
    tests/test_experiments_quant_sweep.py

echo "== serving suites (serialization round-trip + batcher/registry/server) =="
python -m pytest -x -q -m "not slow" tests/test_combining_serialization.py \
    tests/test_serving.py tests/test_serving_hotswap.py

echo "== execution-plan differential suite (plan vs legacy, V2/mmap loads) =="
python -m pytest -x -q -m "not slow" tests/test_combining_plan.py

echo "== batch-invariant kernel differential suite (blocked vs loops) =="
python -m pytest -x -q tests/test_combining_kernels.py

echo "== observability suites (metrics/tracing/logging + serving obs) =="
python -m pytest -x -q -m "not slow" tests/test_obs.py \
    tests/test_serving_obs.py

echo "== operational observability suite (windows/SLO/events/exporter) =="
python -m pytest -x -q -m "not slow" tests/test_obs_operational.py

echo "== fast test suite (pytest -m 'not slow') =="
quick_start=$(date +%s)
python -m pytest -x -q -m "not slow" \
    --ignore=tests/test_combining_grouping_engines.py \
    --ignore=tests/test_combining_pruning_engines.py \
    --ignore=tests/test_combining_inference.py \
    --ignore=tests/test_golden_regression.py \
    --ignore=tests/test_combining_quantized.py \
    --ignore=tests/test_experiments_quant_sweep.py \
    --ignore=tests/test_combining_serialization.py \
    --ignore=tests/test_serving.py \
    --ignore=tests/test_serving_hotswap.py \
    --ignore=tests/test_combining_plan.py \
    --ignore=tests/test_combining_kernels.py \
    --ignore=tests/test_obs.py \
    --ignore=tests/test_serving_obs.py \
    --ignore=tests/test_obs_operational.py "$@"
quick_elapsed=$(( $(date +%s) - quick_start ))
echo "quick tier took ${quick_elapsed}s (budget ${QUICK_TIER_BUDGET_SECONDS}s)"
if (( quick_elapsed > QUICK_TIER_BUDGET_SECONDS )); then
    echo "error: quick tier exceeded its ${QUICK_TIER_BUDGET_SECONDS}s budget;" \
         "mark heavyweight tests 'slow' or raise QUICK_TIER_BUDGET_SECONDS" >&2
    exit 1
fi
