"""Benchmark: dynamic batching and packed-artifact cold starts pay off.

Three assertions justify the serving subsystem:

* **Throughput** — serving a stream of single-sample requests with the
  dynamic batcher coalescing up to 16 samples per forward must be at
  least 2x the one-request-at-a-time throughput of the same server (the
  per-forward fixed cost amortizes across the batch), with every
  response still bit-identical to the direct forward.
* **Cold start** — loading a packed artifact
  (:func:`~repro.combining.serialization.load_packed`) must beat
  re-running the :class:`~repro.combining.pipeline.PackingPipeline` on
  the full-size ResNet-20 workload, the regime servers actually restart
  in.
* **Backend scaling** — serving a CPU-bound ResNet-20 stream through the
  process backend must beat the thread backend at the same worker count
  once real cores are available (threads serialize on the GIL inside
  the batch-invariant plan loops; worker processes don't).  Responses
  must be bit-identical across every (backend, workers) cell
  regardless — that part is asserted even on single-core hosts, where
  the perf comparison itself is skipped.
* **Kernel gap** — the blocked batch-invariant kernel
  (:mod:`repro.combining.kernels`) must run the ResNet-20 packed-layer
  contractions at least 3x faster than the retained einsum-loop
  reference, while staying numerically equivalent; the residual gap to
  the unconstrained raw-BLAS einsum is recorded so regressions in the
  "price of determinism" are visible.
* **Profiling overhead** — per-layer profiling (``profile=True``) wraps
  each packed layer op in two perf-counter reads, nothing inside the
  contraction loops; serving the same stream profiled must cost < 10%
  wall time over unprofiled, with bit-identical responses.
* **Scrape overhead** — a Prometheus scraper polling the live
  ``/metrics`` endpoint at 10 Hz reads registry snapshots outside the
  serving path; serving the same stream under that scrape load must
  cost < 5% wall time over an unobserved server, with bit-identical
  responses.
"""

from __future__ import annotations

import os
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.combining import (
    PackedModel,
    PackingPipeline,
    PipelineConfig,
    load_packed,
    save_packed,
)
from repro.experiments.workloads import PAPER_DENSITY, sparse_network
from repro.models import build_model
from repro.serving.bench import (
    backend_scaling_benchmark,
    kernel_gap_benchmark,
    profiling_overhead_benchmark,
    throughput_benchmark,
)

REQUESTS = 96
MAX_BATCH = 16


def _serving_model() -> PackedModel:
    model = build_model("lenet5", in_channels=1, num_classes=10, scale=1.0,
                        image_size=12, rng=np.random.default_rng(1))
    rng = np.random.default_rng(0)
    for _, layer in model.packable_layers():
        layer.weight.data *= rng.random(layer.weight.data.shape) < 0.2
    return PackedModel.from_model(model, PipelineConfig(alpha=8, gamma=0.5))


def test_bench_dynamic_batching_beats_one_at_a_time():
    packed = _serving_model()
    samples = np.random.default_rng(7).normal(size=(REQUESTS, 1, 12, 12))
    best: dict = {}
    for _ in range(3):
        results = throughput_benchmark(packed, samples, max_batch=MAX_BATCH,
                                       max_wait=0.002)
        assert results["bit_identical_to_direct"], (
            "served responses diverged from the direct batch-invariant "
            "forward")
        if not best or results["speedup"] > best["speedup"]:
            best = results
    print(f"\n{REQUESTS} single-sample requests: "
          f"one-at-a-time {best['sequential_throughput']:.0f} req/s, "
          f"batched(max {MAX_BATCH}) {best['batched_throughput']:.0f} req/s "
          f"({best['speedup']:.2f}x, mean batch "
          f"{best['batched_mean_batch']:.1f})")
    assert best["speedup"] >= 2.0, (
        f"dynamic batching at max_batch={MAX_BATCH} only reached "
        f"{best['speedup']:.2f}x over one-request-at-a-time (need >= 2x)")


def test_bench_profiling_overhead_stays_under_ten_percent():
    """Per-layer profiling is perf-counter wrapping around each packed
    layer op — never inside the contraction loops — so leaving it on
    must cost < 10% served wall time, and the responses must stay
    bit-identical to the unprofiled run."""
    packed = _serving_model()
    samples = np.random.default_rng(11).normal(size=(REQUESTS, 1, 12, 12))
    best: dict = {}
    for _ in range(3):
        results = profiling_overhead_benchmark(packed, samples,
                                               max_batch=MAX_BATCH,
                                               max_wait=0.002, repeats=2)
        assert results["bit_identical"], (
            "profiled responses diverged from the unprofiled run")
        if not best or results["overhead"] < best["overhead"]:
            best = results
    print(f"\nprofiling overhead over {REQUESTS} requests: "
          f"plain {best['plain_seconds'] * 1e3:.1f} ms, "
          f"profiled {best['profiled_seconds'] * 1e3:.1f} ms "
          f"({best['overhead'] * 100:+.1f}%)")
    assert best["overhead"] < 0.10, (
        f"per-layer profiling cost {best['overhead'] * 100:.1f}% served "
        "wall time (need < 10%)")


def test_bench_metrics_scrape_overhead_stays_under_five_percent():
    """The exporter answers ``/metrics`` from registry snapshots on its
    own thread — never inside the serving path — so a 10 Hz Prometheus
    scraper watching a live server must cost < 5% served wall time."""
    from repro.serving import InferenceServer, ModelRegistry

    packed = _serving_model()
    # A stream long enough (~1s served) that the 10 Hz cadence actually
    # amortizes; a handful of requests would time one scrape's jitter.
    samples = np.random.default_rng(19).normal(size=(REQUESTS * 48, 1,
                                                     12, 12))
    requests = [sample[np.newaxis] for sample in samples]

    def serve(scrape: bool) -> tuple[float, list[np.ndarray]]:
        registry = ModelRegistry()
        registry.add("m", packed)
        with InferenceServer(registry, max_batch=MAX_BATCH,
                             max_wait=0.002) as server:
            stop = threading.Event()
            scraper = None
            if scrape:
                url = server.serve_metrics(port=0).url + "/metrics"

                def poll() -> None:
                    while not stop.wait(0.1):  # 10 Hz cadence
                        with urllib.request.urlopen(url, timeout=5.0) as r:
                            r.read()

                scraper = threading.Thread(target=poll)
                scraper.start()
            try:
                start = time.perf_counter()
                pending = [server.submit("m", request)
                           for request in requests]
                outputs = [p.result(timeout=60.0) for p in pending]
                elapsed = time.perf_counter() - start
            finally:
                stop.set()
                if scraper is not None:
                    scraper.join()
        return elapsed, outputs

    serve(False)  # warm caches outside the timed comparison
    best: dict = {}
    for _ in range(3):
        bare, plain_outputs = serve(False)
        scraped, scraped_outputs = serve(True)
        for plain, observed in zip(plain_outputs, scraped_outputs):
            assert np.array_equal(plain, observed), (
                "responses under scrape load diverged from the bare run")
        overhead = scraped / bare - 1.0
        if not best or overhead < best["overhead"]:
            best = {"bare": bare, "scraped": scraped, "overhead": overhead}
    print(f"\n10 Hz /metrics scrape over {len(requests)} requests: "
          f"bare {best['bare'] * 1e3:.1f} ms, "
          f"scraped {best['scraped'] * 1e3:.1f} ms "
          f"({best['overhead'] * 100:+.1f}%)")
    assert best["overhead"] < 0.05, (
        f"scraping /metrics at 10 Hz cost {best['overhead'] * 100:.1f}% "
        "served wall time (need < 5%)")


def test_bench_artifact_load_beats_repacking(tmp_path):
    layers = sparse_network("resnet20", density=PAPER_DENSITY["resnet20"],
                            seed=0)
    config = PipelineConfig(alpha=8, gamma=0.5)

    def repack() -> PackedModel:
        with PackingPipeline(config) as pipeline:
            return PackedModel.from_pipeline_result(pipeline.run(layers))

    packed = repack()
    path = save_packed(packed, tmp_path / "resnet20.npz")

    repack_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        repack()
        repack_seconds = min(repack_seconds, time.perf_counter() - start)
    load_seconds, loaded = float("inf"), None
    for _ in range(3):
        start = time.perf_counter()
        loaded = load_packed(path)
        load_seconds = min(load_seconds, time.perf_counter() - start)
    for (_, original), (_, restored) in zip(packed.packed_layers(),
                                            loaded.packed_layers()):
        assert np.array_equal(original.weights, restored.weights)
    print(f"\nresnet20 full-size workload cold start: "
          f"re-pack {repack_seconds * 1e3:.0f} ms, "
          f"artifact load {load_seconds * 1e3:.0f} ms "
          f"({repack_seconds / load_seconds:.1f}x)")
    assert load_seconds < repack_seconds, (
        f"loading the artifact ({load_seconds:.3f}s) did not beat "
        f"re-packing ({repack_seconds:.3f}s)")


def test_bench_blocked_kernel_closes_the_blas_gap():
    """Three-way kernel timing on the ResNet-20 serving workload: the
    blocked batch-invariant kernel must be >= 3x the einsum-loop
    reference per forward, and the residual gap to the unconstrained
    raw-BLAS einsum is printed as the remaining price of determinism."""
    kwargs = {"in_channels": 3, "num_classes": 10, "scale": 1.0}
    model = build_model("resnet20", rng=np.random.default_rng(1), **kwargs)
    rng = np.random.default_rng(0)
    for _, layer in model.packable_layers():
        layer.weight.data *= rng.random(layer.weight.data.shape) < 0.2
    packed = PackedModel.from_model(model, PipelineConfig(alpha=8, gamma=0.5))

    best: dict = {}
    for _ in range(2):
        results = kernel_gap_benchmark(packed, image_size=32, batch=8,
                                       repeats=3)
        assert results["numerically_equivalent"], (
            "blocked and loops kernels disagreed beyond allclose tolerance")
        if not best or (results["totals"]["blocked_speedup"]
                        > best["totals"]["blocked_speedup"]):
            best = results
    totals = best["totals"]
    print(f"\nresnet20 {best['image_size']}x{best['image_size']} packed-layer "
          f"contractions (batch {best['batch']}, {len(best['layers'])} "
          f"layers):\n"
          f"  loops   {totals['loops_seconds'] * 1e3:7.2f} ms\n"
          f"  blocked {totals['blocked_seconds'] * 1e3:7.2f} ms "
          f"({totals['blocked_speedup']:.2f}x over loops)\n"
          f"  blas    {totals['blas_seconds'] * 1e3:7.2f} ms "
          f"(gap-to-blas {totals['blas_gap']:.2f}x)")
    assert totals["blocked_speedup"] >= 3.0, (
        f"blocked kernel only reached {totals['blocked_speedup']:.2f}x over "
        f"the einsum loops (need >= 3x)")


def test_bench_process_backend_scales_past_threads_when_cores_allow(tmp_path):
    """Process workers mmap the plan and forward outside the GIL; on a
    CPU-bound ResNet-20 stream they must beat the same number of thread
    workers — given >= 2 usable cores.  Bit-identity across every
    (backend, workers) cell is asserted unconditionally."""
    kwargs = {"in_channels": 3, "num_classes": 10, "scale": 1.0}
    model = build_model("resnet20", rng=np.random.default_rng(1), **kwargs)
    rng = np.random.default_rng(0)
    for _, layer in model.packable_layers():
        layer.weight.data *= rng.random(layer.weight.data.shape) < 0.2
    packed = PackedModel.from_model(model, PipelineConfig(alpha=8, gamma=0.5))
    path = save_packed(packed, tmp_path / "resnet20.npz", compress=False,
                       model_spec={"name": "resnet20", "kwargs": kwargs})

    cores = len(os.sched_getaffinity(0))
    workers = min(4, max(2, cores))
    results = backend_scaling_benchmark(
        path, requests=48, max_batch=8, max_wait=0.001,
        worker_counts=(1, workers), image_size=32)
    assert results["bit_identical"], (
        "served responses diverged across (backend, workers) cells")
    cells = results["backends"]
    print("\nresnet20 32x32 backend scaling "
          f"({results['requests']} requests, {cores} cores):")
    for backend in ("thread", "process"):
        for count, cell in cells[backend].items():
            print(f"  {backend:8s} workers={count}: "
                  f"{cell['seconds']:.3f}s ({cell['throughput']:.0f} req/s)")
    if cores < 2:
        pytest.skip("process-vs-thread scaling needs >= 2 usable cores; "
                    f"this host exposes {cores}")
    process = cells["process"][workers]["seconds"]
    thread = cells["thread"][workers]["seconds"]
    assert process < thread, (
        f"process backend ({process:.3f}s) did not beat {workers} thread "
        f"workers ({thread:.3f}s) on {cores} cores")
