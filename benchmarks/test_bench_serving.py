"""Benchmark: dynamic batching and packed-artifact cold starts pay off.

Two assertions justify the serving subsystem:

* **Throughput** — serving a stream of single-sample requests with the
  dynamic batcher coalescing up to 16 samples per forward must be at
  least 2x the one-request-at-a-time throughput of the same server (the
  per-forward fixed cost — module snapshot, packed-layer install,
  per-layer dispatch — amortizes across the batch), with every response
  still bit-identical to the direct forward.
* **Cold start** — loading a packed artifact
  (:func:`~repro.combining.serialization.load_packed`) must beat
  re-running the :class:`~repro.combining.pipeline.PackingPipeline` on
  the full-size ResNet-20 workload, the regime servers actually restart
  in.
"""

from __future__ import annotations

import time

import numpy as np

from repro.combining import (
    PackedModel,
    PackingPipeline,
    PipelineConfig,
    load_packed,
    save_packed,
)
from repro.experiments.workloads import PAPER_DENSITY, sparse_network
from repro.models import build_model
from repro.serving.bench import throughput_benchmark

REQUESTS = 96
MAX_BATCH = 16


def _serving_model() -> PackedModel:
    model = build_model("lenet5", in_channels=1, num_classes=10, scale=1.0,
                        image_size=12, rng=np.random.default_rng(1))
    rng = np.random.default_rng(0)
    for _, layer in model.packable_layers():
        layer.weight.data *= rng.random(layer.weight.data.shape) < 0.2
    return PackedModel.from_model(model, PipelineConfig(alpha=8, gamma=0.5))


def test_bench_dynamic_batching_beats_one_at_a_time():
    packed = _serving_model()
    samples = np.random.default_rng(7).normal(size=(REQUESTS, 1, 12, 12))
    best: dict = {}
    for _ in range(3):
        results = throughput_benchmark(packed, samples, max_batch=MAX_BATCH,
                                       max_wait=0.002)
        assert results["bit_identical_to_direct"], (
            "served responses diverged from the direct batch-invariant "
            "forward")
        if not best or results["speedup"] > best["speedup"]:
            best = results
    print(f"\n{REQUESTS} single-sample requests: "
          f"one-at-a-time {best['sequential_throughput']:.0f} req/s, "
          f"batched(max {MAX_BATCH}) {best['batched_throughput']:.0f} req/s "
          f"({best['speedup']:.2f}x, mean batch "
          f"{best['batched_mean_batch']:.1f})")
    assert best["speedup"] >= 2.0, (
        f"dynamic batching at max_batch={MAX_BATCH} only reached "
        f"{best['speedup']:.2f}x over one-request-at-a-time (need >= 2x)")


def test_bench_artifact_load_beats_repacking(tmp_path):
    layers = sparse_network("resnet20", density=PAPER_DENSITY["resnet20"],
                            seed=0)
    config = PipelineConfig(alpha=8, gamma=0.5)

    def repack() -> PackedModel:
        with PackingPipeline(config) as pipeline:
            return PackedModel.from_pipeline_result(pipeline.run(layers))

    packed = repack()
    path = save_packed(packed, tmp_path / "resnet20.npz")

    repack_seconds = float("inf")
    for _ in range(2):
        start = time.perf_counter()
        repack()
        repack_seconds = min(repack_seconds, time.perf_counter() - start)
    load_seconds, loaded = float("inf"), None
    for _ in range(3):
        start = time.perf_counter()
        loaded = load_packed(path)
        load_seconds = min(load_seconds, time.perf_counter() - start)
    for (_, original), (_, restored) in zip(packed.packed_layers(),
                                            loaded.packed_layers()):
        assert np.array_equal(original.weights, restored.weights)
    print(f"\nresnet20 full-size workload cold start: "
          f"re-pack {repack_seconds * 1e3:.0f} ms, "
          f"artifact load {load_seconds * 1e3:.0f} ms "
          f"({repack_seconds / load_seconds:.1f}x)")
    assert load_seconds < repack_seconds, (
        f"loading the artifact ({load_seconds:.3f}s) did not beat "
        f"re-packing ({repack_seconds:.3f}s)")
