"""Ablation benchmark: dense-column-first grouping vs first-fit vs random."""

from __future__ import annotations

from repro.experiments import ablation_grouping
from repro.experiments.common import format_table

from benchmarks.conftest import run_once


def test_bench_ablation_grouping_policy(benchmark):
    result = run_once(benchmark, ablation_grouping.run, network="resnet20")

    print("\nAblation — column-grouping policy (ResNet-20 shapes, alpha=8, gamma=0.5)")
    print(format_table(
        ["policy", "combined columns", "mean packing efficiency"],
        [(policy, values["total_combined_columns"],
          f"{values['mean_packing_efficiency']:.1%}")
         for policy, values in result["policies"].items()]))
    print("the dense-column-first policy should be at least as compact as the "
          "alternatives (paper motivates it by analogy to bin packing)")

    policies = result["policies"]
    dense_first = policies["dense-first"]["total_combined_columns"]
    for other in ("first-fit", "random"):
        # Dense-first should not be substantially worse than either alternative.
        assert dense_first <= 1.1 * policies[other]["total_combined_columns"]
    for values in policies.values():
        assert values["mean_packing_efficiency"] > 0.4
