"""Benchmark / regeneration of Figure 15b (limited-data retraining)."""

from __future__ import annotations

from repro.experiments import fig15b
from repro.experiments.common import format_table

from benchmarks.conftest import BENCH_RUN, run_once


def test_bench_fig15b_limited_data(benchmark):
    result = run_once(benchmark, fig15b.run, BENCH_RUN,
                      fractions=(0.1, 0.25, 0.5, 1.0), pretrain_epochs=3)
    points = result["points"]

    print("\nFigure 15b — column combining with limited training data (ResNet-20)")
    print(format_table(["fraction", "new model", "pretrained model"],
                       [(f"{p['fraction']:.0%}", p["new_model_accuracy"],
                         p["pretrained_model_accuracy"]) for p in points]))
    print("paper shape: the pretrained model dominates at small fractions; the "
          "gap closes as the fraction grows")

    smallest = points[0]
    largest = points[-1]
    # At the smallest fraction the pretrained start is at least as good.
    assert smallest["pretrained_model_accuracy"] >= smallest["new_model_accuracy"] - 0.05
    # With the full data both approaches reach comparable accuracy.
    assert abs(largest["pretrained_model_accuracy"] - largest["new_model_accuracy"]) < 0.25
