"""Benchmark / regeneration of the Section 7.2 optimality analysis."""

from __future__ import annotations

import pytest

from repro.experiments import sec72
from repro.experiments.common import format_table

from benchmarks.conftest import run_once


def test_bench_sec72_energy_optimality(benchmark):
    result = run_once(benchmark, sec72.run)

    print("\nSection 7.2 — achieved / optimal energy efficiency")
    print(format_table(
        ["packing efficiency (1/c)", "r = Emem/Ecomp", "efficiency ratio"],
        [(f"{g['packing_efficiency']:.1%}", g["r"], f"{g['efficiency_ratio']:.1%}")
         for g in result["grid"]]))
    example = result["paper_example"]
    print(f"paper example: 94.5% packing -> LeNet-5 (r=0.06) {example['lenet5']:.1%}, "
          f"ResNet-20 (r=0.1) {example['resnet20']:.1%} of optimal (paper: ~94.5%)")

    assert example["lenet5"] == pytest.approx(0.945, abs=0.01)
    assert example["resnet20"] == pytest.approx(0.945, abs=0.01)
    # For small r the ratio tracks the packing efficiency itself.
    small_r = [g for g in result["grid"] if g["r"] == 0.0]
    for entry in small_r:
        assert entry["efficiency_ratio"] == pytest.approx(entry["packing_efficiency"])
