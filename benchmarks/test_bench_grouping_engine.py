"""Benchmarks of the two column-grouping engines on large synthetic layers.

Measures Algorithm 2 on 512x1024 filter matrices at several densities with
both the vectorized bitset engine (``engine="fast"``) and the per-group
Python loop (``engine="reference"``), pinning the fast path's speedup in
the perf trajectory.  The reference engine degrades sharply once the
conflict budget keeps many groups open (density >= ~0.16 at the paper's
α = 8, γ = 0.5), which is exactly the regime the prune / sweep experiments
re-run grouping in.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.combining import group_columns

ROWS, COLS = 512, 1024
DENSITIES = (0.05, 0.16, 0.3)


def synthetic_layer(density: float, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.normal(size=(ROWS, COLS))
            * (rng.random((ROWS, COLS)) < density))


@pytest.fixture(scope="module", params=DENSITIES, ids=lambda d: f"density{d}")
def layer(request) -> tuple[float, np.ndarray]:
    return request.param, synthetic_layer(request.param)


def test_bench_grouping_fast(benchmark, layer):
    density, matrix = layer
    grouping = benchmark(group_columns, matrix, 8, 0.5, "dense-first", None, "fast")
    assert grouping.num_columns == COLS


def test_bench_grouping_reference(benchmark, layer):
    density, matrix = layer
    grouping = benchmark.pedantic(group_columns, args=(matrix, 8, 0.5, "dense-first",
                                                      None, "reference"),
                                  rounds=3, iterations=1)
    assert grouping.num_columns == COLS


def _best_of(runs: int, func, *args) -> float:
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        func(*args)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.skipif(not hasattr(np, "bitwise_count"),
                    reason="the byte-table popcount fallback (NumPy < 2.0) is "
                           "functional but not held to the 5x bar")
def test_fast_engine_speedup_on_512x1024_layer():
    """The acceptance bar: >= 5x over the reference on a 512x1024 layer.

    Measured at 30% density, where the conflict budget keeps many groups
    open and the reference loop's per-group scoring dominates (~11x here;
    the canonical 16% density sits around 5.5x, too close to the bar for a
    load-tolerant assertion).
    """
    matrix = synthetic_layer(0.3)
    fast = _best_of(3, group_columns, matrix, 8, 0.5, "dense-first", None, "fast")
    reference = _best_of(2, group_columns, matrix, 8, 0.5, "dense-first", None,
                         "reference")
    speedup = reference / fast
    assert speedup >= 5.0, (
        f"fast engine only {speedup:.1f}x faster ({fast:.4f}s vs {reference:.4f}s)")
