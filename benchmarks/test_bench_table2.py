"""Benchmark / regeneration of Table 2 (FPGA ResNet-20 energy efficiency)."""

from __future__ import annotations

from repro.experiments import table2
from repro.experiments.common import format_table

from benchmarks.conftest import BENCH_RUN, run_once


def test_bench_table2_fpga_energy_efficiency(benchmark):
    result = run_once(benchmark, table2.run, BENCH_RUN, include_accuracy=True)
    report = result["measured"]

    print("\nTable 2 — FPGA implementations for CIFAR-10")
    rows = [("Ours [measured]", "150", "8-bit", f"{report.accuracy:.3f}",
             f"{report.energy_efficiency_fpj:.0f}")]
    for row in result["paper_rows"]:
        rows.append((f"{row.platform} [paper]",
                     "N/A" if row.frequency_mhz is None else f"{row.frequency_mhz:.0f}",
                     row.precision,
                     "N/A" if row.accuracy_percent is None else f"{row.accuracy_percent:.2f}%",
                     f"{row.energy_efficiency_fpj:.0f}"))
    print(format_table(["platform", "MHz", "precision", "accuracy",
                        "energy eff. (frames/J)"], rows))
    print(f"column combining improves energy efficiency by "
          f"{result['energy_gain_vs_baseline']:.1f}x over the no-combining baseline "
          "(paper claims ~3x over the next best published design)")

    # The relative claim the model reproduces: combining buys a substantial
    # energy-efficiency factor over running the sparse network unpacked.
    assert result["energy_gain_vs_baseline"] >= 2.5
    assert report.energy_efficiency_fpj > 0
