"""Benchmark / regeneration of Table 3 and Section 7.4 (cross-layer pipelining)."""

from __future__ import annotations

from repro.experiments import table3
from repro.experiments.common import format_table

from benchmarks.conftest import run_once


def test_bench_table3_cross_layer_pipelining(benchmark):
    result = run_once(benchmark, table3.run)

    print("\nSection 7.4 — cross-layer pipelining (per-layer arrays, 150 MHz)")
    rows = [(network, f"{values['sequential_us']:.1f}", f"{values['pipelined_us']:.1f}",
             f"{values['speedup']:.1f}x", f"{result['paper_speedups'][network]:.1f}x")
            for network, values in result["networks"].items()]
    print(format_table(["network", "sequential (us)", "pipelined (us)",
                        "measured speedup", "paper speedup"], rows))

    print("Table 3 — end-to-end single-sample latency for CIFAR-10")
    latency_rows = [("Ours (measured, pipelined ResNet-20)", "",
                     f"{result['networks']['resnet20']['pipelined_us']:.1f}")]
    for row in result["paper_rows"]:
        latency = f"{row.latency_microseconds:.2f}"
        if row.latency_is_lower_bound:
            latency = ">" + latency
        latency_rows.append((f"{row.platform} [paper]", f"{row.accuracy_percent:.2f}%", latency))
    print(format_table(["platform", "accuracy", "latency (us/frame)"], latency_rows))

    resnet = result["networks"]["resnet20"]
    # Paper: 9.3x pipelining speedup and >12x lower latency than prior art.
    assert resnet["speedup"] > 5.0
    best_prior = min(row.latency_microseconds for row in result["paper_rows"]
                     if row.platform != "Ours")
    assert resnet["pipelined_us"] < best_prior
    # Pipelining always helps LeNet-5 too, though our analytic model yields a
    # smaller factor than the paper's 3.5x (see EXPERIMENTS.md).
    lenet = result["networks"]["lenet5"]
    assert lenet["pipelined_us"] < lenet["sequential_us"]
