"""Benchmark / regeneration of Figure 13c (impact of gamma)."""

from __future__ import annotations

from repro.experiments import fig13c
from repro.experiments.common import format_table

from benchmarks.conftest import BENCH_RUN, run_once


def test_bench_fig13c_gamma_sweep(benchmark):
    result = run_once(benchmark, fig13c.run, BENCH_RUN, gammas=(0.1, 0.3, 0.5, 0.7, 0.9))
    points = result["points"]

    print("\nFigure 13c — impact of the limited-conflict condition (gamma)")
    print(format_table(["gamma", "accuracy", "utilization", "nonzeros"],
                       [(p["gamma"], p["accuracy"], p["utilization"], p["nonzeros"])
                        for p in points]))

    by_gamma = {round(p["gamma"], 2): p for p in points}
    # Paper shape: utilization improves sharply from gamma=0.1 to gamma=0.5
    # and then saturates, with little accuracy change.
    assert by_gamma[0.5]["utilization"] > by_gamma[0.1]["utilization"]
    assert by_gamma[0.9]["utilization"] >= by_gamma[0.5]["utilization"] - 0.1
    # Accuracy stays bounded as gamma grows (paper: ~1% on full-scale
    # CIFAR-10; generous bound for the noisier scaled substrate).
    assert by_gamma[0.9]["accuracy"] >= by_gamma[0.1]["accuracy"] - 0.3
