"""Benchmark: the persistent PackingPipeline pool beats fresh pools.

Sweeps that call the pipeline repeatedly (fig15a's three settings,
table2's measured + baseline plans, fig16's settings x networks grid)
used to fork a ProcessPoolExecutor per ``run()`` call; the persistent
pool forks once per pipeline.  This benchmark times both shapes on the
same workload and asserts the reused pool wins, so a regression back to
per-run forking fails loudly.
"""

from __future__ import annotations

import time

from repro.combining import PackingPipeline, PipelineConfig
from repro.experiments.workloads import sparse_network

SWEEPS = 5
WORKERS = 2


def _layers():
    return sparse_network("lenet5", density=0.13, seed=0)


def _fresh_pool_sweeps(layers) -> list:
    results = []
    for _ in range(SWEEPS):
        with PackingPipeline(PipelineConfig(workers=WORKERS)) as pipeline:
            results.append(pipeline.run(layers))
    return results


def _reused_pool_sweeps(layers) -> list:
    with PackingPipeline(PipelineConfig(workers=WORKERS)) as pipeline:
        return [pipeline.run(layers) for _ in range(SWEEPS)]


def _best_of(function, layers, repeats: int = 3) -> tuple[float, list]:
    best = float("inf")
    results = []
    for _ in range(repeats):
        start = time.perf_counter()
        results = function(layers)
        best = min(best, time.perf_counter() - start)
    return best, results


def test_bench_persistent_pool_beats_fresh_pools():
    layers = _layers()
    fresh_seconds, fresh_results = _best_of(_fresh_pool_sweeps, layers)
    reused_seconds, reused_results = _best_of(_reused_pool_sweeps, layers)
    print(f"\n{SWEEPS} sweeps x {WORKERS} workers: "
          f"fresh pools {fresh_seconds * 1e3:.0f} ms, "
          f"reused pool {reused_seconds * 1e3:.0f} ms "
          f"({fresh_seconds / reused_seconds:.2f}x)")
    # Identical results either way (the acceptance property) ...
    for fresh, reused in zip(fresh_results, reused_results):
        assert fresh.layer_names() == reused.layer_names()
        assert fresh.tiles_after() == reused.tiles_after()
    # ... and the reused pool must amortize the per-sweep fork cost.
    assert reused_seconds < fresh_seconds, (
        f"persistent pool ({reused_seconds:.3f}s) did not beat fresh pools "
        f"({fresh_seconds:.3f}s) over {SWEEPS} sweeps")
