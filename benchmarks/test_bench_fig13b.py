"""Benchmark / regeneration of Figure 13b (impact of alpha)."""

from __future__ import annotations

from repro.experiments import fig13b
from repro.experiments.common import format_table

from benchmarks.conftest import BENCH_RUN, run_once


def test_bench_fig13b_alpha_sweep(benchmark):
    result = run_once(benchmark, fig13b.run, BENCH_RUN, alphas=(1, 2, 4, 8, 16))
    points = result["points"]

    print("\nFigure 13b — impact of the number of columns per group (alpha)")
    print(format_table(["alpha", "accuracy", "utilization", "nonzeros"],
                       [(p["alpha"], p["accuracy"], p["utilization"], p["nonzeros"])
                        for p in points]))

    by_alpha = {p["alpha"]: p for p in points}
    # Paper shape: utilization rises with alpha and saturates by alpha = 8-16.
    assert by_alpha[8]["utilization"] > by_alpha[1]["utilization"]
    assert by_alpha[4]["utilization"] >= by_alpha[2]["utilization"] - 0.05
    assert by_alpha[16]["utilization"] >= by_alpha[8]["utilization"] - 0.1
    # Accuracy cost of combining stays bounded (paper: ~1% on full-scale
    # CIFAR-10; the scaled synthetic substrate is noisier, so the bound is
    # generous but still rules out a collapse).
    assert by_alpha[8]["accuracy"] >= by_alpha[1]["accuracy"] - 0.25
