"""Benchmark: calibrated quantizer reuse beats per-call refitting.

``SystolicSystem.run_layer`` fits fresh input / weight quantizers on
every call unless pre-fit ones are passed.  ``QuantizedPackedModel``
calibrates once and freezes the scales — besides being what deployed
hardware does (it cannot refit on unseen data), it skips the per-call
calibration forward and the per-call scale fits.  This benchmark times
both serving shapes over repeated batches and asserts the calibrated
model wins, so a regression back to per-call refitting fails loudly.
"""

from __future__ import annotations

import time

import numpy as np

from repro.combining import PipelineConfig, QuantizedPackedModel
from repro.models import build_model

BATCHES = 8
BATCH = 16


def _quantized_model() -> QuantizedPackedModel:
    model = build_model("lenet5", in_channels=1, num_classes=10, scale=1.0,
                        image_size=8, rng=np.random.default_rng(3))
    mask_rng = np.random.default_rng(4)
    for _, layer in model.packable_layers():
        layer.weight.data *= mask_rng.random(layer.weight.data.shape) < 0.5
    return QuantizedPackedModel.from_model(
        model, PipelineConfig(alpha=8, gamma=0.5), bits=8)


def _batches() -> list[np.ndarray]:
    rng = np.random.default_rng(9)
    return [rng.normal(size=(BATCH, 1, 8, 8)) for _ in range(BATCHES)]


def _calibrated_reuse(quantized, batches) -> list[np.ndarray]:
    quantized.calibrate(batches[0])
    return [quantized.forward(batch) for batch in batches]


def _per_call_refit(quantized, batches) -> list[np.ndarray]:
    outputs = []
    for batch in batches:
        quantized.calibrate(batch)  # refit the scales on every batch ...
        outputs.append(quantized.forward(batch))
    return outputs


def _best_of(function, quantized, batches, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        function(quantized, batches)
        best = min(best, time.perf_counter() - start)
    return best


def test_bench_calibrated_reuse_beats_per_call_refit():
    quantized = _quantized_model()
    batches = _batches()
    refit_seconds = _best_of(_per_call_refit, quantized, batches)
    reuse_seconds = _best_of(_calibrated_reuse, quantized, batches)
    print(f"\n{BATCHES} batches x {BATCH} samples: "
          f"per-call refit {refit_seconds * 1e3:.1f} ms, "
          f"calibrated reuse {reuse_seconds * 1e3:.1f} ms "
          f"({refit_seconds / reuse_seconds:.2f}x)")
    assert reuse_seconds < refit_seconds, (
        f"calibrated reuse ({reuse_seconds:.4f}s) did not beat per-call "
        f"refitting ({refit_seconds:.4f}s) over {BATCHES} batches")
