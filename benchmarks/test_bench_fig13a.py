"""Benchmark / regeneration of Figure 13a (iterative training curve)."""

from __future__ import annotations

from repro.experiments import fig13a
from repro.experiments.common import format_table

from benchmarks.conftest import BENCH_RUN, run_once


def test_bench_fig13a_iterative_training(benchmark):
    result = run_once(benchmark, fig13a.run, BENCH_RUN)
    series = result["series"]

    print("\nFigure 13a — iterative training with column combining (ResNet-20)")
    rows = list(zip(series["epoch"], series["test_accuracy"], series["nonzeros"]))
    print(format_table(["epoch", "test accuracy", "nonzero weights"], rows))
    print(f"pruning epochs: {series['pruning_epochs']}")
    print(f"paper shape: first pruning round removes the most weights; accuracy "
          f"recovers with retraining; final utilization here {result['utilization']:.0%}")

    # Shape checks mirroring the paper's Figure 13a.
    nonzeros = series["nonzeros"]
    assert nonzeros[-1] < nonzeros[0]
    assert all(a >= b for a, b in zip(nonzeros, nonzeros[1:]))
    # The early rounds remove the bulk of the weights (beta decays by 0.9 per
    # round, so later rounds prune progressively less).
    drops = [nonzeros[i] - nonzeros[i + 1] for i in range(len(nonzeros) - 1)]
    if len(drops) >= 2:
        midpoint = len(drops) // 2 + len(drops) % 2
        assert sum(drops[:midpoint]) >= sum(drops[midpoint:])
