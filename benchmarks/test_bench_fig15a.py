"""Benchmark / regeneration of Figure 15a (tiles per ResNet-20 layer)."""

from __future__ import annotations

from repro.experiments import fig15a
from repro.experiments.common import format_table
from repro.hardware.reference import PAPER_CLAIMS

from benchmarks.conftest import run_once


def test_bench_fig15a_tiles_per_layer(benchmark):
    result = run_once(benchmark, fig15a.run)
    tiles = result["tiles"]

    print("\nFigure 15a — tiles per ResNet-20 layer on a 32x32 systolic array")
    rows = [(index + 1, name, tiles["baseline"][index], tiles["column-combine"][index],
             tiles["column-combine-pruning"][index])
            for index, name in enumerate(result["layer_names"])]
    print(format_table(["layer", "name", "baseline", "combine", "combine-prune"], rows))
    totals = result["total_tiles"]
    print(f"totals: {totals}")
    print(f"largest-layer reduction {result['largest_layer_tile_reduction']:.1f}x "
          f"(paper: ~{PAPER_CLAIMS['largest_layer_tile_reduction']:.0f}x)")

    assert totals["baseline"] / totals["column-combine"] < 1.3
    assert (totals["baseline"] / totals["column-combine-pruning"]
            >= PAPER_CLAIMS["tile_reduction_min"])
    assert result["largest_layer_tile_reduction"] >= 4.0
