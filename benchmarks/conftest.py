"""Shared configuration for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper and
prints the corresponding rows / series (run with ``-s`` to see them, e.g.
``pytest benchmarks/ --benchmark-only -s``).  Training-based benchmarks use
the scaled-down run configuration below so the whole harness completes in
a few minutes on a CPU while exercising the full Algorithm 1 code path.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.utils.config import RunConfig


_BENCHMARK_DIR = Path(__file__).parent


def pytest_collection_modifyitems(items: list[pytest.Item]) -> None:
    """Mark every benchmark in this directory as ``slow``.

    The ``slow`` marker (registered in ``pytest.ini``) lets
    ``pytest -m "not slow"`` skip the whole benchmark harness for a quick
    tier-1 signal; ``scripts/check.sh`` relies on this.  The hook sees the
    whole session's items, so it filters to this directory's.
    """
    for item in items:
        if _BENCHMARK_DIR in Path(item.fspath).parents:
            item.add_marker(pytest.mark.slow)

#: Scaled-down configuration for training-based benchmarks.  Large enough
#: that the accuracy trends of Figures 13 and 15b are visible (the models
#: reach well above 10-class chance), small enough that the whole harness
#: finishes in a few minutes on a CPU.
BENCH_RUN = RunConfig(train_samples=512, test_samples=256, image_size=12,
                      epochs_per_round=2, final_epochs=3, batch_size=64,
                      model_scale=1.0)


@pytest.fixture(scope="session")
def bench_run() -> RunConfig:
    return BENCH_RUN


def run_once(benchmark, func, *args, **kwargs):
    """Run a heavyweight experiment exactly once under pytest-benchmark."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)
