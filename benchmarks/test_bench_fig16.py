"""Benchmark / regeneration of Figure 16 (ASIC comparison, three CNNs x three settings)."""

from __future__ import annotations

from repro.experiments import fig16
from repro.experiments.common import format_table
from repro.hardware.reference import PAPER_CLAIMS

from benchmarks.conftest import BENCH_RUN, run_once


def test_bench_fig16_asic_three_networks(benchmark):
    result = run_once(benchmark, fig16.run, BENCH_RUN, include_accuracy=True)

    print("\nFigure 16 — throughput / tiles / energy / accuracy (32x32 array, tiling)")
    rows = []
    for network, per_setting in result["results"].items():
        for setting, values in per_setting.items():
            rows.append((network, setting, values["tiles"],
                         f"{values['throughput_fps']:.1f}",
                         f"{values['energy_per_sample_j'] * 1e6:.2f}",
                         f"{values['utilization']:.0%}",
                         f"{values['accuracy']:.3f}"))
    print(format_table(["network", "setting", "tiles", "throughput (fps)",
                        "energy (uJ)", "utilization", "accuracy"], rows))
    print(format_table(
        ["network", "tile reduction", "energy reduction", "throughput gain"],
        [(network, f"{f['tile_reduction']:.1f}x", f"{f['energy_reduction']:.1f}x",
          f"{f['throughput_gain']:.1f}x") for network, f in result["factors"].items()]))
    print("paper: column-combine pruning reduces energy and tiles by 4-6x and "
          "raises throughput 3-4x across all three networks")

    for network, factors in result["factors"].items():
        assert factors["tile_reduction"] >= 3.0, network
        assert factors["energy_reduction"] >= 2.5, network
        assert factors["throughput_gain"] >= PAPER_CLAIMS["throughput_gain_min"] - 0.5, network
