"""Benchmarks of the two conflict-pruning engines on large synthetic layers.

Measures Algorithm 3 on 512x1024 filter matrices at several densities with
both the one-pass scatter engine (``engine="fast"``) and the per-group
Python loop (``engine="reference"``), pinning the fast path's speedup in
the perf trajectory.  The reference engine's cost grows with the number of
groups it dense-slices (hundreds at α = 8 on 1024 columns), which is what
every prune round of Algorithm 1 and every sweep's pack step pays.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.combining import group_columns
from repro.combining.pruning import conflict_mask

ROWS, COLS = 512, 1024
DENSITIES = (0.05, 0.16, 0.3)


def synthetic_layer(density: float, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return (rng.normal(size=(ROWS, COLS))
            * (rng.random((ROWS, COLS)) < density))


@pytest.fixture(scope="module", params=DENSITIES, ids=lambda d: f"density{d}")
def grouped_layer(request):
    matrix = synthetic_layer(request.param)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    return request.param, matrix, grouping


def test_bench_prune_fast(benchmark, grouped_layer):
    density, matrix, grouping = grouped_layer
    keep = benchmark(conflict_mask, matrix, grouping, "fast")
    assert keep.shape == matrix.shape


def test_bench_prune_reference(benchmark, grouped_layer):
    density, matrix, grouping = grouped_layer
    keep = benchmark.pedantic(conflict_mask, args=(matrix, grouping, "reference"),
                              rounds=3, iterations=1)
    assert keep.shape == matrix.shape


def _best_of(runs: int, func, *args) -> float:
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        func(*args)
        best = min(best, time.perf_counter() - start)
    return best


def test_fast_prune_engine_speedup_on_512x1024_layer():
    """The acceptance bar: >= 3x over the reference on a 512x1024 layer at
    the paper's 16% density (α = 8, γ = 0.5 keeps ~130+ groups for the
    reference loop to dense-slice; the scatter engine measures ~3.3-3.9x
    unloaded).  The margin over the bar is moderate, so a failing first
    measurement is retried once to absorb transient machine load."""
    matrix = synthetic_layer(0.16)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)

    def measure() -> tuple[float, float, float]:
        fast = _best_of(7, conflict_mask, matrix, grouping, "fast")
        reference = _best_of(4, conflict_mask, matrix, grouping, "reference")
        return reference / fast, fast, reference

    speedup, fast, reference = measure()
    if speedup < 3.0:
        speedup, fast, reference = max(measure(), (speedup, fast, reference))
    assert speedup >= 3.0, (
        f"fast prune engine only {speedup:.1f}x faster "
        f"({fast:.4f}s vs {reference:.4f}s)")
