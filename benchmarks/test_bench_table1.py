"""Benchmark / regeneration of Table 1 (ASIC LeNet-5 comparison)."""

from __future__ import annotations

from repro.experiments import table1
from repro.experiments.common import format_table

from benchmarks.conftest import BENCH_RUN, run_once


def test_bench_table1_lenet_asic_designs(benchmark):
    result = run_once(benchmark, table1.run, BENCH_RUN, include_accuracy=True)

    print("\nTable 1 — ASIC implementations of LeNet-5 on MNIST")
    rows = []
    for name, report in result["measured"].items():
        rows.append((f"Ours ({name}) [measured]", f"{report.accuracy:.3f}",
                     f"{report.area_efficiency:.0f}",
                     f"{report.energy_efficiency_fpj:.0f}"))
    for row in result["paper_rows"]:
        rows.append((f"{row.platform} [paper]", f"{row.accuracy_percent:.2f}%",
                     "N/A" if row.area_efficiency is None else f"{row.area_efficiency:.0f}",
                     f"{row.energy_efficiency:.0f}"))
    print(format_table(["platform", "accuracy", "area eff. (fps/mm^2)",
                        "energy eff. (frames/J)"], rows))
    print("paper shape: design 2 (5K weights) trades a little accuracy for "
          "higher area and energy efficiency than design 1 (8K weights)")

    design1 = result["measured"]["design 1"]
    design2 = result["measured"]["design 2"]
    # The sparser design is more efficient (Table 1's design-1 vs design-2 shape).
    assert design2.energy_efficiency_fpj > design1.energy_efficiency_fpj
    assert design2.area_efficiency > design1.area_efficiency
    # Both designs are orders of magnitude more energy-efficient than the
    # CPU / GPU rows of the paper's table.
    cpu_row = next(r for r in result["paper_rows"] if r.hardware == "CPU")
    assert design1.energy_efficiency_fpj > 100 * cpu_row.energy_efficiency
