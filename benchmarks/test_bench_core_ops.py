"""Micro-benchmarks of the core operations (grouping, packing, array execution).

Unlike the table / figure benchmarks, these measure the library's own
primitives repeatedly with pytest-benchmark, so regressions in the hot
paths (Algorithm 2 grouping, packed matrix multiplication, tiled execution)
show up as timing changes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.combining import group_columns, pack_filter_matrix
from repro.systolic import ArrayConfig, SystolicArray, TiledMatmul


@pytest.fixture(scope="module")
def layer_96x94():
    rng = np.random.default_rng(0)
    matrix = rng.normal(size=(96, 94)) * (rng.random((96, 94)) < 0.16)
    data = rng.normal(size=(94, 256))
    return matrix, data


def test_bench_column_grouping(benchmark, layer_96x94):
    matrix, _ = layer_96x94
    grouping = benchmark(group_columns, matrix, 8, 0.5)
    assert grouping.num_groups < matrix.shape[1]


def test_bench_pack_filter_matrix(benchmark, layer_96x94):
    matrix, _ = layer_96x94
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    packed = benchmark(pack_filter_matrix, matrix, grouping)
    assert packed.num_groups == grouping.num_groups


def test_bench_packed_multiply(benchmark, layer_96x94):
    matrix, data = layer_96x94
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    packed = pack_filter_matrix(matrix, grouping)
    result = benchmark(packed.multiply, data)
    assert result.shape == (96, 256)


def test_bench_dense_tiled_matmul(benchmark, layer_96x94):
    matrix, data = layer_96x94
    tiled = TiledMatmul(ArrayConfig(rows=32, cols=32))
    result = benchmark(tiled.multiply_dense, matrix, data)
    assert result.num_tiles == 9


def test_bench_packed_tiled_matmul(benchmark, layer_96x94):
    matrix, data = layer_96x94
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    packed = pack_filter_matrix(matrix, grouping)
    tiled = TiledMatmul(ArrayConfig(rows=32, cols=32, alpha=8))
    result = benchmark(tiled.multiply_packed, packed, data)
    assert result.num_tiles < 9


def test_bench_untiled_packed_array(benchmark, layer_96x94):
    matrix, data = layer_96x94
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    packed = pack_filter_matrix(matrix, grouping)
    array = SystolicArray(ArrayConfig(rows=96, cols=max(1, packed.num_groups), alpha=8))
    result = benchmark(array.multiply_packed, packed, data)
    assert result.utilization > 0.4
