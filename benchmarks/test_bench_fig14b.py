"""Benchmark / regeneration of Figure 14b (tile reduction for one layer)."""

from __future__ import annotations

from repro.experiments import fig14b
from repro.experiments.common import format_table

from benchmarks.conftest import run_once


def test_bench_fig14b_single_layer_packing(benchmark):
    result = run_once(benchmark, fig14b.run)

    print("\nFigure 14b — packing one 96x94 sparse layer (16% nonzeros, 32x32 array)")
    print(format_table(
        ["quantity", "sparse filter matrix", "packed filter matrix"],
        [
            ("columns", result["columns_before"], result["columns_after"]),
            ("density", f"{result['density_before']:.0%}", f"{result['density_after']:.0%}"),
            ("tiles", result["tiles_before"], result["tiles_after"]),
        ]))
    print(f"tile reduction {result['tile_reduction']:.1f}x (paper: 3x, 9 -> 3 tiles)")

    assert result["tiles_before"] == 9
    assert result["tiles_after"] <= 4
    assert result["tile_reduction"] >= 2.0
