"""Optimality analysis for energy efficiency (Section 7.2).

With ``c >= 1`` the ratio between the number of MACs actually performed and
the optimal number (only the nonzero weights), and ``r = Emem / Ecomp``,
the paper derives::

    Energy Eff. / Optimal Energy Eff. = (1/c + r) / (1 + r)  ~=  1/c  for small r

and notes that ``1/c`` is exactly the packing efficiency achieved by column
combining, so a packing efficiency of ~94.5% puts the design within ~5.5%
of the optimal energy efficiency for networks with small ``r`` (r = 0.06
for LeNet-5 and 0.1 for ResNet-20 in the paper's synthesis results).
"""

from __future__ import annotations


def energy_efficiency_ratio(c: float, r: float) -> float:
    """Ratio of achieved to optimal energy efficiency.

    Parameters
    ----------
    c:
        MAC inflation factor ``Nmac / Nmac_opt`` (>= 1); equal to
        ``1 / packing_efficiency`` for a packed systolic array.
    r:
        Memory-to-compute energy ratio ``Emem / Ecomp`` (>= 0), where
        ``Ecomp`` is the compute energy of the *achieved* design
        (``Emac * c * Nmac_opt``), matching how the paper measures r from
        its synthesized designs.
    """
    if c < 1:
        raise ValueError("c must be >= 1 (cannot perform fewer MACs than the optimum)")
    if r < 0:
        raise ValueError("r must be non-negative")
    return (1.0 / c + r) / (1.0 + r)


def ratio_from_packing_efficiency(packing_efficiency: float, r: float) -> float:
    """Same ratio, parameterised by the packing efficiency (1/c)."""
    if not 0.0 < packing_efficiency <= 1.0:
        raise ValueError("packing_efficiency must be in (0, 1]")
    return energy_efficiency_ratio(1.0 / packing_efficiency, r)


def optimal_energy_efficiency(mac_energy_pj: float, optimal_macs: int,
                              memory_energy_pj: float) -> float:
    """Optimal energy efficiency in frames per joule."""
    if optimal_macs < 0:
        raise ValueError("optimal_macs must be non-negative")
    total_pj = mac_energy_pj * optimal_macs + memory_energy_pj
    if total_pj <= 0:
        return float("inf")
    return 1.0 / (total_pj * 1e-12)


def achieved_energy_efficiency(mac_energy_pj: float, optimal_macs: int, c: float,
                               memory_energy_pj: float) -> float:
    """Achieved energy efficiency when ``c * optimal_macs`` MACs are performed."""
    if c < 1:
        raise ValueError("c must be >= 1")
    total_pj = mac_energy_pj * c * optimal_macs + memory_energy_pj
    if total_pj <= 0:
        return float("inf")
    return 1.0 / (total_pj * 1e-12)
