"""ASIC design-point evaluation (Section 7.1).

An :class:`ASICDesign` couples an execution plan (tiles, cycles, MAC counts
from :class:`repro.systolic.system.SystolicSystem`) with the energy / area
models and a clock frequency, and reports the metrics of Table 1 and
Figure 16: throughput, energy per sample, energy efficiency
(frames/joule), area, and area efficiency (frames/second/mm^2).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.area import AreaModel
from repro.hardware.energy import EnergyBreakdown, EnergyModel
from repro.systolic.system import ModelExecutionPlan


@dataclass
class ASICDesign:
    """Configuration of one ASIC design point."""

    name: str = "ours"
    frequency_hz: float = 4.0e8
    accumulation_bits: int = 32
    array_rows: int = 32
    array_cols: int = 32
    alpha: int = 8
    cell_type: str = "mx"
    sram_kilobytes: float = 64.0
    energy_model: EnergyModel = field(default_factory=EnergyModel)
    area_model: AreaModel = field(default_factory=AreaModel)

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")


@dataclass
class ASICReport:
    """Evaluated metrics of an ASIC design point on one network."""

    design: str
    network: str
    accuracy: float
    latency_seconds: float
    throughput_fps: float
    energy: EnergyBreakdown
    area_mm2: float

    @property
    def energy_per_sample_joules(self) -> float:
        return self.energy.total_joules

    @property
    def energy_efficiency_fpj(self) -> float:
        """Frames per joule (the paper's energy-efficiency metric)."""
        if self.energy.total_joules == 0:
            return float("inf")
        return 1.0 / self.energy.total_joules

    @property
    def area_efficiency(self) -> float:
        """Frames per second per square millimetre."""
        if self.area_mm2 == 0:
            return float("inf")
        return self.throughput_fps / self.area_mm2


def evaluate_asic(design: ASICDesign, plan: ModelExecutionPlan, network: str,
                  accuracy: float, sram_bytes_per_sample: int | None = None) -> ASICReport:
    """Evaluate a design on a planned network execution.

    Parameters
    ----------
    design:
        The ASIC design point.
    plan:
        Per-layer execution plan produced by ``SystolicSystem.plan_model``
        for a single input sample.
    network:
        Network name (for reporting).
    accuracy:
        Classification accuracy of the deployed (pruned, packed, quantized)
        network, as a fraction in [0, 1].
    sram_bytes_per_sample:
        On-chip traffic per sample.  Defaults to one byte per occupied
        MAC-column word plus one byte per output word, derived from the plan.
    """
    total_cycles = plan.total_cycles
    latency = total_cycles / design.frequency_hz
    throughput = 1.0 / latency if latency > 0 else float("inf")

    # Energy: every occupied cell performs a MAC each word slot, whether or
    # not its weight is useful — that is precisely the inefficiency column
    # combining removes (c = occupied / useful in Section 7.2).
    mac_operations = plan.total_occupied_macs
    if sram_bytes_per_sample is None:
        input_bytes = sum(layer.original_columns * layer.spatial_size ** 2
                          for layer in plan.layers)
        output_bytes = sum(layer.rows * layer.spatial_size ** 2 for layer in plan.layers)
        weight_bytes = sum(layer.rows * layer.packed_columns for layer in plan.layers)
        sram_bytes_per_sample = input_bytes + output_bytes + weight_bytes
    energy = design.energy_model.inference_energy(
        mac_operations, sram_bytes_per_sample, accumulation_bits=design.accumulation_bits)

    area = design.area_model.design_area(design.array_rows, design.array_cols,
                                         design.sram_kilobytes, alpha=design.alpha,
                                         cell_type=design.cell_type)
    return ASICReport(design=design.name, network=network, accuracy=accuracy,
                      latency_seconds=latency, throughput_fps=throughput,
                      energy=energy, area_mm2=area)
