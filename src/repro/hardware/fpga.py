"""FPGA design-point evaluation (Section 7.3).

The FPGA design runs the same systolic array system at a lower clock
frequency (150 MHz on the Xilinx XCKU035 in the paper) and with a
configurable energy overhead relative to the ASIC cell energies,
reflecting the LUT/FF implementation of the bit-serial cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.energy import EnergyBreakdown, EnergyModel
from repro.systolic.system import ModelExecutionPlan


@dataclass
class FPGADesign:
    """Configuration of one FPGA design point."""

    name: str = "ours-fpga"
    frequency_hz: float = 1.5e8
    accumulation_bits: int = 32
    #: multiplier applied to the ASIC per-operation energies to account for
    #: the FPGA fabric (routing, LUT-based logic, configuration overhead).
    fabric_energy_overhead: float = 8.0
    #: static power of the device while the design runs, in watts.
    static_power_w: float = 0.5
    energy_model: EnergyModel = field(default_factory=EnergyModel)

    def __post_init__(self) -> None:
        if self.frequency_hz <= 0:
            raise ValueError("frequency must be positive")
        if self.fabric_energy_overhead < 1.0:
            raise ValueError("fabric_energy_overhead must be >= 1")
        if self.static_power_w < 0:
            raise ValueError("static_power_w must be non-negative")


@dataclass
class FPGAReport:
    """Evaluated metrics of an FPGA design point on one network."""

    design: str
    network: str
    accuracy: float
    latency_seconds: float
    throughput_fps: float
    dynamic_energy: EnergyBreakdown
    static_energy_joules: float

    @property
    def energy_per_sample_joules(self) -> float:
        return self.dynamic_energy.total_joules + self.static_energy_joules

    @property
    def energy_efficiency_fpj(self) -> float:
        """Frames per joule (Table 2's metric)."""
        total = self.energy_per_sample_joules
        if total == 0:
            return float("inf")
        return 1.0 / total


def evaluate_fpga(design: FPGADesign, plan: ModelExecutionPlan, network: str,
                  accuracy: float, latency_cycles: int | None = None) -> FPGAReport:
    """Evaluate an FPGA design on a planned single-sample execution.

    ``latency_cycles`` overrides the plan's sequential cycle count; the
    paper's FPGA design pipelines across layers (Section 3.6), so callers
    pass the cross-layer-pipelined latency here while the plan still
    supplies the MAC and memory-traffic counts.
    """
    cycles = latency_cycles if latency_cycles is not None else plan.total_cycles
    latency = cycles / design.frequency_hz
    throughput = 1.0 / latency if latency > 0 else float("inf")

    mac_operations = plan.total_occupied_macs
    input_bytes = sum(layer.original_columns * layer.spatial_size ** 2
                      for layer in plan.layers)
    output_bytes = sum(layer.rows * layer.spatial_size ** 2 for layer in plan.layers)
    weight_bytes = sum(layer.rows * layer.packed_columns for layer in plan.layers)
    base = design.energy_model.inference_energy(
        mac_operations, input_bytes + output_bytes + weight_bytes,
        accumulation_bits=design.accumulation_bits)
    dynamic = EnergyBreakdown(
        compute_pj=base.compute_pj * design.fabric_energy_overhead,
        memory_pj=base.memory_pj * design.fabric_energy_overhead,
    )
    static_energy = design.static_power_w * latency
    return FPGAReport(design=design.name, network=network, accuracy=accuracy,
                      latency_seconds=latency, throughput_fps=throughput,
                      dynamic_energy=dynamic, static_energy_joules=static_energy)
