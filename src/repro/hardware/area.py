"""Area model for systolic cells and on-chip SRAM (45nm-class constants)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class AreaModel:
    """Cell and memory area constants, in square millimetres.

    The MX cell is an interleaved cell augmented with an α-way input
    multiplexer and a channel-select register; the paper describes this as
    "a slight increase in the complexity of systolic cells", modelled here
    as a small per-way overhead on top of the interleaved cell.
    """

    #: one balanced bit-serial cell (single MAC, 8-bit accumulation).
    bl_cell_mm2: float = 4.0e-4
    #: one interleaved cell (four MACs, 32-bit accumulation data path).
    il_cell_mm2: float = 1.6e-3
    #: extra area per multiplexed input way of an MX cell.
    mx_way_overhead_mm2: float = 4.0e-5
    #: SRAM macro area per kilobyte.
    sram_mm2_per_kb: float = 2.5e-3
    #: fixed area of the shift / ReLU / quantization blocks and control.
    peripheral_mm2: float = 0.05

    def mx_cell_area(self, alpha: int) -> float:
        """Area of one MX cell supporting ``alpha``-way multiplexing."""
        if alpha < 1:
            raise ValueError("alpha must be >= 1")
        return self.il_cell_mm2 + alpha * self.mx_way_overhead_mm2

    def array_area(self, rows: int, cols: int, alpha: int = 8,
                   cell_type: str = "mx") -> float:
        """Total cell area of a (rows x cols) array of the given cell type."""
        if rows < 1 or cols < 1:
            raise ValueError("array dimensions must be >= 1")
        if cell_type == "bl":
            cell = self.bl_cell_mm2
        elif cell_type == "il":
            cell = self.il_cell_mm2
        elif cell_type == "mx":
            cell = self.mx_cell_area(alpha)
        else:
            raise ValueError(f"unknown cell type {cell_type!r}")
        return rows * cols * cell

    def sram_area(self, kilobytes: float) -> float:
        """Area of the on-chip weight / activation buffers."""
        if kilobytes < 0:
            raise ValueError("kilobytes must be non-negative")
        return kilobytes * self.sram_mm2_per_kb

    def design_area(self, rows: int, cols: int, sram_kilobytes: float,
                    alpha: int = 8, cell_type: str = "mx") -> float:
        """Array + SRAM + peripheral area of a full design."""
        return (self.array_area(rows, cols, alpha, cell_type)
                + self.sram_area(sram_kilobytes)
                + self.peripheral_mm2)
