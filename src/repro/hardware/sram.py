"""On-chip SRAM modelling (the CACTI-substitute).

The paper models its weight, input, and output buffers with CACTI 7.0 on a
45nm process.  CACTI is not available offline, so this module provides a
compact analytical model with the same qualitative behaviour CACTI
exhibits for small scratchpad SRAMs:

* access energy grows roughly with the square root of capacity (longer
  bit-lines and word-lines),
* area grows slightly super-linearly with capacity (periphery amortises),
* leakage power grows linearly with capacity.

The constants are anchored to published 45nm figures for a 16 KB SRAM
(~1.25 pJ per byte access, ~0.05 mm^2) and are exposed as parameters so
design-space sweeps can vary them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class SRAMConfig:
    """Geometry and technology parameters of one SRAM macro."""

    capacity_bytes: int
    word_bytes: int = 8
    banks: int = 1
    #: access energy (pJ/byte) of the 16 KB anchor macro.
    anchor_access_pj_per_byte: float = 1.25
    #: area (mm^2) of the 16 KB anchor macro.
    anchor_area_mm2: float = 0.05
    #: leakage (mW) of the 16 KB anchor macro.
    anchor_leakage_mw: float = 0.5
    anchor_capacity_bytes: int = 16 * 1024

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.word_bytes <= 0:
            raise ValueError("word_bytes must be positive")
        if self.banks <= 0:
            raise ValueError("banks must be positive")


@dataclass(frozen=True)
class SRAMEstimate:
    """Energy / area / leakage estimate for one SRAM macro."""

    capacity_bytes: int
    access_energy_pj_per_byte: float
    area_mm2: float
    leakage_mw: float

    def read_energy_pj(self, num_bytes: int) -> float:
        """Energy to read ``num_bytes`` from the macro."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return num_bytes * self.access_energy_pj_per_byte

    def write_energy_pj(self, num_bytes: int) -> float:
        """Energy to write ``num_bytes``; writes cost ~10% more than reads."""
        if num_bytes < 0:
            raise ValueError("num_bytes must be non-negative")
        return 1.1 * num_bytes * self.access_energy_pj_per_byte


def estimate_sram(config: SRAMConfig) -> SRAMEstimate:
    """Estimate access energy, area, and leakage for an SRAM macro.

    Banking divides the capacity among ``banks`` independent macros, which
    reduces per-access energy (shorter bit-lines) at a small area overhead.
    """
    per_bank = config.capacity_bytes / config.banks
    ratio = per_bank / config.anchor_capacity_bytes
    # Access energy scales ~sqrt(capacity); clamp below so tiny macros do
    # not become absurdly cheap (periphery dominates).
    access = config.anchor_access_pj_per_byte * max(0.25, math.sqrt(ratio))
    # Area per bank scales slightly sub-linearly; total includes a 5% banking
    # overhead per additional bank.
    area_per_bank = config.anchor_area_mm2 * (ratio ** 0.9)
    area = area_per_bank * config.banks * (1.0 + 0.05 * (config.banks - 1))
    leakage = config.anchor_leakage_mw * (config.capacity_bytes
                                          / config.anchor_capacity_bytes)
    return SRAMEstimate(capacity_bytes=config.capacity_bytes,
                        access_energy_pj_per_byte=access,
                        area_mm2=area,
                        leakage_mw=leakage)


@dataclass(frozen=True)
class BufferRequirements:
    """Capacity requirements of the three buffers in Figure 6."""

    weight_buffer_bytes: int
    input_buffer_bytes: int
    output_buffer_bytes: int

    @property
    def total_bytes(self) -> int:
        return (self.weight_buffer_bytes + self.input_buffer_bytes
                + self.output_buffer_bytes)

    @property
    def total_kilobytes(self) -> float:
        return self.total_bytes / 1024.0


def buffer_requirements(packed_layer_sizes: list[tuple[int, int]],
                        max_spatial: int, max_channels: int,
                        bytes_per_element: int = 1,
                        double_buffered: bool = True) -> BufferRequirements:
    """Size the weight / input / output buffers for a packed network.

    Parameters
    ----------
    packed_layer_sizes:
        ``(rows, packed_columns)`` of every layer; the weight buffer must
        hold all packed weights plus one byte of channel-select metadata
        per cell.
    max_spatial:
        Largest activation-map side length across layers.
    max_channels:
        Largest channel count across layers (inputs or outputs).
    bytes_per_element:
        Activation / weight element size (1 for 8-bit).
    double_buffered:
        The shift block prefetches the next tile while the current one is
        streaming (Section 4.3), doubling the input buffer.
    """
    if max_spatial <= 0 or max_channels <= 0:
        raise ValueError("max_spatial and max_channels must be positive")
    weight_bytes = sum(rows * cols * (bytes_per_element + 1)
                       for rows, cols in packed_layer_sizes)
    activation_bytes = max_channels * max_spatial * max_spatial * bytes_per_element
    input_bytes = activation_bytes * (2 if double_buffered else 1)
    output_bytes = activation_bytes
    return BufferRequirements(weight_buffer_bytes=weight_bytes,
                              input_buffer_bytes=input_bytes,
                              output_buffer_bytes=output_bytes)
