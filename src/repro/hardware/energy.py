"""Energy model: Etotal = Emac * Nmac + Emem (Section 7.2).

Default per-operation energies are 45nm-class values (picojoules) in line
with published estimates for 8-bit multiply-accumulate units and small
on-chip SRAMs.  They are explicit model parameters so ablations can vary
them; all comparative results in the benchmarks depend only on ratios.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy (in picojoules) for processing one input sample."""

    compute_pj: float
    memory_pj: float

    @property
    def total_pj(self) -> float:
        return self.compute_pj + self.memory_pj

    @property
    def total_joules(self) -> float:
        return self.total_pj * 1e-12

    @property
    def memory_to_compute_ratio(self) -> float:
        """The r = Emem / Ecomp ratio of Section 7.2."""
        if self.compute_pj == 0:
            return 0.0
        return self.memory_pj / self.compute_pj


@dataclass(frozen=True)
class EnergyModel:
    """Per-operation energy constants (picojoules) for a 45nm-class process."""

    #: one 8-bit multiply folded into a 32-bit accumulation.
    mac_pj: float = 0.30
    #: one 8-bit multiply folded into a 16-bit accumulation (Section 7.1.2).
    mac_16bit_pj: float = 0.25
    #: one byte read from or written to on-chip SRAM.
    sram_access_pj: float = 1.25
    #: one byte moved to or from off-chip DRAM (unused when the model and
    #: activations fit on chip, as for the networks evaluated here).
    dram_access_pj: float = 200.0

    def mac_energy(self, accumulation_bits: int = 32) -> float:
        """Energy of one MAC at the requested accumulation width."""
        if accumulation_bits <= 16:
            return self.mac_16bit_pj
        return self.mac_pj

    def compute_energy(self, mac_operations: int, accumulation_bits: int = 32) -> float:
        """Energy of ``mac_operations`` multiply-accumulates, in picojoules."""
        if mac_operations < 0:
            raise ValueError("mac_operations must be non-negative")
        return mac_operations * self.mac_energy(accumulation_bits)

    def memory_energy(self, sram_bytes: int, dram_bytes: int = 0) -> float:
        """Energy of on-chip (and optional off-chip) traffic, in picojoules."""
        if sram_bytes < 0 or dram_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        return sram_bytes * self.sram_access_pj + dram_bytes * self.dram_access_pj

    def inference_energy(self, mac_operations: int, sram_bytes: int,
                         accumulation_bits: int = 32, dram_bytes: int = 0
                         ) -> EnergyBreakdown:
        """Full per-sample energy breakdown."""
        return EnergyBreakdown(
            compute_pj=self.compute_energy(mac_operations, accumulation_bits),
            memory_pj=self.memory_energy(sram_bytes, dram_bytes),
        )


def sram_traffic_bytes(layer_input_words: int, layer_output_words: int,
                       weight_bytes: int) -> int:
    """On-chip traffic for one layer: read inputs + weights, write outputs.

    Inputs and outputs are 8-bit (one byte per element); weights are read
    once per tile pass but the model charges them once per sample, which is
    the paper's "fetched only once for all usages within a layer" ideal.
    """
    if min(layer_input_words, layer_output_words, weight_bytes) < 0:
        raise ValueError("traffic quantities must be non-negative")
    return layer_input_words + layer_output_words + weight_bytes
