"""Prior-art reference numbers reported in the paper's comparison tables.

These constants are copied from Tables 1-3 of the paper so the benchmark
harness can print the paper's comparison rows next to the values measured
by this reproduction.  They are reference data, not measurements of this
codebase.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Table1Row:
    """One row of Table 1 (MNIST / LeNet-5-class accelerators)."""

    platform: str
    network: str
    hardware: str
    accuracy_percent: float
    area_efficiency: float | None
    energy_efficiency: float


#: Table 1 — comparison of ASIC implementations of LeNet-5 on MNIST.
TABLE1_ROWS: tuple[Table1Row, ...] = (
    Table1Row("Ours (design 1)", "CNN", "ASIC", 98.32, 46603.0, 658053.0),
    Table1Row("Ours (design 2)", "CNN", "ASIC", 97.61, 64716.0, 869402.0),
    Table1Row("SC-DCNN (type a)", "CNN", "ASIC", 98.26, 21439.0, 221287.0),
    Table1Row("SC-DCNN (type b)", "CNN", "ASIC", 96.64, 45946.0, 510734.0),
    Table1Row("2x Xeon W5580", "CNN", "CPU", 98.46, 2.5, 4.2),
    Table1Row("Tesla C2075", "CNN", "GPU", 98.46, 4.5, 3.2),
    Table1Row("SpiNNaker", "DBN", "ARM", 95.00, None, 166.7),
    Table1Row("TrueNorth", "SNN", "ASIC", 99.42, 2.3, 9259.0),
)


@dataclass(frozen=True)
class Table2Row:
    """One row of Table 2 (FPGA implementations, CIFAR-10)."""

    platform: str
    frequency_mhz: float | None
    precision: str
    accuracy_percent: float | None
    energy_efficiency_fpj: float


#: Table 2 — FPGA implementations for CIFAR-10.
TABLE2_ROWS: tuple[Table2Row, ...] = (
    Table2Row("Esser et al. [57]", None, "N/A", None, 6109.0),
    Table2Row("Zhao et al. [70]", 143.0, "1-bit", 87.73, 1320.0),
    Table2Row("CirCNN [16]", 100.0, "16-bit", 88.3, 36.0),
    Table2Row("Ours", 150.0, "8-bit", 93.1, 18830.0),
)


@dataclass(frozen=True)
class Table3Row:
    """One row of Table 3 (end-to-end single-sample latency, CIFAR-10)."""

    platform: str
    accuracy_percent: float
    latency_microseconds: float
    latency_is_lower_bound: bool = False


#: Table 3 — latency comparison with cross-layer pipelining.
TABLE3_ROWS: tuple[Table3Row, ...] = (
    Table3Row("CPU [70]", 88.42, 14800.0),
    Table3Row("GPU [70]", 88.42, 730.0),
    Table3Row("FPGA [70]", 88.42, 5940.0),
    Table3Row("FPGA [18]", 85.88, 652.0, latency_is_lower_bound=True),
    Table3Row("Ours", 93.1, 55.68),
)


#: Headline relative claims of the paper, used by EXPERIMENTS.md and the
#: benchmark harness to check that the reproduction preserves the *shape*
#: of the results (who wins, and by roughly what factor).
PAPER_CLAIMS: dict[str, float] = {
    # Figure 13b / abstract: utilization improvement from column combining.
    "utilization_gain": 4.0,
    # Figure 16: energy / tile reduction of column-combine pruning vs baseline.
    "tile_reduction_min": 4.0,
    "tile_reduction_max": 6.0,
    # Figure 16: throughput gain of column-combine pruning vs baseline.
    "throughput_gain_min": 3.0,
    "throughput_gain_max": 4.0,
    # Section 7.4: cross-layer pipelining latency reductions.
    "pipeline_speedup_lenet": 3.5,
    "pipeline_speedup_resnet": 9.3,
    # Table 1: energy-efficiency improvement over SC-DCNN (type a).
    "asic_energy_gain_vs_scdcnn": 3.0,
    # Table 2: energy-efficiency improvement over the next best FPGA design.
    "fpga_energy_gain": 3.0,
    # Table 3: latency improvement over the next best implementation.
    "latency_gain": 12.0,
    # Figure 15a: tile reduction in ResNet-20's largest layer.
    "largest_layer_tile_reduction": 5.0,
}
