"""Analytical ASIC / FPGA cost models and prior-art reference numbers.

The paper synthesises its design with Synopsys DC on the NanGate 45nm
library and models SRAM with CACTI 7.0.  Those tools are not available
here, so this package provides analytical models with 45nm-class energy
and area constants.  Absolute values are calibration parameters; the
relative comparisons the paper reports (baseline vs. column combining,
ours vs. prior art) are what the models reproduce, consistent with the
paper's own Section 7.2 analysis in which energy efficiency is governed by
packing efficiency when memory energy is small.
"""

from repro.hardware.energy import EnergyModel, EnergyBreakdown
from repro.hardware.area import AreaModel
from repro.hardware.asic import ASICDesign, ASICReport, evaluate_asic
from repro.hardware.fpga import FPGADesign, FPGAReport, evaluate_fpga
from repro.hardware.optimality import (
    energy_efficiency_ratio,
    optimal_energy_efficiency,
    achieved_energy_efficiency,
)
from repro.hardware.sram import (
    SRAMConfig,
    SRAMEstimate,
    estimate_sram,
    BufferRequirements,
    buffer_requirements,
)
from repro.hardware import reference

__all__ = [
    "EnergyModel",
    "EnergyBreakdown",
    "AreaModel",
    "ASICDesign",
    "ASICReport",
    "evaluate_asic",
    "FPGADesign",
    "FPGAReport",
    "evaluate_fpga",
    "energy_efficiency_ratio",
    "optimal_energy_efficiency",
    "achieved_energy_efficiency",
    "SRAMConfig",
    "SRAMEstimate",
    "estimate_sram",
    "BufferRequirements",
    "buffer_requirements",
    "reference",
]
