"""Column Combining: packing sparse CNNs for efficient systolic arrays.

Reproduction of Kung, McDanel, and Zhang, "Packing Sparse Convolutional
Neural Networks for Efficient Systolic Array Implementations: Column
Combining Under Joint Optimization" (ASPLOS 2019).

The package is organised as a set of substrates plus the paper's core
contribution:

``repro.nn``
    A from-scratch NumPy neural-network framework (modules, manual
    backpropagation, SGD with Nesterov momentum, cosine learning-rate
    schedule) used to train and retrain the CNNs the paper evaluates.
``repro.data``
    Deterministic synthetic MNIST-like and CIFAR-like datasets that stand
    in for the original datasets (no network access is available).
``repro.models``
    Shift + pointwise-convolution variants of LeNet-5, VGG, and ResNet-20.
``repro.pruning``
    Magnitude-based weight pruning with masks (the "initial pruning" step).
``repro.combining``
    The paper's contribution: column grouping (Algorithm 2),
    column-combine pruning (Algorithm 3), the iterative joint-optimization
    trainer (Algorithm 1), packed filter matrices, row permutation, and
    packing / utilization / tiling metrics.
``repro.quant``
    8-bit linear fixed-point quantization of inputs and weights.
``repro.systolic``
    A weight-stationary, bit-serial systolic array simulator with BL / IL /
    MX cells, tiled matrix multiplication, and cross-layer pipelining.
``repro.hardware``
    Analytical ASIC / FPGA energy, area, and latency models plus the
    prior-art reference numbers used in the paper's comparison tables.
``repro.experiments``
    One runner per table and figure in the paper's evaluation section.
``repro.serving``
    The serving layer above the packing stack: versioned packed-artifact
    persistence (``repro.combining.serialization``), a lazy LRU model
    registry, and a dynamic-batching inference server whose responses are
    bit-identical to direct single-request forwards.
"""

from repro.combining.grouping import ColumnGrouping, group_columns
from repro.combining.packing import PackedFilterMatrix, pack_filter_matrix
from repro.combining.pruning import column_combine_prune
from repro.combining.trainer import ColumnCombineConfig, ColumnCombineTrainer
from repro.combining.metrics import (
    packing_efficiency,
    utilization_efficiency,
    density,
    count_conflicts,
)
from repro.combining.tiling import tile_count, tiles_for_layer

__all__ = [
    "ColumnGrouping",
    "group_columns",
    "PackedFilterMatrix",
    "pack_filter_matrix",
    "column_combine_prune",
    "ColumnCombineConfig",
    "ColumnCombineTrainer",
    "packing_efficiency",
    "utilization_efficiency",
    "density",
    "count_conflicts",
    "tile_count",
    "tiles_for_layer",
]

__version__ = "1.0.0"
