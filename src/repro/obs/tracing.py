"""Request traces: per-request span timelines in a bounded ring buffer.

A :class:`Trace` is what one request did with its time: a server-unique
trace id assigned at ``submit()`` plus a list of :class:`Span`\\ s —
``enqueue`` (submit -> batch dispatch), ``coalesce`` (the batch's
coalescing window, carrying the batcher's flush reason), ``forward``
(the batched plan execution, carrying backend / cycle / per-layer
attributes), ``respond`` (splitting outputs back onto requests).  Spans
are plain monotonic-clock intervals; nothing here runs in the forward's
inner loops, so tracing every request is cheap enough to leave on.

Retention is the point of :class:`TraceBuffer`: a deque ring bounded at
``capacity`` traces, so sustained load retains the most recent N and
*overwrites* the rest (``dropped`` counts them) — memory is O(capacity)
no matter how long the server runs, which the serving tests pin.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Iterable, Mapping

#: Default number of traces an :class:`InferenceServer` retains.
DEFAULT_TRACE_CAPACITY = 256


class Span:
    """One named interval on the monotonic clock, with attributes."""

    __slots__ = ("name", "start", "end", "attributes")

    def __init__(self, name: str, start: float, end: float,
                 attributes: Mapping[str, Any] | None = None):
        self.name = name
        self.start = start
        self.end = end
        self.attributes = dict(attributes) if attributes else {}

    @property
    def seconds(self) -> float:
        return max(0.0, self.end - self.start)

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "start": self.start, "end": self.end,
                "seconds": self.seconds, "attributes": dict(self.attributes)}


class Trace:
    """One request's timeline: id, model, spans, request-level attributes.

    Each trace is anchored to the wall clock at creation: ``epoch`` is
    ``time.time()`` and ``anchor`` is the monotonic reading taken at the
    same instant.  Spans stay monotonic-relative (steady, never steps
    backwards), and any span time ``t`` maps onto the shared wall-clock
    timeline as ``epoch + (t - anchor)`` — which is how traces exported
    from different processes or across restarts line up in one view
    (:func:`repro.obs.export.chrome_trace_from_traces`).
    """

    __slots__ = ("trace_id", "model", "spans", "attributes", "epoch",
                 "anchor")

    def __init__(self, trace_id: str, model: str,
                 spans: Iterable[Span] = (),
                 attributes: Mapping[str, Any] | None = None,
                 epoch: float | None = None,
                 anchor: float | None = None):
        self.trace_id = trace_id
        self.model = model
        self.spans = list(spans)
        self.attributes = dict(attributes) if attributes else {}
        self.epoch = time.time() if epoch is None else float(epoch)
        self.anchor = (time.monotonic() if anchor is None
                       else float(anchor))

    def add_span(self, span: Span) -> None:
        self.spans.append(span)

    def span(self, name: str) -> Span | None:
        for candidate in self.spans:
            if candidate.name == name:
                return candidate
        return None

    @property
    def seconds(self) -> float:
        """Submit-to-respond wall time (earliest start to latest end)."""
        if not self.spans:
            return 0.0
        return max(0.0, max(span.end for span in self.spans)
                   - min(span.start for span in self.spans))

    def wall_time(self, monotonic_time: float) -> float:
        """Map a monotonic span time onto this trace's wall-clock line."""
        return self.epoch + (monotonic_time - self.anchor)

    def to_dict(self) -> dict[str, Any]:
        return {"trace_id": self.trace_id, "model": self.model,
                "seconds": self.seconds,
                "epoch": self.epoch, "anchor": self.anchor,
                "spans": [span.to_dict() for span in self.spans],
                "attributes": dict(self.attributes)}


class TraceIdAllocator:
    """Monotonic, server-unique trace ids: ``<prefix>-000001, ...``."""

    def __init__(self, prefix: str = "req"):
        self.prefix = prefix
        self._counter = itertools.count(1)

    def allocate(self) -> str:
        return f"{self.prefix}-{next(self._counter):06d}"


class TraceBuffer:
    """Thread-safe ring of the last ``capacity`` completed traces.

    ``capacity=0`` disables retention entirely (records become no-ops),
    which is how a server turns tracing off without branching at every
    call site.
    """

    def __init__(self, capacity: int = DEFAULT_TRACE_CAPACITY):
        if capacity < 0:
            raise ValueError("trace capacity must be >= 0")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._traces: list[Trace] = []
        self._next = 0
        self.recorded = 0
        self.dropped = 0

    def record(self, trace: Trace) -> None:
        with self._lock:
            self.recorded += 1
            if self.capacity == 0:
                self.dropped += 1
                return
            if len(self._traces) < self.capacity:
                self._traces.append(trace)
            else:
                # Ring overwrite: the oldest slot goes, dropped counts it.
                self._traces[self._next] = trace
                self._next = (self._next + 1) % self.capacity
                self.dropped += 1

    def __len__(self) -> int:
        with self._lock:
            return len(self._traces)

    def snapshot(self, limit: int | None = None) -> list[dict[str, Any]]:
        """The retained traces as dicts, oldest first (last ``limit``)."""
        with self._lock:
            ordered = self._traces[self._next:] + self._traces[:self._next]
        if limit is not None:
            ordered = ordered[-limit:]
        return [trace.to_dict() for trace in ordered]

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {"capacity": self.capacity, "retained": len(self._traces),
                    "recorded": self.recorded, "dropped": self.dropped}
