"""Observability for the serving stack: metrics, tracing, profiling.

``repro.obs`` is the telemetry layer PRs 5-8 left out: the serving stack
could prove its responses bit-exact, but its only view of *time* was a
streaming mean/max — no percentiles, no per-request timeline, no
per-layer attribution, no machine-readable export.  This package
supplies the three missing primitives; the serving stack threads them
through submit/coalesce/dispatch/forward/respond.

* :mod:`~repro.obs.metrics` — :class:`~repro.obs.metrics.MetricsRegistry`
  with :class:`~repro.obs.metrics.Counter`, :class:`~repro.obs.metrics.Gauge`,
  and fixed-bucket log-spaced latency :class:`~repro.obs.metrics.Histogram`
  (p50/p90/p99 + mean/max).  Bucket edges are computed from constants —
  never from the data — and sums are kept in integer nanoseconds, so two
  histograms built from the same observations in *any* split across
  threads, worker processes, or models merge **exactly and
  deterministically**: merged state is bit-equal to single-stream state
  regardless of merge order.  Snapshots export as JSON-able dicts and
  Prometheus text exposition.
* :mod:`~repro.obs.tracing` — request traces: a
  :class:`~repro.obs.tracing.Trace` is an id plus
  :class:`~repro.obs.tracing.Span` timeline (enqueue → coalesce → forward
  → respond, each with attributes like the batcher's flush reason),
  anchored to the wall clock at creation (``epoch``/``anchor``) so traces
  from different processes or restarts correlate on one timeline; a
  bounded :class:`~repro.obs.tracing.TraceBuffer` ring retains the last N
  under sustained load, so tracing every request costs O(capacity)
  memory forever.

On top of those primitives sits the **operational layer** — what watches
a *running* server from outside the process:

* :mod:`~repro.obs.window` — rolling windows:
  :class:`~repro.obs.window.WindowedHistogram` /
  :class:`~repro.obs.window.WindowedCounter` keep a ring of per-bucket
  states keyed by the absolute time-bucket index of an injected clock.
  Built from the same exactly-mergeable state as the lifetime metrics,
  so windows recorded in different threads or processes merge
  bit-exactly in any order; stale buckets prune on every touch, so
  memory stays O(buckets) forever.
* :mod:`~repro.obs.slo` — declarative objectives:
  :class:`~repro.obs.slo.SLORule` (latency-quantile / error-rate /
  queue-depth targets) evaluated by :class:`~repro.obs.slo.SLOEngine`
  over the rolling windows into ok/warn/breach verdicts with burn
  counters; breach/recover *transitions* emit lifecycle events.
* :mod:`~repro.obs.events` — :class:`~repro.obs.events.EventLog`: a
  bounded ring of timestamped lifecycle records (model load / evict /
  swap with fingerprints + generations, pool warm / rebuild / shutdown,
  load failures, SLO breach / recover, server start / stop) shared by
  the registry, server, and process pool.
* :mod:`~repro.obs.exporter` —
  :class:`~repro.obs.exporter.ObservabilityExporter`: a threaded
  stdlib-``http.server`` endpoint over all of the above — ``/metrics``
  (Prometheus text), ``/health`` (liveness + SLO verdict in the HTTP
  status), ``/stats``, ``/traces``, ``/events`` — attachable to a live
  server (``InferenceServer.serve_metrics``) with ephemeral-port bind
  for tests.
* :mod:`~repro.obs.export` — Chrome-trace-event JSON for serving traces
  *and* instrumented :class:`~repro.combining.pipeline.PackingPipeline`
  runs, so either half of the workflow opens in Perfetto.

The third primitive — per-layer profiling — lives on the execution plan
itself (``ExecutionPlan.forward(profile=...)``): each packed layer op is
wrapped with perf-counter timing, accumulating integer nanoseconds per
layer name.  Wrapping only: a profiled forward returns bit-identical
arrays to an unprofiled one (the differential suite pins this), so
profiling can stay on in production without perturbing the
batch-invariant numerics PRs 5-8 established.

Observability data flow across the worker boundary
--------------------------------------------------

Thread backend: the server records queued/service/per-layer histograms
straight into its own registry.  Process backend: each worker process
accumulates its own registry (per-layer and whole-forward histograms)
and ships a snapshot back with the existing ``_run_plan_batch`` result
tuple; the server keeps the latest snapshot per worker pid and
:meth:`~repro.serving.server.InferenceServer.metrics_snapshot` merges
them (sorted by pid) into the server-side registry — exactly, because
histogram merge is exact.  One exposition therefore covers both
backends: worker → merge → ``prometheus_text()`` / JSON snapshot.
"""

from repro.obs.events import DEFAULT_EVENT_CAPACITY, Event, EventLog
from repro.obs.export import (
    chrome_trace_from_pipeline,
    chrome_trace_from_traces,
    write_chrome_trace,
)
from repro.obs.exporter import EXPORTER_ROUTES, ObservabilityExporter
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    latency_edges,
    merge_snapshots,
    prometheus_from_snapshot,
    summarize_histogram_state,
)
from repro.obs.slo import (
    RULE_KINDS,
    VERDICTS,
    SLOEngine,
    SLOReport,
    SLORule,
    worst_verdict,
)
from repro.obs.tracing import (
    DEFAULT_TRACE_CAPACITY,
    Span,
    Trace,
    TraceBuffer,
    TraceIdAllocator,
)
from repro.obs.window import (
    DEFAULT_BUCKET_SECONDS,
    DEFAULT_WINDOW_BUCKETS,
    WindowedCounter,
    WindowedHistogram,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "latency_edges",
    "merge_snapshots",
    "prometheus_from_snapshot",
    "summarize_histogram_state",
    "DEFAULT_TRACE_CAPACITY",
    "Span",
    "Trace",
    "TraceBuffer",
    "TraceIdAllocator",
    "DEFAULT_BUCKET_SECONDS",
    "DEFAULT_WINDOW_BUCKETS",
    "WindowedCounter",
    "WindowedHistogram",
    "RULE_KINDS",
    "VERDICTS",
    "SLOEngine",
    "SLOReport",
    "SLORule",
    "worst_verdict",
    "DEFAULT_EVENT_CAPACITY",
    "Event",
    "EventLog",
    "EXPORTER_ROUTES",
    "ObservabilityExporter",
    "chrome_trace_from_pipeline",
    "chrome_trace_from_traces",
    "write_chrome_trace",
]
