"""Counters, gauges, and exactly-mergeable log-spaced latency histograms.

The design constraint everything here follows from: serving telemetry is
produced on many schedules at once — several drain threads, several
worker processes, several models — and the aggregate a human reads must
not depend on which schedule happened to run.  Two choices make that
hold *exactly*, not just approximately:

* **Bucket edges are schedule-independent.**  A histogram's edges are a
  fixed log-spaced ladder computed from constants
  (:func:`latency_edges`), never adapted to the observations, so any two
  histograms with the same configuration are bucket-compatible and their
  counts add as plain integers.
* **Sums are integer nanoseconds.**  Float addition is not associative,
  so a float running sum would make merged state depend on merge order.
  :meth:`Histogram.record` converts each observation to integer
  nanoseconds once (the only rounding anywhere, deterministic per
  value); integer addition is associative and exact, so *any* partition
  of an observation stream across histograms, merged in *any* order,
  reproduces the single-stream state bit for bit.

Quantiles are read from the bucket counts (the upper edge of the bucket
where the cumulative count crosses the rank, clamped to the observed
max), so p50/p90/p99 are deterministic functions of the merged state
with a relative error bounded by the bucket ratio (~29% per step at the
default 9 buckets/decade — tight enough to rank latencies and spot tail
regressions, which is what fixed-bucket histograms are for).

:class:`MetricsRegistry` is the thread-safe name + labels -> metric map;
:meth:`MetricsRegistry.snapshot` exports JSON-able state,
:func:`merge_snapshots` / :meth:`MetricsRegistry.merge_snapshot` combine
snapshots from other threads or processes, and
:func:`prometheus_from_snapshot` renders the standard text exposition.
"""

from __future__ import annotations

import itertools
import math
import threading
from bisect import bisect_left
from typing import Any, Iterable, Mapping

#: One observation-stream second, in the integer unit sums are kept in.
_NS_PER_SECOND = 1_000_000_000

#: Default latency ladder: 1 microsecond to 100 seconds, 9 buckets per
#: decade (ratio ~1.29x), 73 finite edges plus the +Inf overflow bucket.
DEFAULT_LATENCY_LOWER = 1e-6
DEFAULT_LATENCY_DECADES = 8
DEFAULT_BUCKETS_PER_DECADE = 9


def latency_edges(lower: float = DEFAULT_LATENCY_LOWER,
                  decades: int = DEFAULT_LATENCY_DECADES,
                  per_decade: int = DEFAULT_BUCKETS_PER_DECADE
                  ) -> tuple[float, ...]:
    """A fixed log-spaced bucket ladder: ``lower * 10**(i / per_decade)``.

    Edges depend only on the arguments — not on any observation and not
    on evaluation order — so every histogram built with the same
    configuration has bit-identical edges in every thread and process,
    which is the precondition for exact merging.
    """
    if lower <= 0:
        raise ValueError("lower edge must be positive")
    if decades < 1 or per_decade < 1:
        raise ValueError("decades and per_decade must be >= 1")
    return tuple(lower * 10.0 ** (i / per_decade)
                 for i in range(decades * per_decade + 1))


class Counter:
    """A monotonically increasing integer. Merges by exact addition."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase; use a Gauge instead")
        with self._lock:
            self.value += amount


#: Process-wide monotonic stamp shared by every :class:`Gauge`.  Each
#: ``set()`` takes the next stamp, so "which write was last" is a total
#: order within a process and snapshots carry it across processes.
_GAUGE_SEQUENCE = itertools.count(1)


class Gauge:
    """A point-in-time value whose merge is deterministic last-write-wins.

    Every ``set()`` stamps the gauge with a process-wide monotonic
    sequence number; snapshots export ``{"value", "sequence"}`` and
    :meth:`merge` keeps the reading with the highest ``(sequence,
    value)`` pair.  Sequences from different processes are comparable
    only heuristically, so ties (equal sequences) fall back to the
    larger value — an arbitrary but *order-independent* rule: merging
    any set of snapshots in any order yields the same gauge state.
    """

    __slots__ = ("_lock", "value", "sequence")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0
        self.sequence = 0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)
            self.sequence = next(_GAUGE_SEQUENCE)

    def merge(self, value: float, sequence: int) -> None:
        """Adopt ``value`` iff it was stamped later (highest wins)."""
        with self._lock:
            if (int(sequence), float(value)) > (self.sequence, self.value):
                self.value = float(value)
                self.sequence = int(sequence)


class Histogram:
    """Fixed-bucket latency histogram whose merge is exact.

    State: per-bucket integer counts (the last bucket is the +Inf
    overflow), total count, the sum in **integer nanoseconds**, and the
    exact min / max.  Every component merges associatively (integer
    adds, min/max), so partitioning a stream across threads, processes,
    or models and merging back — in any order — is bit-equal to having
    recorded the stream into one histogram.
    """

    __slots__ = ("edges", "counts", "count", "sum_ns", "min", "max", "_lock")

    def __init__(self, edges: Iterable[float] | None = None):
        self.edges: tuple[float, ...] = (latency_edges() if edges is None
                                         else tuple(float(e) for e in edges))
        if list(self.edges) != sorted(set(self.edges)):
            raise ValueError("histogram edges must be strictly increasing")
        if not self.edges:
            raise ValueError("histogram needs at least one bucket edge")
        self.counts = [0] * (len(self.edges) + 1)
        self.count = 0
        self.sum_ns = 0
        self.min: float | None = None
        self.max: float | None = None
        self._lock = threading.Lock()

    # -- recording -----------------------------------------------------------
    def record(self, seconds: float) -> None:
        """Record one observation (in seconds; negatives clamp to 0).

        The only rounding anywhere is the one-time conversion to integer
        nanoseconds — deterministic per value — after which all state
        updates are exact.
        """
        value = max(0.0, float(seconds))
        bucket = bisect_left(self.edges, value)
        ns = round(value * _NS_PER_SECOND)
        with self._lock:
            self.counts[bucket] += 1
            self.count += 1
            self.sum_ns += ns
            if self.min is None or value < self.min:
                self.min = value
            if self.max is None or value > self.max:
                self.max = value

    # -- merging -------------------------------------------------------------
    def merge(self, other: "Histogram | Mapping[str, Any]") -> None:
        """Fold another histogram (or its :meth:`to_dict`) into this one.

        Exact: counts and nanosecond sums add as integers, min/max take
        the extremum.  Requires bucket-compatible edges — a mismatch is
        a configuration bug and raises rather than aggregating garbage.
        """
        state = other.to_dict() if isinstance(other, Histogram) else other
        if tuple(state["edges"]) != self.edges:
            raise ValueError(
                "cannot merge histograms with different bucket edges; "
                "edges must come from the same configuration")
        with self._lock:
            for index, increment in enumerate(state["counts"]):
                self.counts[index] += int(increment)
            self.count += int(state["count"])
            self.sum_ns += int(state["sum_ns"])
            for attribute, pick in (("min", min), ("max", max)):
                theirs = state[attribute]
                if theirs is not None:
                    ours = getattr(self, attribute)
                    setattr(self, attribute,
                            theirs if ours is None else pick(ours, theirs))

    # -- reading -------------------------------------------------------------
    @property
    def sum(self) -> float:
        return self.sum_ns / _NS_PER_SECOND

    @property
    def mean(self) -> float:
        return self.sum_ns / _NS_PER_SECOND / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """The upper bucket edge at quantile ``q`` (clamped to max).

        Deterministic given the (exactly merged) counts: the rank is
        ``ceil(q * count)`` and the answer is the edge of the bucket the
        cumulative count crosses it in — an upper bound on the true
        quantile, off by at most one bucket ratio.
        """
        if not 0.0 < q <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if not self.count:
            return 0.0
        rank = math.ceil(q * self.count)
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                edge = (self.edges[index] if index < len(self.edges)
                        else self.max)
                return min(edge, self.max) if self.max is not None else edge
        return self.max if self.max is not None else 0.0

    def summary(self) -> dict[str, float]:
        """The human-facing digest: count, mean/min/max, p50/p90/p99."""
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def to_dict(self) -> dict[str, Any]:
        """JSON-able full state (what snapshots carry across processes)."""
        with self._lock:
            return {
                "edges": list(self.edges),
                "counts": list(self.counts),
                "count": self.count,
                "sum_ns": self.sum_ns,
                "min": self.min,
                "max": self.max,
            }

    @classmethod
    def from_dict(cls, state: Mapping[str, Any]) -> "Histogram":
        histogram = cls(edges=state["edges"])
        histogram.merge(state)
        return histogram


def summarize_histogram_state(state: Mapping[str, Any]) -> dict[str, float]:
    """:meth:`Histogram.summary` for a snapshot's serialized state."""
    return Histogram.from_dict(state).summary()


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition spec.

    Backslash, double quote, and line feed are the three characters the
    format reserves inside quoted label values; anything else passes
    through.  Escaping happens once, at key-construction time, so the
    canonical key *is* valid exposition and snapshots merged across
    processes agree on it byte for byte.
    """
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _metric_key(name: str, labels: Mapping[str, str] | None) -> str:
    """Canonical snapshot key: ``name{a="x",b="y"}`` with sorted labels.

    Label values are escaped (:func:`_escape_label_value`), so a model
    named ``he said "hi"`` still yields a parseable exposition line.
    """
    if not labels:
        return name
    rendered = ",".join(f'{key}="{_escape_label_value(labels[key])}"'
                        for key in sorted(labels))
    return f"{name}{{{rendered}}}"


class MetricsRegistry:
    """Thread-safe map of (name, labels) -> metric, with exact merging.

    ``counter`` / ``gauge`` / ``histogram`` return the live metric for a
    key, creating it on first use; :meth:`snapshot` exports the whole
    registry as a JSON-able dict, and :meth:`merge_snapshot` folds in a
    snapshot produced by another registry — another thread's, another
    worker process's, another model's — with counters adding exactly and
    histograms merging exactly (:meth:`Histogram.merge`).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- metric access -------------------------------------------------------
    def counter(self, name: str,
                labels: Mapping[str, str] | None = None) -> Counter:
        key = _metric_key(name, labels)
        with self._lock:
            metric = self._counters.get(key)
            if metric is None:
                metric = self._counters[key] = Counter()
            return metric

    def gauge(self, name: str,
              labels: Mapping[str, str] | None = None) -> Gauge:
        key = _metric_key(name, labels)
        with self._lock:
            metric = self._gauges.get(key)
            if metric is None:
                metric = self._gauges[key] = Gauge()
            return metric

    def histogram(self, name: str, labels: Mapping[str, str] | None = None,
                  edges: Iterable[float] | None = None) -> Histogram:
        key = _metric_key(name, labels)
        with self._lock:
            metric = self._histograms.get(key)
            if metric is None:
                metric = self._histograms[key] = Histogram(edges=edges)
            return metric

    # -- export / merge ------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """JSON-able state of every metric, keyed canonically (sorted)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {key: counters[key].value for key in sorted(counters)},
            "gauges": {key: {"value": gauges[key].value,
                             "sequence": gauges[key].sequence}
                       for key in sorted(gauges)},
            "histograms": {key: histograms[key].to_dict()
                           for key in sorted(histograms)},
        }

    def merge_snapshot(self, snapshot: Mapping[str, Any]) -> None:
        """Fold another registry's snapshot into this one, exactly.

        Counters add (integers), histograms merge
        (:meth:`Histogram.merge` — exact), gauges keep the reading with
        the highest ``(sequence, value)`` stamp (:meth:`Gauge.merge` —
        deterministic in any merge order).  Bare numeric gauge values
        (pre-sequence snapshots) merge with sequence 0.
        """
        for key, value in snapshot.get("counters", {}).items():
            self.counter(key).inc(int(value))
        for key, state in snapshot.get("gauges", {}).items():
            if isinstance(state, Mapping):
                self.gauge(key).merge(state["value"],
                                      state.get("sequence", 0))
            else:
                self.gauge(key).merge(float(state), 0)
        for key, state in snapshot.get("histograms", {}).items():
            self.histogram(key, edges=state["edges"]).merge(state)

    def prometheus_text(self) -> str:
        return prometheus_from_snapshot(self.snapshot())


def merge_snapshots(snapshots: Iterable[Mapping[str, Any]]
                    ) -> dict[str, Any]:
    """Merge several registry snapshots into one snapshot dict.

    Order-independent for every metric kind: counters and histograms
    carry exact integer state, and gauges carry a monotonic write
    sequence so the merge keeps the highest ``(sequence, value)`` stamp
    no matter which order the snapshots arrive in.
    """
    merged = MetricsRegistry()
    for snapshot in snapshots:
        merged.merge_snapshot(snapshot)
    return merged.snapshot()


def _split_key(key: str) -> tuple[str, str]:
    """``name{labels}`` -> (name, labels-with-braces-or-empty)."""
    brace = key.find("{")
    if brace < 0:
        return key, ""
    return key[:brace], key[brace:]


def _format_edge(edge: float) -> str:
    return repr(edge)


def prometheus_from_snapshot(snapshot: Mapping[str, Any]) -> str:
    """Render a snapshot as Prometheus text exposition format.

    Counters become ``name_total``-style samples with a ``# TYPE``
    header, gauges likewise, histograms expand to the standard
    cumulative ``_bucket{le=...}`` series plus ``_sum`` / ``_count``.
    Keys are emitted in sorted order, so the exposition is deterministic
    for a given merged state.
    """
    lines: list[str] = []
    typed: set[str] = set()

    def header(name: str, kind: str) -> None:
        if name not in typed:
            lines.append(f"# TYPE {name} {kind}")
            typed.add(name)

    for key in sorted(snapshot.get("counters", {})):
        name, labels = _split_key(key)
        header(name, "counter")
        lines.append(f"{name}{labels} {snapshot['counters'][key]}")
    for key in sorted(snapshot.get("gauges", {})):
        name, labels = _split_key(key)
        header(name, "gauge")
        state = snapshot["gauges"][key]
        value = state["value"] if isinstance(state, Mapping) else state
        lines.append(f"{name}{labels} {value}")
    for key in sorted(snapshot.get("histograms", {})):
        name, labels = _split_key(key)
        state = snapshot["histograms"][key]
        header(name, "histogram")
        base_labels = labels[1:-1] if labels else ""
        cumulative = 0
        for edge, bucket_count in zip(state["edges"], state["counts"]):
            cumulative += int(bucket_count)
            label_list = (f'{base_labels},le="{_format_edge(edge)}"'
                          if base_labels else f'le="{_format_edge(edge)}"')
            lines.append(f"{name}_bucket{{{label_list}}} {cumulative}")
        cumulative += int(state["counts"][-1])
        label_list = (f'{base_labels},le="+Inf"' if base_labels
                      else 'le="+Inf"')
        lines.append(f"{name}_bucket{{{label_list}}} {cumulative}")
        lines.append(f"{name}_sum{labels} "
                     f"{int(state['sum_ns']) / _NS_PER_SECOND}")
        lines.append(f"{name}_count{labels} {state['count']}")
    return "\n".join(lines) + ("\n" if lines else "")
