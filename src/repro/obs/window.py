"""Rolling windows: fixed-width time buckets of exactly-mergeable state.

A lifetime histogram answers "what has this process ever done"; an SLO
needs "what happened in the last minute".  The windows here keep a ring
of per-bucket states keyed by the **absolute bucket index**
``floor(now / bucket_seconds)`` of an injected clock — not by a local
ring position — which buys three properties at once:

* **Determinism.**  The clock is a plain callable (``time.time`` by
  default, a fake in tests), and bucket assignment is a pure function
  of its reading, so tests drive rotation and expiry exactly.
* **Exact merging.**  Two windows observing disjoint parts of a stream
  under the same clock put every observation in the same absolute
  bucket; merging unions buckets by index with the exact integer merges
  of :class:`~repro.obs.metrics.Histogram` (or integer adds for
  counters), so the merged window is bit-equal to a single-stream
  window, in any merge order, across threads or processes.
* **O(capacity) memory.**  Stale buckets are pruned on every touch; a
  window never holds more than ``buckets`` cells no matter how long the
  process runs.

:class:`WindowedHistogram` rolls full latency histograms (windowed
quantiles); :class:`WindowedCounter` rolls integer counts (windowed
rates, e.g. error rate).  Both serialize with ``state()`` and fold
foreign state back in with ``merge_state()``, mirroring the
snapshot-merge idiom of :class:`~repro.obs.metrics.MetricsRegistry`.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Callable, Iterable, Mapping

from repro.obs.metrics import Histogram, latency_edges

#: Default rolling-window shape: twelve 5-second buckets = one minute.
DEFAULT_BUCKET_SECONDS = 5.0
DEFAULT_WINDOW_BUCKETS = 12


class _WindowBase:
    """Shared ring mechanics: absolute-index cells, pruning, clock."""

    def __init__(self, bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
                 buckets: int = DEFAULT_WINDOW_BUCKETS,
                 clock: Callable[[], float] = time.time) -> None:
        if bucket_seconds <= 0:
            raise ValueError("bucket_seconds must be positive")
        if buckets < 1:
            raise ValueError("a window needs at least one bucket")
        self.bucket_seconds = float(bucket_seconds)
        self.buckets = int(buckets)
        self._clock = clock
        self._lock = threading.Lock()
        self._cells: dict[int, Any] = {}

    @property
    def window_seconds(self) -> float:
        return self.bucket_seconds * self.buckets

    def bucket_index(self, now: float | None = None) -> int:
        """Absolute bucket index of ``now`` (clock reading if omitted)."""
        reading = self._clock() if now is None else now
        return int(float(reading) // self.bucket_seconds)

    def _prune_locked(self, current: int) -> None:
        # Keep the newest `buckets` indices; "newest" includes the
        # clock's current index so idle windows drain to empty, and the
        # max held index so merged-in foreign state (slight clock skew)
        # can't make the ring unbounded.
        horizon = max([current, *self._cells]) - self.buckets + 1
        for index in [i for i in self._cells if i < horizon]:
            del self._cells[index]

    def __len__(self) -> int:
        with self._lock:
            self._prune_locked(self.bucket_index())
            return len(self._cells)


class WindowedHistogram(_WindowBase):
    """A rolling latency histogram: ring of exact per-bucket histograms."""

    def __init__(self, bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
                 buckets: int = DEFAULT_WINDOW_BUCKETS,
                 edges: Iterable[float] | None = None,
                 clock: Callable[[], float] = time.time) -> None:
        super().__init__(bucket_seconds, buckets, clock)
        self.edges: tuple[float, ...] = (latency_edges() if edges is None
                                         else tuple(float(e) for e in edges))

    def record(self, seconds: float) -> None:
        current = self.bucket_index()
        with self._lock:
            self._prune_locked(current)
            cell = self._cells.get(current)
            if cell is None:
                cell = self._cells[current] = Histogram(edges=self.edges)
        cell.record(seconds)

    def merged(self) -> Histogram:
        """The live window folded into one histogram (exact merge)."""
        with self._lock:
            self._prune_locked(self.bucket_index())
            states = [self._cells[index].to_dict()
                      for index in sorted(self._cells)]
        total = Histogram(edges=self.edges)
        for state in states:
            total.merge(state)
        return total

    def summary(self) -> dict[str, float]:
        return self.merged().summary()

    def quantile(self, q: float) -> float:
        return self.merged().quantile(q)

    @property
    def count(self) -> int:
        return self.merged().count

    def state(self) -> dict[str, Any]:
        """JSON-able window state: per-bucket histogram dicts by index."""
        with self._lock:
            self._prune_locked(self.bucket_index())
            return {"bucket_seconds": self.bucket_seconds,
                    "buckets": self.buckets,
                    "cells": {str(index): self._cells[index].to_dict()
                              for index in sorted(self._cells)}}

    def merge_state(self, state: Mapping[str, Any]) -> None:
        """Union another window's state in, bucket by absolute index.

        Exact and order-independent: same-index cells merge with
        :meth:`Histogram.merge`.  Requires the same bucket geometry —
        a mismatch would silently misalign time, so it raises.
        """
        if (float(state["bucket_seconds"]) != self.bucket_seconds
                or int(state["buckets"]) != self.buckets):
            raise ValueError("cannot merge windows with different "
                             "bucket geometry")
        with self._lock:
            for raw_index, cell_state in state["cells"].items():
                index = int(raw_index)
                cell = self._cells.get(index)
                if cell is None:
                    cell = self._cells[index] = Histogram(edges=self.edges)
                cell.merge(cell_state)
            self._prune_locked(self.bucket_index())


class WindowedCounter(_WindowBase):
    """A rolling integer count: ring of per-bucket exact integers."""

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("windowed counters only increase")
        current = self.bucket_index()
        with self._lock:
            self._prune_locked(current)
            self._cells[current] = self._cells.get(current, 0) + int(amount)

    def total(self) -> int:
        """Exact count of increments inside the live window."""
        with self._lock:
            self._prune_locked(self.bucket_index())
            return sum(self._cells.values())

    def rate(self) -> float:
        """Increments per second over the full window span."""
        return self.total() / self.window_seconds

    def state(self) -> dict[str, Any]:
        with self._lock:
            self._prune_locked(self.bucket_index())
            return {"bucket_seconds": self.bucket_seconds,
                    "buckets": self.buckets,
                    "cells": {str(index): self._cells[index]
                              for index in sorted(self._cells)}}

    def merge_state(self, state: Mapping[str, Any]) -> None:
        """Union another counter window in (exact integer adds)."""
        if (float(state["bucket_seconds"]) != self.bucket_seconds
                or int(state["buckets"]) != self.buckets):
            raise ValueError("cannot merge windows with different "
                             "bucket geometry")
        with self._lock:
            for raw_index, count in state["cells"].items():
                index = int(raw_index)
                self._cells[index] = self._cells.get(index, 0) + int(count)
            self._prune_locked(self.bucket_index())
