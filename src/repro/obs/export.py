"""Chrome-trace-event export: serving traces and pipeline runs in Perfetto.

The Chrome trace event format (the JSON ``{"traceEvents": [...]}``
envelope of complete ``"ph": "X"`` events with microsecond ``ts`` /
``dur``) is the lingua franca of timeline viewers — ``chrome://tracing``
and https://ui.perfetto.dev open it directly.  This module renders both
halves of the repo's workflow onto it:

* :func:`chrome_trace_from_traces` — serving request traces
  (:class:`~repro.obs.tracing.Trace` objects or their dict snapshots).
  Spans are monotonic-relative; each trace's wall-clock ``epoch`` /
  ``anchor`` pair places them on the shared wall-clock timeline, so
  traces exported from different processes or across restarts line up.
  Each request becomes one named thread row (a ``thread_name`` metadata
  event carries the trace id), so the enqueue/coalesce/forward/respond
  cascade of concurrent requests reads at a glance.
* :func:`chrome_trace_from_pipeline` — offline packing runs
  (:class:`~repro.combining.pipeline.PipelineResult`).  Each layer
  becomes a thread row with its group/prune/pack/tile stage spans,
  anchored at the layer's wall-clock start, so a ``workers=N`` run
  shows the actual fan-out across pool workers.

:func:`write_chrome_trace` writes the envelope to disk; the ``cli``
surfaces it as ``serve-export`` and ``pack-model --trace-out``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Iterable, Mapping

from repro.obs.tracing import Trace

_US_PER_SECOND = 1e6


def _thread_name(pid: int, tid: int, name: str) -> dict[str, Any]:
    return {"name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": name}}


def _complete_event(name: str, category: str, start_us: float,
                    duration_us: float, pid: int, tid: int,
                    args: Mapping[str, Any]) -> dict[str, Any]:
    return {"name": name, "cat": category, "ph": "X",
            "ts": start_us, "dur": max(0.0, duration_us),
            "pid": pid, "tid": tid, "args": dict(args)}


def chrome_trace_from_traces(traces: Iterable[Trace | Mapping[str, Any]],
                             pid: int = 1) -> list[dict[str, Any]]:
    """Serving traces -> Chrome trace events (one thread row per request).

    Accepts live :class:`Trace` objects or the dicts
    :meth:`TraceBuffer.snapshot` returns.  Span times map onto the wall
    clock via the trace's ``epoch``/``anchor`` pair; traces without one
    (older snapshots) fall back to raw monotonic times, which still
    open fine — they just won't align with other processes.
    """
    events: list[dict[str, Any]] = []
    for tid, item in enumerate(traces, start=1):
        trace = item.to_dict() if isinstance(item, Trace) else dict(item)
        epoch = trace.get("epoch")
        anchor = trace.get("anchor")
        offset = (epoch - anchor if epoch is not None and anchor is not None
                  else 0.0)
        label = f"{trace.get('trace_id', f'trace-{tid}')} " \
                f"[{trace.get('model', '?')}]"
        events.append(_thread_name(pid, tid, label))
        for span in trace.get("spans", []):
            args = dict(span.get("attributes", {}))
            args["trace_id"] = trace.get("trace_id")
            events.append(_complete_event(
                span["name"], "serving",
                (span["start"] + offset) * _US_PER_SECOND,
                (span["end"] - span["start"]) * _US_PER_SECOND,
                pid, tid, args))
    return events


def chrome_trace_from_pipeline(result: Any,
                               pid: int = 2) -> list[dict[str, Any]]:
    """A :class:`PipelineResult` -> Chrome trace events (row per layer).

    Uses the per-layer ``epoch`` (wall-clock layer start) and
    ``stage_spans`` (nanosecond offsets relative to that start) the
    instrumented :func:`~repro.combining.pipeline._pack_one_layer`
    records, so the timeline shows each layer's group/prune/pack/tile
    cascade and — in ``workers>1`` runs — which layers overlapped.
    """
    events: list[dict[str, Any]] = []
    for tid, layer in enumerate(result.layers, start=1):
        label = f"{layer.name} [pid {layer.worker_pid}]"
        events.append(_thread_name(pid, tid, label))
        base_us = layer.epoch * _US_PER_SECOND
        for stage, start_ns, end_ns in layer.stage_spans:
            events.append(_complete_event(
                stage, "packing",
                base_us + start_ns / 1e3, (end_ns - start_ns) / 1e3,
                pid, tid,
                {"layer": layer.name, "rows": layer.rows,
                 "columns_before": layer.columns_before,
                 "columns_after": layer.columns_after}))
    return events


def write_chrome_trace(path: str | Path,
                       events: Iterable[Mapping[str, Any]]) -> Path:
    """Write events to ``path`` in the Chrome trace JSON envelope."""
    path = Path(path)
    payload = {"traceEvents": list(events), "displayTimeUnit": "ms"}
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=None, separators=(",", ":"),
                  default=str)
    return path
