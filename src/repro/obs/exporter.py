"""The scrape endpoint: stdlib HTTP server over live serving telemetry.

:class:`ObservabilityExporter` wraps a :class:`ThreadingHTTPServer`
around any *provider* object exposing the small read-only surface an
:class:`~repro.serving.server.InferenceServer` already has —
``prometheus_text()``, ``health()``, ``stats()``, ``traces()``, and
``events()`` — and serves:

* ``/metrics`` — Prometheus text exposition (scrapeable as-is),
* ``/health`` — liveness + SLO verdict as JSON, with the HTTP status
  carrying the verdict (200 for ok/warn, 503 for breach or stopped),
* ``/stats`` — the full stats dict as JSON,
* ``/traces`` — recent request traces as JSON (``?limit=N``),
* ``/events`` — recent lifecycle events as JSON (``?limit=N``).

Every handler only *reads* snapshots the telemetry layer already
produces under its own locks, so scraping is concurrency-safe and
cannot perturb served bits.  Binding to port 0 picks an ephemeral port
(``exporter.port`` reports the real one), which is how tests run many
exporters side by side; requests are handled on daemon threads, so a
slow scraper never wedges shutdown.  ``InferenceServer.stop()`` closes
an attached exporter before tearing the server down, so an endpoint
never outlives the thing it reports on.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any
from urllib.parse import parse_qs, urlsplit

#: Routes the exporter serves, in display order.
EXPORTER_ROUTES = ("/metrics", "/health", "/stats", "/traces", "/events")

#: HTTP verdict mapping: breach (or a stopped server) must look *down*
#: to a load balancer, warn must not — it is a page, not an outage.
_HEALTHY_VERDICTS = frozenset({"ok", "warn"})


def _json_bytes(payload: Any) -> bytes:
    # default=str keeps the endpoint total: an exotic attribute value
    # degrades to its repr instead of a 500.
    return json.dumps(payload, default=str).encode("utf-8")


class ObservabilityExporter:
    """Threaded HTTP endpoint over a telemetry provider.

    ``provider`` is duck-typed (an ``InferenceServer`` in production, a
    stub in tests): ``prometheus_text()`` and ``stats()`` are required,
    ``health()`` / ``traces(limit=...)`` / ``events(limit=...)`` are
    served as empty/ok defaults when absent.
    """

    def __init__(self, provider: Any, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.provider = provider
        exporter = self

        class _Handler(BaseHTTPRequestHandler):
            # Telemetry must not spam the server's stderr per scrape.
            def log_message(self, *_args: Any) -> None:
                return

            def do_GET(self) -> None:  # noqa: N802 (stdlib casing)
                exporter._handle(self)

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread: threading.Thread | None = None
        self._started = False

    # -- lifecycle ------------------------------------------------------------
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "ObservabilityExporter":
        if self._started:
            raise RuntimeError("exporter already started")
        self._started = True
        self._thread = threading.Thread(target=self._httpd.serve_forever,
                                        name="obs-exporter", daemon=True)
        self._thread.start()
        return self

    def close(self, timeout: float = 5.0) -> None:
        """Stop serving and release the socket (idempotent)."""
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout)
            self._thread = None
        self._httpd.server_close()

    # -- request handling -----------------------------------------------------
    def _handle(self, request: BaseHTTPRequestHandler) -> None:
        try:
            parsed = urlsplit(request.path)
            limit = self._limit(parsed.query)
            status, content_type, body = self._respond(parsed.path, limit)
        except Exception as error:  # total endpoint: errors become JSON
            status, content_type = 500, "application/json"
            body = _json_bytes({"error": f"{type(error).__name__}: {error}"})
        try:
            request.send_response(status)
            request.send_header("Content-Type", content_type)
            request.send_header("Content-Length", str(len(body)))
            request.end_headers()
            request.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            pass  # scraper went away mid-response; nothing to clean up

    @staticmethod
    def _limit(query: str) -> int | None:
        values = parse_qs(query).get("limit")
        return int(values[-1]) if values else None

    def _respond(self, path: str,
                 limit: int | None) -> tuple[int, str, bytes]:
        provider = self.provider
        if path == "/metrics":
            text = provider.prometheus_text()
            return 200, "text/plain; version=0.0.4; charset=utf-8", \
                text.encode("utf-8")
        if path == "/health":
            health = (provider.health() if hasattr(provider, "health")
                      else {"live": True, "status": "ok"})
            healthy = (bool(health.get("live", True))
                       and health.get("status") in _HEALTHY_VERDICTS)
            return (200 if healthy else 503), "application/json", \
                _json_bytes(health)
        if path == "/stats":
            return 200, "application/json", _json_bytes(provider.stats())
        if path == "/traces":
            traces = (provider.traces(limit=limit)
                      if hasattr(provider, "traces") else [])
            return 200, "application/json", _json_bytes({"traces": traces})
        if path == "/events":
            events = (provider.events(limit=limit)
                      if hasattr(provider, "events") else [])
            return 200, "application/json", _json_bytes({"events": events})
        return 404, "application/json", _json_bytes(
            {"error": f"unknown path {path!r}", "routes": EXPORTER_ROUTES})
