"""Structured lifecycle events in a bounded, inspectable ring.

Counters say *how many* times something happened; operations needs
*what* happened, *when*, and *with what identity* — which artifact
fingerprint a hot swap replaced, which generation a model load
produced, which pid a pool rebuild evicted.  :class:`EventLog` is the
one place those records land: :class:`ModelRegistry` emits
``model_load`` / ``model_evict`` / ``model_swap`` / ``load_failure``,
:class:`InferenceServer` emits ``server_start`` / ``server_stop`` /
``pool_rebuild``, :class:`ProcessWorkerPool` emits ``pool_warm`` /
``pool_shutdown``, and :class:`~repro.obs.slo.SLOEngine` emits
``slo_breach`` / ``slo_recover`` transitions.

Retention follows :class:`~repro.obs.tracing.TraceBuffer`: a deque
bounded at ``capacity`` events, so memory is O(capacity) forever and
``dropped`` counts what the ring overwrote.  Per-kind counts survive
ring overwrites, so "how many swaps ever" stays answerable even after
the swap events themselves have aged out.  The clock is injectable for
deterministic tests; every event also carries a sequence number, so an
exported log totally orders events even when a coarse fake clock gives
several the same timestamp.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Any, Callable

#: Default number of lifecycle events a log retains.
DEFAULT_EVENT_CAPACITY = 512


class Event:
    """One timestamped lifecycle record: kind + free-form attributes."""

    __slots__ = ("seq", "kind", "timestamp", "attributes")

    def __init__(self, seq: int, kind: str, timestamp: float,
                 attributes: dict[str, Any]):
        self.seq = seq
        self.kind = kind
        self.timestamp = timestamp
        self.attributes = attributes

    def to_dict(self) -> dict[str, Any]:
        return {"seq": self.seq, "kind": self.kind,
                "timestamp": self.timestamp,
                "attributes": dict(self.attributes)}


class EventLog:
    """Thread-safe bounded ring of :class:`Event` records.

    ``capacity=0`` disables retention (emit still counts kinds), the
    same switch :class:`~repro.obs.tracing.TraceBuffer` uses.
    """

    def __init__(self, capacity: int = DEFAULT_EVENT_CAPACITY,
                 clock: Callable[[], float] = time.time) -> None:
        if capacity < 0:
            raise ValueError("event capacity must be >= 0")
        self.capacity = capacity
        self._clock = clock
        self._lock = threading.Lock()
        self._events: deque[Event] = deque(maxlen=capacity or None)
        self._seq = 0
        self.emitted = 0
        self._kinds: dict[str, int] = {}

    def emit(self, kind: str, **attributes: Any) -> Event:
        """Record one event; returns it (callers may log it too)."""
        with self._lock:
            self._seq += 1
            event = Event(self._seq, kind, self._clock(), dict(attributes))
            self.emitted += 1
            self._kinds[kind] = self._kinds.get(kind, 0) + 1
            if self.capacity:
                self._events.append(event)
        return event

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)

    @property
    def dropped(self) -> int:
        with self._lock:
            return self.emitted - len(self._events)

    def snapshot(self, limit: int | None = None,
                 kind: str | None = None) -> list[dict[str, Any]]:
        """Retained events as dicts, oldest first (optionally filtered)."""
        with self._lock:
            events = list(self._events)
        if kind is not None:
            events = [event for event in events if event.kind == kind]
        if limit is not None:
            events = events[-limit:]
        return [event.to_dict() for event in events]

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {"capacity": self.capacity,
                    "retained": len(self._events),
                    "emitted": self.emitted,
                    "dropped": self.emitted - len(self._events),
                    "kinds": dict(sorted(self._kinds.items()))}
