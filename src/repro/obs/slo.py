"""Declarative SLOs evaluated over rolling windows into verdicts.

An :class:`SLORule` names one objective — a latency quantile target
("p99 service time under 250ms"), an error-rate ceiling, or a
queue-depth ceiling — and :class:`SLOEngine` owns the rolling windows
(:mod:`repro.obs.window`) that the serving path feeds, evaluates every
rule into an ``ok`` / ``warn`` / ``breach`` verdict, and keeps burn
counters (how many evaluations breached, how many breach episodes,
how long the current episode has run).  The engine's clock is the same
injected callable the windows use, so a fake clock drives bucket
rotation, breach, and recovery deterministically in tests.

Verdict semantics are deliberately simple and monotone: a rule breaches
when its measured value exceeds ``target``, warns when it exceeds
``warn_ratio * target``, and is ``ok`` otherwise — including when the
window holds no data yet (an idle server is healthy, not unknown).  The
overall verdict is the worst per-rule verdict, which is what
``/health`` maps onto an HTTP status
(:class:`repro.obs.exporter.ObservabilityExporter`).

Nothing here touches the forward path: the engine only folds observed
latencies / outcomes into window state, so enabling SLOs cannot perturb
served bits.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping

from repro.obs.events import EventLog
from repro.obs.window import (
    DEFAULT_BUCKET_SECONDS,
    DEFAULT_WINDOW_BUCKETS,
    WindowedCounter,
    WindowedHistogram,
)

#: Verdicts in severity order; the overall verdict is the worst rule's.
VERDICTS = ("ok", "warn", "breach")

#: Rule kinds the engine knows how to measure.
RULE_KINDS = ("latency_quantile", "error_rate", "queue_depth")

#: Latency streams the serving path feeds (queued = submit->dispatch,
#: service = dispatch->respond, total = submit->respond).
LATENCY_KINDS = ("queued", "service", "total")


def worst_verdict(verdicts: Iterable[str]) -> str:
    """The most severe verdict present (``ok`` when none are)."""
    rank = {verdict: index for index, verdict in enumerate(VERDICTS)}
    worst = 0
    for verdict in verdicts:
        worst = max(worst, rank[verdict])
    return VERDICTS[worst]


@dataclass(frozen=True)
class SLORule:
    """One declarative objective.

    ``kind`` selects the measurement: ``latency_quantile`` reads
    ``quantile`` of the ``latency`` stream's rolling histogram,
    ``error_rate`` reads windowed failures / requests, ``queue_depth``
    reads the batcher's current pending depth.  ``target`` is the
    breach threshold (strictly-greater breaches); ``warn_ratio`` scales
    it down to the warn threshold.
    """

    name: str
    kind: str
    target: float
    warn_ratio: float = 0.8
    quantile: float = 0.99
    latency: str = "service"

    def __post_init__(self) -> None:
        if self.kind not in RULE_KINDS:
            raise ValueError(f"unknown SLO rule kind {self.kind!r}; "
                             f"expected one of {RULE_KINDS}")
        if self.target <= 0:
            raise ValueError("SLO target must be positive")
        if not 0.0 < self.warn_ratio <= 1.0:
            raise ValueError("warn_ratio must be in (0, 1]")
        if not 0.0 < self.quantile <= 1.0:
            raise ValueError("quantile must be in (0, 1]")
        if self.latency not in LATENCY_KINDS:
            raise ValueError(f"unknown latency stream {self.latency!r}; "
                             f"expected one of {LATENCY_KINDS}")

    def verdict(self, value: float) -> str:
        if value > self.target:
            return "breach"
        if value > self.warn_ratio * self.target:
            return "warn"
        return "ok"

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "kind": self.kind, "target": self.target,
                "warn_ratio": self.warn_ratio, "quantile": self.quantile,
                "latency": self.latency}


@dataclass
class _RuleBurn:
    """Burn accounting for one rule across evaluations."""

    evaluations: int = 0
    breaches: int = 0
    episodes: int = 0
    breaching: bool = False
    episode_started: float | None = None

    def observe(self, verdict: str, now: float) -> str | None:
        """Fold one evaluation in; returns 'breach'/'recover' on an edge."""
        self.evaluations += 1
        if verdict == "breach":
            self.breaches += 1
            if not self.breaching:
                self.breaching = True
                self.episodes += 1
                self.episode_started = now
                return "breach"
        elif self.breaching:
            self.breaching = False
            self.episode_started = None
            return "recover"
        return None

    def to_dict(self, now: float) -> dict[str, Any]:
        burning = (now - self.episode_started
                   if self.breaching and self.episode_started is not None
                   else 0.0)
        return {"evaluations": self.evaluations, "breaches": self.breaches,
                "episodes": self.episodes, "breaching": self.breaching,
                "burning_seconds": max(0.0, burning)}


@dataclass
class SLOReport:
    """One evaluation: per-rule measurements + verdicts, overall verdict."""

    overall: str
    evaluated_at: float
    rules: list[dict[str, Any]] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {"overall": self.overall, "evaluated_at": self.evaluated_at,
                "rules": [dict(rule) for rule in self.rules]}


class SLOEngine:
    """Rolling windows + rules -> verdicts, with breach/recover events.

    The serving path calls the ``observe_*`` hooks (cheap: one ring
    record each); anyone — ``/health``, ``serve-bench``, tests — calls
    :meth:`evaluate` to get a fresh :class:`SLOReport`.  With an
    :class:`~repro.obs.events.EventLog` attached, breach and recover
    *transitions* (not every breaching evaluation) are emitted as
    ``slo_breach`` / ``slo_recover`` events.
    """

    def __init__(self, rules: Iterable[SLORule] = (),
                 bucket_seconds: float = DEFAULT_BUCKET_SECONDS,
                 buckets: int = DEFAULT_WINDOW_BUCKETS,
                 edges: Iterable[float] | None = None,
                 clock: Callable[[], float] = time.time,
                 events: EventLog | None = None) -> None:
        self.rules = tuple(rules)
        seen: set[str] = set()
        for rule in self.rules:
            if rule.name in seen:
                raise ValueError(f"duplicate SLO rule name {rule.name!r}")
            seen.add(rule.name)
        self._clock = clock
        self.event_log = events
        self.windows: dict[str, WindowedHistogram] = {
            kind: WindowedHistogram(bucket_seconds, buckets, edges=edges,
                                    clock=clock)
            for kind in LATENCY_KINDS}
        self.requests = WindowedCounter(bucket_seconds, buckets, clock=clock)
        self.failures = WindowedCounter(bucket_seconds, buckets, clock=clock)
        self._lock = threading.Lock()
        self._queue_depth = 0
        self._burn = {rule.name: _RuleBurn() for rule in self.rules}

    # -- observation hooks (called from the serving path) --------------------
    def observe_latency(self, kind: str, seconds: float) -> None:
        self.windows[kind].record(seconds)

    def observe_request(self, failed: bool = False) -> None:
        self.requests.inc()
        if failed:
            self.failures.inc()

    def observe_queue_depth(self, depth: int) -> None:
        with self._lock:
            self._queue_depth = int(depth)

    @property
    def queue_depth(self) -> int:
        with self._lock:
            return self._queue_depth

    # -- measurement + evaluation --------------------------------------------
    def measure(self, rule: SLORule) -> float:
        if rule.kind == "latency_quantile":
            return self.windows[rule.latency].quantile(rule.quantile)
        if rule.kind == "error_rate":
            requests = self.requests.total()
            return self.failures.total() / requests if requests else 0.0
        return float(self.queue_depth)

    def evaluate(self) -> SLOReport:
        """Measure every rule against its window and fold burn state in."""
        now = self._clock()
        rows: list[dict[str, Any]] = []
        for rule in self.rules:
            value = self.measure(rule)
            verdict = rule.verdict(value)
            with self._lock:
                burn = self._burn[rule.name]
                edge = burn.observe(verdict, now)
                burn_state = burn.to_dict(now)
            if edge and self.event_log is not None:
                self.event_log.emit(f"slo_{edge}", rule=rule.name,
                                 value=value, target=rule.target)
            rows.append({**rule.to_dict(), "value": value,
                         "verdict": verdict, "burn": burn_state})
        return SLOReport(overall=worst_verdict(row["verdict"]
                                               for row in rows),
                         evaluated_at=now, rules=rows)

    # -- introspection --------------------------------------------------------
    def window_summaries(self) -> dict[str, dict[str, float]]:
        """Rolling-window latency digests plus request/failure counts."""
        summaries: dict[str, Any] = {
            kind: self.windows[kind].summary() for kind in LATENCY_KINDS}
        summaries["requests"] = self.requests.total()
        summaries["failures"] = self.failures.total()
        return summaries

    def to_dict(self) -> dict[str, Any]:
        report = self.evaluate()
        return {"report": report.to_dict(),
                "windows": self.window_summaries(),
                "queue_depth": self.queue_depth}
