"""The inference server: worker threads over the dynamic batcher.

:class:`InferenceServer` wires the serving pieces together: requests
enter through :meth:`~InferenceServer.submit` / :meth:`~InferenceServer.infer`,
coalesce in a :class:`~repro.serving.batcher.DynamicBatcher`, and worker
threads drain batches — resolving each batch's model through the
:class:`~repro.serving.registry.ModelRegistry` (lazy load, LRU residency)
and running one batch-invariant forward per batch through the model's
immutable :class:`~repro.combining.execplan.ExecutionPlan`.  Plans never
mutate shared state, so forwards need no lock: workers run batches for
the *same* model concurrently, not just across models.

Two execution backends share this structure (``backend=``):

* ``"thread"`` (default) — each drain thread runs the forward in-process
  on the registry's resident plan.
* ``"process"`` — each drain thread ships ``(artifact path, content
  fingerprint, mode, batch)`` to a persistent
  :class:`~repro.serving.procpool.ProcessWorkerPool` worker, which maps
  the artifact itself (``load_plan(mmap="auto")``, cached per process
  and per content generation) and runs the forward outside the GIL.
  Only artifact-backed registrations can be served this way — a pinned
  live model has no path to ship.  If the pool dies (a worker was
  killed, OOMed, or crashed the interpreter), only the in-flight batch
  fails: the server rebuilds and rewarms the pool once per incident —
  with the ``forkserver`` start method, since by then drain threads
  exist and forking a multi-threaded parent is unsafe — and subsequent
  batches serve normally (``stats()["totals"]["pool_rebuilds"]``
  counts the incidents).

Hot swap composes with both backends:
:meth:`~repro.serving.registry.ModelRegistry.swap` installs a new plan
off to the side and flips the entry atomically, so in-flight forwards
finish on the old immutable plan while the next batch serves the new
one — no drain, no lock, no dropped request.

Responses are bit-identical across backends, worker counts, and batch
coalescing: every path runs the same batch-invariant plan execution.

Accounting rides along for free:

* **per request** — queueing delay (submit -> batch dispatch) and service
  time (dispatch -> response), aggregated per model;
* **per batch** — the systolic cycle / tile cost of the batch from the
  plans' own timing-model machinery (cached per batch size), i.e. what
  the batch would cost on the paper's array rather than on the host CPU
  running the simulation.

Shutdown is graceful by default: :meth:`~InferenceServer.stop` closes the
batcher to new work, lets the workers drain everything already queued,
joins them, and releases the process pool (if any); every submitted
request therefore gets an answer (or the failure that prevented one)
before ``stop`` returns.
"""

from __future__ import annotations

import threading
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import monotonic
from typing import Any

import numpy as np

from repro.combining.inference import ensure_sample_batch
from repro.combining.kernels import DEFAULT_KERNEL, validate_kernel
from repro.serving.batcher import Batch, DynamicBatcher, PendingRequest
from repro.serving.procpool import ProcessWorkerPool
from repro.serving.registry import ModelRegistry

#: Execution backends the server can run batches on.
SERVING_BACKENDS: tuple[str, ...] = ("thread", "process")


@dataclass
class _LatencyStats:
    """Streaming mean / max over a latency series."""

    count: int = 0
    total: float = 0.0
    max: float = 0.0

    def record(self, value: float) -> None:
        self.count += 1
        self.total += value
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def as_dict(self) -> dict[str, float]:
        return {"mean": self.mean, "max": self.max}


@dataclass
class _ModelStats:
    """Per-model serving counters, updated under the server's stats lock."""

    requests: int = 0
    samples: int = 0
    batches: int = 0
    failures: int = 0
    cycles: int = 0
    tiles: int = 0
    #: Systolic accounting-plan cache hits / misses across backends.  In
    #: the thread backend the cache is the resident model's; in the
    #: process backend each worker process has its own cache, so misses
    #: here add up across workers — exactly the cross-process accounting
    #: duplication the counters exist to expose.  Batches whose
    #: accounting failed count in neither bucket.
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    queued: _LatencyStats = field(default_factory=_LatencyStats)
    service: _LatencyStats = field(default_factory=_LatencyStats)

    @property
    def mean_batch_size(self) -> float:
        return self.samples / self.batches if self.batches else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "samples": self.samples,
            "batches": self.batches,
            "failures": self.failures,
            "mean_batch_size": self.mean_batch_size,
            "cycles": self.cycles,
            "tiles": self.tiles,
            "plan_cache": {"hits": self.plan_cache_hits,
                           "misses": self.plan_cache_misses},
            "queued_seconds": self.queued.as_dict(),
            "service_seconds": self.service.as_dict(),
        }


class InferenceServer:
    """Dynamic-batching server over a :class:`ModelRegistry`.

    ``workers`` is the number of batch-draining threads; with
    ``backend="process"`` it is also the process pool size, so each
    drain thread keeps one worker process busy.  Plan execution is
    lock-free, so extra workers buy real concurrency even on a single
    hot model — threads overlap BLAS-released GIL sections, processes
    sidestep the GIL entirely.  ``kernel`` picks the batch-invariant
    implementation every forward runs
    (:mod:`repro.combining.kernels`); responses are bit-identical
    across backends / workers / coalescing for whichever kernel the
    server was built with.  Use as a context manager, or pair
    :meth:`start` with :meth:`stop`.
    """

    def __init__(self, registry: ModelRegistry, max_batch: int = 16,
                 max_wait: float = 0.002, workers: int = 1,
                 backend: str = "thread", kernel: str = DEFAULT_KERNEL):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend not in SERVING_BACKENDS:
            raise ValueError(f"unknown serving backend {backend!r}; "
                             f"expected one of {SERVING_BACKENDS}")
        validate_kernel(kernel)
        self.registry = registry
        self.batcher = DynamicBatcher(max_batch=max_batch, max_wait=max_wait)
        self.workers = workers
        self.backend = backend
        self.kernel = kernel
        self._pool: ProcessWorkerPool | None = None
        self._pool_lock = threading.Lock()
        self._pool_rebuilds = 0
        self._threads: list[threading.Thread] = []
        self._started = False
        self._stats_lock = threading.Lock()
        self._model_stats: dict[str, _ModelStats] = {}

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "InferenceServer":
        if self._started:
            raise RuntimeError("server is already running")
        if self.batcher.closed:
            raise RuntimeError("server was stopped; build a new one to restart")
        if self.backend == "process" and self._pool is None:
            # Create and warm the pool before any drain thread exists:
            # forking a multi-threaded parent is where fork-based pools
            # go to deadlock.
            pool = ProcessWorkerPool(self.workers)
            pool.warm()
            self._pool = pool
        self._started = True
        for index in range(self.workers):
            thread = threading.Thread(target=self._worker_loop,
                                      name=f"serving-worker-{index}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        return self

    def stop(self, timeout: float | None = None) -> None:
        """Graceful shutdown: refuse new requests, drain the queue, join.

        Idempotent.  After ``close()`` the batcher dispatches everything
        still pending without coalescing waits; each worker exits once the
        queue reads empty, so every accepted request is answered before
        the threads are joined (and the process pool, if any, released).

        ``timeout`` bounds the **whole** shutdown, not each join: all
        worker threads share one monotonic deadline, so ``stop(5.0)``
        returns within ~5 seconds even with many wedged workers (joining
        each thread with the full timeout would multiply the wait by the
        worker count).  Threads still alive at the deadline are kept so a
        later ``stop()`` can finish the join.
        """
        self.batcher.close()
        deadline = None if timeout is None else monotonic() + timeout
        for thread in self._threads:
            remaining = (None if deadline is None
                         else max(0.0, deadline - monotonic()))
            thread.join(remaining)
        self._threads = [thread for thread in self._threads
                         if thread.is_alive()]
        self._started = bool(self._threads)
        if not self._started:
            with self._pool_lock:
                if self._pool is not None:
                    self._pool.shutdown()
                    self._pool = None

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._started and not self.batcher.closed

    # -- request entry points ------------------------------------------------
    def submit(self, model_name: str, samples: np.ndarray) -> PendingRequest:
        """Enqueue a request; returns a waitable :class:`PendingRequest`.

        ``samples`` is a single ``(C, H, W)`` sample (the response is the
        single sample's output row) or an NCHW batch (the response keeps
        the batch axis).  Unknown model names fail fast here rather than
        poisoning a worker.
        """
        if model_name not in self.registry:
            raise KeyError(
                f"unknown model {model_name!r}; registered models: "
                f"{self.registry.names()}")
        if not self._started:
            raise RuntimeError("server is not running; call start() first")
        batch, unbatched = ensure_sample_batch(samples)
        if batch.ndim != 4:
            raise ValueError(
                "samples must be (C, H, W) or (batch, C, H, W), got shape "
                f"{np.asarray(samples).shape}")
        return self.batcher.submit(model_name, batch, unbatched=unbatched)

    def infer(self, model_name: str, samples: np.ndarray,
              timeout: float | None = 60.0) -> np.ndarray:
        """Synchronous :meth:`submit` + ``result``."""
        return self.submit(model_name, samples).result(timeout)

    # -- worker loop ---------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            batch = self.batcher.next_batch(timeout=0.1)
            if batch is None:
                if self.batcher.closed and self.batcher.pending_count() == 0:
                    return
                continue
            self._run_batch(batch)

    def _forward_thread(self, batch: Batch
                        ) -> tuple[np.ndarray, int, int, bool | None]:
        """In-process forward on the registry's resident plan."""
        resident = self.registry.get(batch.key)
        outputs, observed = resident.forward_traced(batch.stacked(),
                                                    kernel=self.kernel)
        cycles = tiles = 0
        cache_hit: bool | None = None
        try:
            plan, cache_hit = resident.batch_plan_traced(batch.num_samples,
                                                         observed)
            cycles, tiles = plan.total_cycles, plan.total_tiles
        except Exception:  # noqa: BLE001 - accounting is best-effort
            # A plan failure (e.g. non-square activation maps the
            # timing model cannot size) must not fail a batch whose
            # forward already succeeded.
            cache_hit = None
        return outputs, cycles, tiles, cache_hit

    def _forward_process(self, batch: Batch
                         ) -> tuple[np.ndarray, int, int, bool | None]:
        """Ship (path, fingerprint, mode, batch) to a pool worker.

        The registry's content fingerprint rides along so the worker's
        plan cache is keyed by content generation: after a hot swap the
        very next batch serves the new artifact, never a superseded
        cached plan.  A dead pool fails only this batch — the pool is
        rebuilt (once per incident) for the next one.
        """
        path, mode, fingerprint = self.registry.registration_info(batch.key)
        if path is None:
            raise ValueError(
                f"model {batch.key!r} is registered as a live object; the "
                "process backend serves artifact-backed registrations only "
                "(register a saved artifact path instead of add()ing a model)")
        pool = self._pool
        assert pool is not None
        try:
            return pool.run(path, mode, batch.stacked(), kernel=self.kernel,
                            fingerprint=fingerprint)
        except BrokenProcessPool:
            self._rebuild_pool(pool)
            raise

    def _rebuild_pool(self, broken: ProcessWorkerPool) -> None:
        """Replace a dead process pool; once per incident.

        Every drain thread whose batch died on the same broken pool calls
        in; the identity check makes the first one rebuild and the rest
        no-ops, so one incident costs one rebuild.  The replacement uses
        the ``forkserver`` start method: the server is multi-threaded by
        now, and forking a multi-threaded parent directly is where
        fork-based pools go to deadlock (forkserver forks from its own
        clean single-threaded process instead, and unlike ``spawn``
        never re-executes ``__main__``).
        """
        with self._pool_lock:
            if self._pool is not broken:
                return
            try:
                broken.shutdown()
            except Exception:  # noqa: BLE001 - already broken
                pass
            pool = ProcessWorkerPool(self.workers, start_method="forkserver")
            pool.warm()
            self._pool = pool
            self._pool_rebuilds += 1

    def _run_batch(self, batch: Batch) -> None:
        dispatched = monotonic()
        cycles = tiles = 0
        cache_hit: bool | None = None
        try:
            if self.backend == "process":
                outputs, cycles, tiles, cache_hit = self._forward_process(batch)
            else:
                outputs, cycles, tiles, cache_hit = self._forward_thread(batch)
            batch.resolve(outputs)
            failed = False
        except BaseException as error:  # noqa: BLE001 - relayed to clients
            batch.fail(error)
            failed = True
        finished = monotonic()
        with self._stats_lock:
            stats = self._model_stats.setdefault(batch.key, _ModelStats())
            stats.batches += 1
            stats.cycles += cycles
            stats.tiles += tiles
            if cache_hit is not None:
                if cache_hit:
                    stats.plan_cache_hits += 1
                else:
                    stats.plan_cache_misses += 1
            if failed:
                stats.failures += len(batch.requests)
            for request in batch:
                request.queued_seconds = dispatched - request.enqueued_at
                request.service_seconds = finished - dispatched
                stats.requests += 1
                stats.samples += request.num_samples
                stats.queued.record(request.queued_seconds)
                stats.service.record(request.service_seconds)

    # -- accounting ----------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Aggregate serving statistics: totals plus a per-model breakdown."""
        with self._stats_lock:
            per_model = {name: stats.as_dict()
                         for name, stats in self._model_stats.items()}
        totals = {
            "requests": sum(s["requests"] for s in per_model.values()),
            "samples": sum(s["samples"] for s in per_model.values()),
            "batches": sum(s["batches"] for s in per_model.values()),
            "failures": sum(s["failures"] for s in per_model.values()),
            "cycles": sum(s["cycles"] for s in per_model.values()),
            "tiles": sum(s["tiles"] for s in per_model.values()),
            "plan_cache": {
                "hits": sum(s["plan_cache"]["hits"]
                            for s in per_model.values()),
                "misses": sum(s["plan_cache"]["misses"]
                              for s in per_model.values()),
            },
        }
        batches = totals["batches"]
        totals["mean_batch_size"] = totals["samples"] / batches if batches else 0.0
        with self._pool_lock:
            totals["pool_rebuilds"] = self._pool_rebuilds
        return {"totals": totals, "per_model": per_model,
                "backend": self.backend, "kernel": self.kernel,
                "registry": self.registry.stats()}
