"""The inference server: worker threads over the dynamic batcher.

:class:`InferenceServer` wires the serving pieces together: requests
enter through :meth:`~InferenceServer.submit` / :meth:`~InferenceServer.infer`,
coalesce in a :class:`~repro.serving.batcher.DynamicBatcher`, and worker
threads drain batches — resolving each batch's model through the
:class:`~repro.serving.registry.ModelRegistry` (lazy load, LRU residency)
and running one batch-invariant forward per batch through the model's
immutable :class:`~repro.combining.execplan.ExecutionPlan`.  Plans never
mutate shared state, so forwards need no lock: workers run batches for
the *same* model concurrently, not just across models.

Two execution backends share this structure (``backend=``):

* ``"thread"`` (default) — each drain thread runs the forward in-process
  on the registry's resident plan.
* ``"process"`` — each drain thread ships ``(artifact path, content
  fingerprint, mode, batch)`` to a persistent
  :class:`~repro.serving.procpool.ProcessWorkerPool` worker, which maps
  the artifact itself (``load_plan(mmap="auto")``, cached per process
  and per content generation) and runs the forward outside the GIL.
  Only artifact-backed registrations can be served this way — a pinned
  live model has no path to ship.  If the pool dies (a worker was
  killed, OOMed, or crashed the interpreter), only the in-flight batch
  fails: the server rebuilds and rewarms the pool once per incident —
  with the ``forkserver`` start method, since by then drain threads
  exist and forking a multi-threaded parent is unsafe — and subsequent
  batches serve normally (``stats()["totals"]["pool_rebuilds"]``
  counts the incidents).

Hot swap composes with both backends:
:meth:`~repro.serving.registry.ModelRegistry.swap` installs a new plan
off to the side and flips the entry atomically, so in-flight forwards
finish on the old immutable plan while the next batch serves the new
one — no drain, no lock, no dropped request.

Responses are bit-identical across backends, worker counts, and batch
coalescing: every path runs the same batch-invariant plan execution.

Observability rides along (:mod:`repro.obs`):

* **per request** — queueing delay (submit -> batch dispatch) and service
  time (dispatch -> response) recorded into exactly-mergeable log-spaced
  histograms (:class:`~repro.obs.metrics.Histogram`), per model and —
  merged, exactly — in the ``stats()`` totals: p50/p90/p99 next to the
  legacy mean/max.  Every request also gets a **trace id** at
  :meth:`submit` and a span timeline (enqueue -> coalesce with the
  batcher's flush reason -> forward -> respond) retained in a bounded
  ring (:meth:`InferenceServer.traces`).
* **per batch** — the systolic cycle / tile cost of the batch from the
  plans' own timing-model machinery (cached per batch size), i.e. what
  the batch would cost on the paper's array rather than on the host CPU
  running the simulation; plus the batcher's flush reason
  (max_batch / max_wait / drain), counted per model.
* **per layer** (opt-in, ``profile=True``) — each packed layer op's wall
  time from perf-counter wrapping (outputs stay bit-identical); in the
  process backend the per-worker histograms and layer timings ride back
  with the ``_run_plan_batch`` result tuple, and
  :meth:`InferenceServer.metrics_snapshot` merges the per-worker
  registries (sorted by pid — histogram merge is exact, so totals are
  schedule-independent) into the server-side registry.  Export as a
  JSON snapshot or Prometheus text (:meth:`InferenceServer.prometheus_text`).
* **operationally** — :meth:`InferenceServer.serve_metrics` attaches a
  threaded HTTP scrape endpoint (``/metrics`` Prometheus text,
  ``/health`` liveness + SLO verdict with the verdict in the HTTP
  status, ``/stats`` / ``/traces`` / ``/events`` JSON); rolling
  windows over the same exactly-mergeable histograms
  (:mod:`repro.obs.window`) feed declarative SLO rules
  (:mod:`repro.obs.slo`, ``slo=[...]``), and lifecycle transitions —
  model load/evict/swap, pool warm/rebuild, SLO breach/recover, server
  start/stop — land in a bounded :class:`~repro.obs.events.EventLog`
  shared with the registry and the process pool.  All of it wraps the
  serving path from outside the forward, so observed and exported
  serving stays bit-identical.

Shutdown is graceful by default: :meth:`~InferenceServer.stop` closes the
batcher to new work, lets the workers drain everything already queued,
joins them, and releases the process pool (if any); every submitted
request therefore gets an answer (or the failure that prevented one)
before ``stop`` returns.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from time import monotonic, perf_counter_ns
from typing import Any, Callable, Sequence

import numpy as np

from repro.combining.inference import ensure_sample_batch
from repro.combining.kernels import DEFAULT_KERNEL, validate_kernel
from repro.obs.events import EventLog
from repro.obs.exporter import ObservabilityExporter
from repro.obs.metrics import (Histogram, MetricsRegistry, merge_snapshots,
                               prometheus_from_snapshot)
from repro.obs.slo import SLOEngine, SLORule
from repro.obs.tracing import (DEFAULT_TRACE_CAPACITY, Span, Trace,
                               TraceBuffer, TraceIdAllocator)
from repro.serving.batcher import Batch, DynamicBatcher, PendingRequest
from repro.serving.procpool import ProcessWorkerPool
from repro.serving.registry import ModelRegistry

#: Execution backends the server can run batches on.
SERVING_BACKENDS: tuple[str, ...] = ("thread", "process")


@dataclass
class _ModelStats:
    """Per-model serving counters, updated under the server's stats lock.

    ``queued`` / ``service`` are the *live* registry histograms for this
    model (``serving_queued_seconds{model=...}`` etc.), so recording a
    latency here and exporting it through
    :meth:`InferenceServer.metrics_snapshot` are one write, never two
    copies that could drift.
    """

    requests: int = 0
    samples: int = 0
    batches: int = 0
    failures: int = 0
    cycles: int = 0
    tiles: int = 0
    #: Systolic accounting-plan cache hits / misses across backends.  In
    #: the thread backend the cache is the resident model's; in the
    #: process backend each worker process has its own cache, so misses
    #: here add up across workers — exactly the cross-process accounting
    #: duplication the counters exist to expose.  Batches whose
    #: accounting failed count in neither bucket.
    plan_cache_hits: int = 0
    plan_cache_misses: int = 0
    queued: Histogram = field(default_factory=Histogram)
    service: Histogram = field(default_factory=Histogram)

    @property
    def mean_batch_size(self) -> float:
        return self.samples / self.batches if self.batches else 0.0

    def as_dict(self) -> dict[str, Any]:
        return {
            "requests": self.requests,
            "samples": self.samples,
            "batches": self.batches,
            "failures": self.failures,
            "mean_batch_size": self.mean_batch_size,
            "cycles": self.cycles,
            "tiles": self.tiles,
            "plan_cache": {"hits": self.plan_cache_hits,
                           "misses": self.plan_cache_misses},
            "queued_seconds": self.queued.summary(),
            "service_seconds": self.service.summary(),
        }


class InferenceServer:
    """Dynamic-batching server over a :class:`ModelRegistry`.

    ``workers`` is the number of batch-draining threads; with
    ``backend="process"`` it is also the process pool size, so each
    drain thread keeps one worker process busy.  Plan execution is
    lock-free, so extra workers buy real concurrency even on a single
    hot model — threads overlap BLAS-released GIL sections, processes
    sidestep the GIL entirely.  ``kernel`` picks the batch-invariant
    implementation every forward runs
    (:mod:`repro.combining.kernels`); responses are bit-identical
    across backends / workers / coalescing for whichever kernel the
    server was built with.  Use as a context manager, or pair
    :meth:`start` with :meth:`stop`.

    ``profile=True`` opts every batch into per-layer wall-time
    accounting (perf-counter wrapping around each packed layer op —
    responses stay bit-identical); ``trace_capacity`` bounds the ring of
    retained request traces (``0`` disables tracing).
    """

    def __init__(self, registry: ModelRegistry, max_batch: int = 16,
                 max_wait: float = 0.002, workers: int = 1,
                 backend: str = "thread", kernel: str = DEFAULT_KERNEL,
                 profile: bool = False,
                 trace_capacity: int = DEFAULT_TRACE_CAPACITY,
                 slo: "Sequence[SLORule] | SLOEngine | None" = None,
                 events: EventLog | None = None,
                 clock: Callable[[], float] = time.time):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if backend not in SERVING_BACKENDS:
            raise ValueError(f"unknown serving backend {backend!r}; "
                             f"expected one of {SERVING_BACKENDS}")
        validate_kernel(kernel)
        self.registry = registry
        self.batcher = DynamicBatcher(max_batch=max_batch, max_wait=max_wait)
        self.workers = workers
        self.backend = backend
        self.kernel = kernel
        self.profile = profile
        self._pool: ProcessWorkerPool | None = None
        self._pool_lock = threading.Lock()
        self._pool_rebuilds = 0
        self._threads: list[threading.Thread] = []
        self._started = False
        self._stats_lock = threading.Lock()
        self._model_stats: dict[str, _ModelStats] = {}
        #: Server-side metrics registry.  Request latencies, flush-reason
        #: counters, and (thread backend) layer timings record here; the
        #: process backend's layer timings live in the workers' own
        #: registries and merge in through ``metrics_snapshot()``.
        self._metrics = MetricsRegistry()
        self._trace_ids = TraceIdAllocator()
        self._traces = TraceBuffer(trace_capacity)
        #: Latest metrics snapshot per worker pid (process backend).
        #: Workers accumulate cumulative registries and ship full
        #: snapshots, so "latest per pid" is lossless and merge-exact.
        self._worker_snapshots: dict[int, dict[str, Any]] = {}
        #: Per model -> layer -> [total_ns, batches]; exact integer
        #: accumulation across both backends, feeding ``layer_profile``.
        self._layer_ns: dict[str, dict[str, list[int]]] = {}
        #: Lifecycle event log.  By default the server joins the
        #: registry's log, so model loads/evictions/swaps and server
        #: start/stop/pool-rebuild land in one timestamped stream; pass
        #: ``events`` to use a dedicated (or shared-wider) log instead.
        self.event_log: EventLog = (events if events is not None
                                    else registry.event_log)
        #: Rolling windows + SLO rules.  Always present (the windows are
        #: what ``/health`` and ``stats()["windows"]`` read); with no
        #: rules the engine evaluates to an empty all-ok report.  The
        #: injected ``clock`` drives window bucketing and event
        #: timestamps, so tests can rotate and expire windows
        #: deterministically.
        if isinstance(slo, SLOEngine):
            self.slo = slo
            if self.slo.event_log is None:
                self.slo.event_log = self.event_log
        else:
            self.slo = SLOEngine(tuple(slo) if slo is not None else (),
                                 clock=clock, events=self.event_log)
        self._exporter: ObservabilityExporter | None = None

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> "InferenceServer":
        if self._started:
            raise RuntimeError("server is already running")
        if self.batcher.closed:
            raise RuntimeError("server was stopped; build a new one to restart")
        if self.backend == "process" and self._pool is None:
            # Create and warm the pool before any drain thread exists:
            # forking a multi-threaded parent is where fork-based pools
            # go to deadlock.
            pool = ProcessWorkerPool(self.workers, events=self.event_log)
            pool.warm()
            self._pool = pool
        self._started = True
        for index in range(self.workers):
            thread = threading.Thread(target=self._worker_loop,
                                      name=f"serving-worker-{index}",
                                      daemon=True)
            thread.start()
            self._threads.append(thread)
        self.event_log.emit("server_start", backend=self.backend,
                            workers=self.workers, kernel=self.kernel,
                            profile=self.profile)
        return self

    def stop(self, timeout: float | None = None) -> None:
        """Graceful shutdown: refuse new requests, drain the queue, join.

        Idempotent.  After ``close()`` the batcher dispatches everything
        still pending without coalescing waits; each worker exits once the
        queue reads empty, so every accepted request is answered before
        the threads are joined (and the process pool, if any, released).

        ``timeout`` bounds the **whole** shutdown, not each join: all
        worker threads share one monotonic deadline, so ``stop(5.0)``
        returns within ~5 seconds even with many wedged workers (joining
        each thread with the full timeout would multiply the wait by the
        worker count).  Threads still alive at the deadline are kept so a
        later ``stop()`` can finish the join.

        An attached exporter (:meth:`serve_metrics`) is closed *first*,
        so the scrape endpoint never outlives the server it reports on.
        """
        stopping = self._started and not self.batcher.closed
        if self._exporter is not None:
            self._exporter.close()
            self._exporter = None
        self.batcher.close()
        deadline = None if timeout is None else monotonic() + timeout
        for thread in self._threads:
            remaining = (None if deadline is None
                         else max(0.0, deadline - monotonic()))
            thread.join(remaining)
        self._threads = [thread for thread in self._threads
                         if thread.is_alive()]
        self._started = bool(self._threads)
        if not self._started:
            with self._pool_lock:
                if self._pool is not None:
                    self._pool.shutdown()
                    self._pool = None
        if stopping:
            self.event_log.emit("server_stop", drained=not self._started)

    def __enter__(self) -> "InferenceServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    @property
    def running(self) -> bool:
        return self._started and not self.batcher.closed

    # -- request entry points ------------------------------------------------
    def submit(self, model_name: str, samples: np.ndarray) -> PendingRequest:
        """Enqueue a request; returns a waitable :class:`PendingRequest`.

        ``samples`` is a single ``(C, H, W)`` sample (the response is the
        single sample's output row) or an NCHW batch (the response keeps
        the batch axis).  Unknown model names fail fast here rather than
        poisoning a worker.
        """
        if model_name not in self.registry:
            raise KeyError(
                f"unknown model {model_name!r}; registered models: "
                f"{self.registry.names()}")
        if not self._started:
            raise RuntimeError("server is not running; call start() first")
        batch, unbatched = ensure_sample_batch(samples)
        if batch.ndim != 4:
            raise ValueError(
                "samples must be (C, H, W) or (batch, C, H, W), got shape "
                f"{np.asarray(samples).shape}")
        request = self.batcher.submit(model_name, batch, unbatched=unbatched,
                                      trace_id=self._trace_ids.allocate())
        self.slo.observe_queue_depth(self.batcher.pending_count())
        return request

    def infer(self, model_name: str, samples: np.ndarray,
              timeout: float | None = 60.0) -> np.ndarray:
        """Synchronous :meth:`submit` + ``result``."""
        return self.submit(model_name, samples).result(timeout)

    # -- worker loop ---------------------------------------------------------
    def _worker_loop(self) -> None:
        while True:
            batch = self.batcher.next_batch(timeout=0.1)
            if batch is None:
                if self.batcher.closed and self.batcher.pending_count() == 0:
                    return
                continue
            self._run_batch(batch)

    def _forward_thread(self, batch: Batch
                        ) -> tuple[np.ndarray, int, int, bool | None,
                                   dict[str, Any] | None]:
        """In-process forward on the registry's resident plan.

        Returns ``(outputs, cycles, tiles, plan_cache_hit, obs)`` — the
        same contract as the process backend's ``_run_plan_batch``.
        When the server profiles, ``obs`` carries this batch's per-layer
        nanoseconds (recorded straight into the server's own registry;
        there is no worker snapshot to merge).
        """
        resident = self.registry.get(batch.key)
        obs: dict[str, Any] | None = None
        if not self.profile:
            outputs, observed = resident.forward_traced(batch.stacked(),
                                                        kernel=self.kernel)
        else:
            layer_ns: dict[str, int] = {}
            forward_started = perf_counter_ns()
            outputs, observed = resident.forward_traced(batch.stacked(),
                                                        kernel=self.kernel,
                                                        profile=layer_ns)
            forward_ns = perf_counter_ns() - forward_started
            for layer, elapsed_ns in layer_ns.items():
                self._metrics.histogram(
                    "serving_layer_seconds",
                    labels={"model": batch.key, "layer": layer},
                ).record(elapsed_ns / 1e9)
            self._metrics.histogram(
                "serving_forward_seconds",
                labels={"model": batch.key}).record(forward_ns / 1e9)
            self._metrics.counter(
                "serving_profiled_batches",
                labels={"model": batch.key}).inc()
            obs = {"pid": None, "layer_ns": layer_ns,
                   "forward_ns": forward_ns, "snapshot": None}
        cycles = tiles = 0
        cache_hit: bool | None = None
        try:
            plan, cache_hit = resident.batch_plan_traced(batch.num_samples,
                                                         observed)
            cycles, tiles = plan.total_cycles, plan.total_tiles
        except Exception:  # noqa: BLE001 - accounting is best-effort
            # A plan failure (e.g. non-square activation maps the
            # timing model cannot size) must not fail a batch whose
            # forward already succeeded.
            cache_hit = None
        return outputs, cycles, tiles, cache_hit, obs

    def _forward_process(self, batch: Batch
                         ) -> tuple[np.ndarray, int, int, bool | None,
                                    dict[str, Any] | None]:
        """Ship (path, fingerprint, mode, batch) to a pool worker.

        The registry's content fingerprint rides along so the worker's
        plan cache is keyed by content generation: after a hot swap the
        very next batch serves the new artifact, never a superseded
        cached plan.  A dead pool fails only this batch — the pool is
        rebuilt (once per incident) for the next one.  When profiling,
        the worker's per-layer timings and full metrics snapshot come
        back in the result's ``obs`` element.
        """
        path, mode, fingerprint = self.registry.registration_info(batch.key)
        if path is None:
            raise ValueError(
                f"model {batch.key!r} is registered as a live object; the "
                "process backend serves artifact-backed registrations only "
                "(register a saved artifact path instead of add()ing a model)")
        pool = self._pool
        assert pool is not None
        try:
            return pool.run(path, mode, batch.stacked(), kernel=self.kernel,
                            fingerprint=fingerprint, profile=self.profile,
                            model_name=batch.key)
        except BrokenProcessPool:
            self._rebuild_pool(pool)
            raise

    def _rebuild_pool(self, broken: ProcessWorkerPool) -> None:
        """Replace a dead process pool; once per incident.

        Every drain thread whose batch died on the same broken pool calls
        in; the identity check makes the first one rebuild and the rest
        no-ops, so one incident costs one rebuild.  The replacement uses
        the ``forkserver`` start method: the server is multi-threaded by
        now, and forking a multi-threaded parent directly is where
        fork-based pools go to deadlock (forkserver forks from its own
        clean single-threaded process instead, and unlike ``spawn``
        never re-executes ``__main__``).
        """
        with self._pool_lock:
            if self._pool is not broken:
                return
            try:
                broken.shutdown()
            except Exception:  # noqa: BLE001 - already broken
                pass
            pool = ProcessWorkerPool(self.workers, start_method="forkserver",
                                     events=self.event_log)
            pool.warm()
            self._pool = pool
            self._pool_rebuilds += 1
            self.event_log.emit("pool_rebuild", workers=self.workers,
                                rebuilds=self._pool_rebuilds,
                                start_method="forkserver")

    def _stats_for(self, name: str) -> _ModelStats:
        """The model's stats record; caller must hold the stats lock.

        Created on first use with its latency histograms registered in
        the server's metrics registry, so per-model ``stats()`` digests
        and the Prometheus exposition read the same live objects.
        """
        stats = self._model_stats.get(name)
        if stats is None:
            stats = _ModelStats(
                queued=self._metrics.histogram("serving_queued_seconds",
                                               labels={"model": name}),
                service=self._metrics.histogram("serving_service_seconds",
                                                labels={"model": name}))
            self._model_stats[name] = stats
        return stats

    def _run_batch(self, batch: Batch) -> None:
        dispatched = monotonic()
        # Keep the queue-depth reading honest on the drain side too:
        # this batch just left the queue.
        self.slo.observe_queue_depth(self.batcher.pending_count())
        cycles = tiles = 0
        cache_hit: bool | None = None
        obs: dict[str, Any] | None = None
        error_text: str | None = None
        try:
            if self.backend == "process":
                outputs, cycles, tiles, cache_hit, obs = (
                    self._forward_process(batch))
            else:
                outputs, cycles, tiles, cache_hit, obs = (
                    self._forward_thread(batch))
            forward_done = monotonic()
            batch.resolve(outputs)
            failed = False
        except BaseException as error:  # noqa: BLE001 - relayed to clients
            forward_done = monotonic()
            batch.fail(error)
            failed = True
            error_text = repr(error)
        finished = monotonic()
        if batch.flush_reason is not None:
            self._metrics.counter(
                "serving_batches",
                labels={"model": batch.key,
                        "flush_reason": batch.flush_reason}).inc()
        with self._stats_lock:
            stats = self._stats_for(batch.key)
            stats.batches += 1
            stats.cycles += cycles
            stats.tiles += tiles
            if cache_hit is not None:
                if cache_hit:
                    stats.plan_cache_hits += 1
                else:
                    stats.plan_cache_misses += 1
            if failed:
                stats.failures += len(batch.requests)
            for request in batch:
                request.queued_seconds = dispatched - request.enqueued_at
                request.service_seconds = finished - dispatched
                stats.requests += 1
                stats.samples += request.num_samples
                stats.queued.record(request.queued_seconds)
                stats.service.record(request.service_seconds)
                # The same durations also feed the rolling windows the
                # SLO engine evaluates — one more ring record per
                # request, nowhere near the forward path.
                self.slo.observe_latency("queued", request.queued_seconds)
                self.slo.observe_latency("service", request.service_seconds)
                self.slo.observe_latency("total",
                                         finished - request.enqueued_at)
                self.slo.observe_request(failed=failed)
            if obs is not None:
                if obs["snapshot"] is not None:
                    self._worker_snapshots[obs["pid"]] = obs["snapshot"]
                layer_totals = self._layer_ns.setdefault(batch.key, {})
                for layer, elapsed_ns in obs["layer_ns"].items():
                    entry = layer_totals.setdefault(layer, [0, 0])
                    entry[0] += elapsed_ns
                    entry[1] += 1
        self._record_traces(batch, dispatched, forward_done, finished,
                            cycles, tiles, cache_hit, obs, failed, error_text)

    def _record_traces(self, batch: Batch, dispatched: float,
                       forward_done: float, finished: float, cycles: int,
                       tiles: int, cache_hit: bool | None,
                       obs: dict[str, Any] | None, failed: bool,
                       error_text: str | None) -> None:
        """One trace per request in the batch, into the bounded ring.

        Spans share the batch's timeline (requests in one batch were
        forwarded together); the ``enqueue`` span is the only
        per-request interval.  The ``coalesce`` span carries the
        batcher's flush reason — the why of this batch's latency.
        """
        if self._traces.capacity == 0:
            return
        head = batch.requests[0]
        forward_attributes: dict[str, Any] = {
            "backend": self.backend, "kernel": self.kernel,
            "cycles": cycles, "tiles": tiles,
            "plan_cache_hit": cache_hit,
            "batch_samples": batch.num_samples,
        }
        if obs is not None:
            forward_attributes["forward_ns"] = obs["forward_ns"]
            forward_attributes["layer_ns"] = dict(obs["layer_ns"])
            if obs["pid"] is not None:
                forward_attributes["worker_pid"] = obs["pid"]
        respond_attributes: dict[str, Any] = {"failed": failed}
        if error_text is not None:
            respond_attributes["error"] = error_text
        for request in batch:
            trace = Trace(request.trace_id or "untraced", batch.key,
                          attributes={"samples": request.num_samples,
                                      "unbatched": request.unbatched})
            trace.add_span(Span("enqueue", request.enqueued_at, dispatched))
            trace.add_span(Span(
                "coalesce", head.enqueued_at, dispatched,
                {"flush_reason": batch.flush_reason,
                 "requests": len(batch.requests),
                 "samples": batch.num_samples}))
            trace.add_span(Span("forward", dispatched, forward_done,
                                forward_attributes))
            trace.add_span(Span("respond", forward_done, finished,
                                respond_attributes))
            self._traces.record(trace)

    # -- accounting ----------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Aggregate serving statistics: totals plus a per-model breakdown.

        The totals' ``queued_seconds`` / ``service_seconds`` digests come
        from *exactly merging* the per-model histograms — identical to
        what one histogram recording every request would report,
        regardless of how requests spread across models and workers.
        """
        queued_total = Histogram()
        service_total = Histogram()
        with self._stats_lock:
            per_model = {name: stats.as_dict()
                         for name, stats in self._model_stats.items()}
            for stats in self._model_stats.values():
                queued_total.merge(stats.queued)
                service_total.merge(stats.service)
        totals = {
            "requests": sum(s["requests"] for s in per_model.values()),
            "samples": sum(s["samples"] for s in per_model.values()),
            "batches": sum(s["batches"] for s in per_model.values()),
            "failures": sum(s["failures"] for s in per_model.values()),
            "cycles": sum(s["cycles"] for s in per_model.values()),
            "tiles": sum(s["tiles"] for s in per_model.values()),
            "plan_cache": {
                "hits": sum(s["plan_cache"]["hits"]
                            for s in per_model.values()),
                "misses": sum(s["plan_cache"]["misses"]
                              for s in per_model.values()),
            },
        }
        batches = totals["batches"]
        totals["mean_batch_size"] = totals["samples"] / batches if batches else 0.0
        totals["queued_seconds"] = queued_total.summary()
        totals["service_seconds"] = service_total.summary()
        totals["flush_reasons"] = self.batcher.flush_reasons
        totals["peak_pending"] = self.batcher.peak_pending
        with self._pool_lock:
            totals["pool_rebuilds"] = self._pool_rebuilds
        return {"totals": totals, "per_model": per_model,
                "backend": self.backend, "kernel": self.kernel,
                "profile": self.profile, "traces": self._traces.stats(),
                "registry": self.registry.stats(),
                "windows": self.slo.window_summaries(),
                "events": self.event_log.stats()}

    # -- observability -------------------------------------------------------
    def traces(self, limit: int | None = None) -> list[dict[str, Any]]:
        """The retained request traces as dicts, oldest first.

        Each trace is one request's span timeline — ``enqueue`` ->
        ``coalesce`` (with the batcher's flush reason) -> ``forward``
        (backend / cycles / per-layer nanoseconds when profiling) ->
        ``respond`` — bounded by the server's ``trace_capacity``.
        """
        return self._traces.snapshot(limit)

    def events(self, limit: int | None = None,
               kind: str | None = None) -> list[dict[str, Any]]:
        """Recent lifecycle events as dicts, oldest first.

        The stream the registry, pool, SLO engine, and the server itself
        emit into: ``model_load`` / ``model_evict`` / ``model_swap`` /
        ``load_failure``, ``pool_warm`` / ``pool_rebuild`` /
        ``pool_shutdown``, ``slo_breach`` / ``slo_recover``,
        ``server_start`` / ``server_stop``.
        """
        return self.event_log.snapshot(limit=limit, kind=kind)

    def health(self) -> dict[str, Any]:
        """Liveness + the SLO verdict, the payload behind ``/health``.

        ``live`` is whether the server accepts requests; ``status`` is
        the worst verdict across the SLO rules evaluated against the
        rolling windows *right now* (``ok`` with no rules).  The
        exporter maps breach — or a stopped server — to HTTP 503.
        """
        report = self.slo.evaluate()
        return {"live": self.running, "status": report.overall,
                "backend": self.backend, "workers": self.workers,
                "queue_depth": self.slo.queue_depth,
                "slo": report.to_dict(),
                "windows": self.slo.window_summaries()}

    def serve_metrics(self, host: str = "127.0.0.1",
                      port: int = 0) -> ObservabilityExporter:
        """Attach and start an HTTP scrape endpoint over this server.

        ``port=0`` binds an ephemeral port (read it back from the
        returned exporter's ``.port``).  The endpoint serves
        ``/metrics``, ``/health``, ``/stats``, ``/traces``, and
        ``/events``; :meth:`stop` closes it with the server.
        """
        if self._exporter is not None:
            raise RuntimeError("an exporter is already attached; "
                               "stop() the server to detach it first")
        self._exporter = ObservabilityExporter(self, host=host,
                                               port=port).start()
        self.event_log.emit("exporter_start", host=self._exporter.host,
                            port=self._exporter.port)
        return self._exporter

    @property
    def exporter(self) -> ObservabilityExporter | None:
        return self._exporter

    def metrics_snapshot(self) -> dict[str, Any]:
        """The merged, JSON-able metrics state across the whole server.

        The server's own registry (request latencies, flush reasons,
        thread-backend layer timings) merged with the latest snapshot
        from every process-backend worker, in pid order.  Counters and
        histograms merge exactly, so the result is independent of how
        batches were scheduled across threads and workers.
        """
        with self._stats_lock:
            worker_snapshots = [snapshot for _pid, snapshot
                                in sorted(self._worker_snapshots.items())]
        return merge_snapshots([self._metrics.snapshot(), *worker_snapshots])

    def prometheus_text(self) -> str:
        """:meth:`metrics_snapshot` in Prometheus text exposition format."""
        return prometheus_from_snapshot(self.metrics_snapshot())

    def layer_profile(self, top: int | None = None
                      ) -> dict[str, list[dict[str, Any]]]:
        """Per-model layer timings, slowest first (requires ``profile=True``).

        Integer-nanosecond totals accumulated across both backends (the
        process backend ships each batch's layer timings home with the
        result), so the ranking is exact and schedule-independent.
        ``top`` keeps only the N slowest layers per model.
        """
        with self._stats_lock:
            captured = {model: {layer: (entry[0], entry[1])
                                for layer, entry in layers.items()}
                        for model, layers in self._layer_ns.items()}
        report: dict[str, list[dict[str, Any]]] = {}
        for model, layers in captured.items():
            ranked = sorted(layers.items(),
                            key=lambda item: (-item[1][0], item[0]))
            if top is not None:
                ranked = ranked[:top]
            report[model] = [
                {"layer": layer, "total_seconds": total_ns / 1e9,
                 "batches": batches,
                 "mean_seconds": (total_ns / 1e9 / batches) if batches else 0.0}
                for layer, (total_ns, batches) in ranked]
        return report
