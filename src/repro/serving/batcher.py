"""Dynamic request batching: coalesce single requests, split batched replies.

The batcher is the queueing half of the serving subsystem, deliberately
free of any model knowledge: callers :meth:`~DynamicBatcher.submit`
``(key, samples)`` pairs and receive a :class:`PendingRequest`; worker
loops call :meth:`~DynamicBatcher.next_batch`, which hands back a
:class:`Batch` of same-key requests coalesced under two knobs —

* ``max_batch`` — a batch closes as soon as it holds this many samples;
* ``max_wait`` — a batch closes at latest this many seconds after its
  oldest request arrived, so a lone request never waits for company that
  is not coming.

Guarantees the serving tests pin:

* **Order stability.** Dispatch always starts from the oldest pending
  request, and same-key requests coalesce in FIFO order, so responses
  for one key are computed in submission order and each response maps
  back to its own request (:meth:`Batch.resolve` splits the stacked
  outputs by the requests' own sample counts, in order).
* **Coalescing transparency.** The batcher never reorders samples
  within a request and never splits a request across batches; combined
  with the batch-invariant forward the server runs, the bits of each
  response are independent of how requests happened to coalesce.
* **Multi-worker safety.** Selection and removal happen under one lock,
  so two workers draining the same batcher never dispatch the same
  request twice.
"""

from __future__ import annotations

import copy
import threading
import time
from collections import deque
from typing import Iterator

import numpy as np

#: Why a batch left the queue: the sample budget filled, the oldest
#: request aged past ``max_wait``, or the batcher closed (drain mode).
FLUSH_REASONS: tuple[str, ...] = ("max_batch", "max_wait", "drain")


class PendingRequest:
    """One in-flight request: samples in, a waitable result out.

    ``result()`` blocks until a worker resolves the request (returning
    the per-request slice of the batched outputs, squeezed back to a
    single sample's output when the request was submitted unbatched) or
    fails it (re-raising the worker's exception).
    """

    __slots__ = ("key", "samples", "unbatched", "enqueued_at",
                 "queued_seconds", "service_seconds", "trace_id",
                 "_event", "_output", "_error")

    def __init__(self, key: str, samples: np.ndarray, unbatched: bool):
        self.key = key
        self.samples = samples
        self.unbatched = unbatched
        self.enqueued_at = time.monotonic()
        #: time from submit to batch dispatch / dispatch to resolution,
        #: filled in by the server's accounting when it runs the batch.
        self.queued_seconds: float | None = None
        self.service_seconds: float | None = None
        #: Server-assigned trace id (``InferenceServer.submit`` sets it;
        #: requests submitted straight to a bare batcher have none).
        self.trace_id: str | None = None
        self._event = threading.Event()
        self._output: np.ndarray | None = None
        self._error: BaseException | None = None

    @property
    def num_samples(self) -> int:
        return self.samples.shape[0]

    def done(self) -> bool:
        return self._event.is_set()

    def resolve(self, output: np.ndarray) -> None:
        self._output = output
        self._event.set()

    def fail(self, error: BaseException) -> None:
        self._error = error
        self._event.set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        if not self._event.wait(timeout):
            raise TimeoutError(
                f"request for model {self.key!r} did not complete within "
                f"{timeout} seconds")
        if self._error is not None:
            # A failed batch shares one exception instance across all its
            # requests; raising it directly from several client threads
            # would concurrently mutate its __traceback__ / __context__.
            # Each waiter raises its own shallow copy, chained to the
            # original for debugging.
            try:
                error = copy.copy(self._error)
            except Exception:  # uncopyable exception type
                raise self._error
            raise error from self._error
        assert self._output is not None
        return self._output


class Batch:
    """Same-key requests coalesced into one forward's worth of work.

    ``flush_reason`` records *why* the batcher closed this batch —
    ``"max_batch"`` (the sample budget filled), ``"max_wait"`` (the
    oldest request aged out), or ``"drain"`` (the batcher was closed) —
    the signal that makes a coalescing misconfiguration visible: a
    server that only ever flushes on ``max_wait`` is waiting for company
    that never comes, one that only flushes on ``max_batch`` may be
    queueing longer than it needs to.
    """

    def __init__(self, key: str, requests: list[PendingRequest],
                 flush_reason: str | None = None):
        if not requests:
            raise ValueError("a batch needs at least one request")
        self.key = key
        self.requests = requests
        self.flush_reason = flush_reason

    @property
    def num_samples(self) -> int:
        return sum(request.num_samples for request in self.requests)

    def __len__(self) -> int:
        return len(self.requests)

    def __iter__(self) -> Iterator[PendingRequest]:
        return iter(self.requests)

    def stacked(self) -> np.ndarray:
        """All requests' samples as one NCHW batch, in request order."""
        if len(self.requests) == 1:
            return self.requests[0].samples
        return np.concatenate([request.samples for request in self.requests],
                              axis=0)

    def resolve(self, outputs: np.ndarray) -> None:
        """Split batched outputs back onto the requests, in order.

        ``outputs[start:start + request.num_samples]`` belongs to each
        request in turn; unbatched requests get their single sample's
        output squeezed back out of the batch axis.
        """
        if outputs.shape[0] != self.num_samples:
            raise ValueError(
                f"batch produced {outputs.shape[0]} outputs for "
                f"{self.num_samples} samples")
        start = 0
        for request in self.requests:
            stop = start + request.num_samples
            chunk = outputs[start:stop]
            request.resolve(chunk[0] if request.unbatched else chunk)
            start = stop

    def fail(self, error: BaseException) -> None:
        for request in self.requests:
            request.fail(error)


class DynamicBatcher:
    """Thread-safe coalescing queue between request submitters and workers."""

    def __init__(self, max_batch: int = 16, max_wait: float = 0.002):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        self.max_batch = max_batch
        self.max_wait = max_wait
        self._pending: deque[PendingRequest] = deque()
        self._condition = threading.Condition()
        self._closed = False
        #: Batches dispatched per flush reason (guarded by the condition
        #: lock) — the coalescing-health signal ``stats()`` surfaces.
        self._flush_counts: dict[str, int] = {reason: 0
                                              for reason in FLUSH_REASONS}
        #: High-water mark of the pending queue (guarded by the
        #: condition lock) — the backlog signal the queue-depth SLO rule
        #: and capacity planning read; updated on every submit.
        self._peak_pending = 0

    # -- submission ----------------------------------------------------------
    def submit(self, key: str, samples: np.ndarray,
               unbatched: bool = False,
               trace_id: str | None = None) -> PendingRequest:
        """Enqueue one request; wakes any worker waiting in ``next_batch``.

        ``trace_id`` is attached before the request becomes visible to
        workers, so a batch dispatched the instant it coalesces still
        carries the id on every request.
        """
        request = PendingRequest(key, samples, unbatched)
        request.trace_id = trace_id
        with self._condition:
            if self._closed:
                raise RuntimeError("batcher is closed to new requests")
            self._pending.append(request)
            if len(self._pending) > self._peak_pending:
                self._peak_pending = len(self._pending)
            self._condition.notify_all()
        return request

    @property
    def closed(self) -> bool:
        return self._closed

    def pending_count(self) -> int:
        with self._condition:
            return len(self._pending)

    @property
    def peak_pending(self) -> int:
        """Deepest the pending queue has ever been (submit high-water)."""
        with self._condition:
            return self._peak_pending

    @property
    def flush_reasons(self) -> dict[str, int]:
        """Batches dispatched so far, split by why they flushed."""
        with self._condition:
            return dict(self._flush_counts)

    def close(self) -> None:
        """Refuse new submissions; pending requests still drain via
        ``next_batch`` (immediately, with no coalescing wait)."""
        with self._condition:
            self._closed = True
            self._condition.notify_all()

    # -- dispatch ------------------------------------------------------------
    def next_batch(self, timeout: float | None = None) -> Batch | None:
        """Coalesce and remove the next *ready* batch; ``None`` if none in time.

        A key's batch is ready when it is full (``max_batch`` samples),
        when its oldest request has aged past ``max_wait``, or when the
        batcher is closed (drain mode — everything dispatches
        immediately).  Every pending key is considered — oldest key first,
        so per-key FIFO holds — which means a full batch for one model
        never waits behind another model's still-coalescing head.  The
        caller's ``timeout`` only bounds how long *this call* waits for a
        batch to become ready; it never truncates a batch's own
        ``max_wait`` window — an underfull batch stays queued for a later
        call rather than dispatching early.  Scan and removal happen under
        one lock hold, so several workers can drain one batcher
        concurrently without double-dispatching.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._condition:
            while True:
                ready, earliest = self._scan_ready()
                if ready is not None:
                    chosen = set(map(id, ready.requests))
                    self._pending = deque(
                        request for request in self._pending
                        if id(request) not in chosen)
                    self._flush_counts[ready.flush_reason] += 1
                    return ready
                if self._closed and not self._pending:
                    return None
                now = time.monotonic()
                if deadline is not None and now >= deadline:
                    return None
                wait_for = None if deadline is None else deadline - now
                if earliest is not None:
                    batch_wait = max(0.0, earliest - now)
                    wait_for = (batch_wait if wait_for is None
                                else min(wait_for, batch_wait))
                self._condition.wait(wait_for)

    def _scan_ready(self) -> tuple[Batch | None, float | None]:
        """First ready batch in oldest-key order, else the soonest deadline.

        Walks the pending queue once; the first occurrence of each key is
        that key's oldest request, and its selection is checked for
        readiness (full / expired / closed).  When nothing is ready,
        returns the earliest ``max_wait`` deadline so the caller knows how
        long to sleep.  Caller must hold the lock.
        """
        now = time.monotonic()
        seen: set[str] = set()
        earliest: float | None = None
        for request in self._pending:
            if request.key in seen:
                continue
            seen.add(request.key)
            selected, samples = self._select(request.key)
            batch_deadline = request.enqueued_at + self.max_wait
            if samples >= self.max_batch:
                return Batch(request.key, selected, "max_batch"), None
            if self._closed:
                return Batch(request.key, selected, "drain"), None
            if now >= batch_deadline:
                return Batch(request.key, selected, "max_wait"), None
            if earliest is None or batch_deadline < earliest:
                earliest = batch_deadline
        return None, earliest

    def _select(self, key: str) -> tuple[list[PendingRequest], int]:
        """Oldest-first same-key requests filling at most ``max_batch`` samples.

        Stops at the first same-key request that would overflow the batch
        (requests are never split and never overtaken by later requests of
        their own key); a single oversized request is dispatched alone.
        Requests whose samples have a different per-sample shape than the
        batch head's cannot stack into one forward, so they end the
        selection too — a malformed request fails alone downstream instead
        of poisoning the well-formed requests it coalesced with.
        """
        selected: list[PendingRequest] = []
        samples = 0
        sample_shape: tuple[int, ...] | None = None
        for request in self._pending:
            if request.key != key:
                continue
            if selected and (samples + request.num_samples > self.max_batch
                             or request.samples.shape[1:] != sample_shape):
                break
            selected.append(request)
            samples += request.num_samples
            sample_shape = request.samples.shape[1:]
            if samples >= self.max_batch:
                break
        return selected, samples
