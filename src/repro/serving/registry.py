"""Named packed artifacts with lazy loading and LRU-bounded residency.

A serving node typically advertises more models than it wants resident in
memory at once: artifacts are cheap on disk (the whole point of
:mod:`repro.combining.serialization`), loaded models are not.
:class:`ModelRegistry` maps names to registered artifacts, loads them on
first request (:meth:`ModelRegistry.get`), and keeps at most
``max_resident`` loaded at a time, evicting the least recently used
reloadable entry when the bound is exceeded.  Models registered directly
as live objects (:meth:`ModelRegistry.add`) cannot be reloaded from
anywhere, so they are pinned and never count against the bound.

What the registry keeps resident is an immutable
:class:`~repro.combining.execplan.ExecutionPlan`, not an nn module graph.
Plans never mutate shared state during a forward, so any number of worker
threads may run the *same* resident model concurrently — there is no
per-model forward lock anymore, and the registry is no longer the unit of
serving concurrency.  Artifact-backed entries load through
:func:`~repro.combining.serialization.load_plan` (``mmap="auto"``), so a
V2 uncompressed artifact comes up as read-only views of the page cache
without ever reconstructing the nn model.

Loads are guarded by **per-entry** locks: concurrent ``get`` calls for
one name still load its artifact exactly once, but a slow load of one
model never serializes loads (or cache hits) of unrelated models behind
a registry-wide lock.

Live redeploy: :meth:`ModelRegistry.swap` cuts a registered name over to
an updated artifact **under traffic**.  The new artifact is probed
(content fingerprint, serving-mode and layer-architecture compatibility
via :func:`~repro.combining.serialization.artifact_info`) and loaded off
to the side under the entry's ``load_lock``; only then does the resident
entry atomically flip.  In-flight forwards keep running on the old
:class:`~repro.combining.execplan.ExecutionPlan` — plans are immutable,
so no drain or request-blocking is needed — and the next ``get()``
serves the new plan.  Every swap bumps the entry's **generation** and
re-probes its **fingerprint**, the token the process serving backend
keys its per-worker plan caches on, so warm worker processes can never
serve a superseded artifact.  :meth:`ModelRegistry.swap_live` is the
same cutover for an already-built model object (the entry becomes
pinned, like :meth:`ModelRegistry.add`).
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.combining.execplan import ExecutionPlan
from repro.combining.inference import PackedModel
from repro.combining.kernels import DEFAULT_KERNEL
from repro.combining.quantized import QuantizedPackedModel
from repro.combining.serialization import artifact_info, load_plan
from repro.nn import Module
from repro.obs.events import EventLog
from repro.systolic.system import ModelExecutionPlan
from repro.utils.lru import LRUCache

#: Execution backends a registered model can serve under.
SERVING_MODES: tuple[str, ...] = ("exact", "mx", "quantized")

#: Bound on each resident model's systolic accounting-plan cache — its
#: key space (batch size x observed spatial map) is unbounded under
#: varied traffic, and the plans themselves are only accounting.
ACCOUNTING_PLAN_CACHE_SIZE = 32

#: ``((layer name, (rows, cols)), ...)`` — the per-layer shape skeleton
#: a swap target must reproduce.
_LayerSignature = tuple[tuple[str, tuple[int, int]], ...]


def _signature_from_info(info: dict[str, Any]) -> _LayerSignature:
    return tuple((str(layer["name"]),
                  tuple(int(side) for side in layer["original_shape"]))
                 for layer in info["layers"])


def _signature_from_plan(plan: ExecutionPlan) -> _LayerSignature:
    return tuple((op.name, tuple(op.packed.original_shape))
                 for op in plan.packed_ops)


@dataclass
class _Registration:
    """How to obtain a model: an artifact path, or a pinned live object.

    ``load_lock`` serializes loads *of this entry only*: the registry
    lock is never held across a load, so unrelated entries load (and
    serve cache hits) concurrently.  ``fingerprint`` is the artifact's
    content token (probed at registration / swap time, never trusted
    stale); ``generation`` counts cutovers — 1 for the original
    registration, +1 per swap.  ``layer_signature`` pins the per-layer
    shape skeleton a swap target must reproduce.
    """

    name: str
    mode: str
    path: Path | None = None
    architecture: Module | None = None
    resident: "ResidentModel | None" = None
    fingerprint: str | None = None
    generation: int = 1
    layer_signature: _LayerSignature | None = None
    load_lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def reloadable(self) -> bool:
        return self.path is not None


class ResidentModel:
    """A resident serving entry: an immutable plan plus its dispatch mode.

    Accepts an already-compiled :class:`ExecutionPlan` (the artifact load
    path) or a live :class:`PackedModel` / :class:`QuantizedPackedModel`
    (the :meth:`ModelRegistry.add` path), which is compiled once here.
    The source model objects, when given, are kept on :attr:`packed` /
    :attr:`quantized` for callers that want the full accounting API; the
    serving forward itself only ever touches :attr:`plan`.

    Plan execution is stateless, so forwards need no lock: :attr:`lock`
    is kept for callers that want exclusive access to an entry (and for
    source compatibility), but the server no longer holds it around
    forwards.
    """

    def __init__(self, name: str, mode: str,
                 model: PackedModel | QuantizedPackedModel | ExecutionPlan):
        self.name = name
        self.mode = mode
        if isinstance(model, ExecutionPlan):
            self.quantized = None
            self.packed = None
            plan = model
        else:
            self.quantized = (model if isinstance(model, QuantizedPackedModel)
                              else None)
            self.packed = (model.packed if self.quantized is not None
                           else model)
            plan = None
        if mode == "quantized":
            quantized_capable = (plan.bits is not None if plan is not None
                                 else self.quantized is not None)
            if not quantized_capable:
                raise ValueError(
                    f"model {name!r} is registered for quantized serving but "
                    "the artifact holds a float PackedModel")
            if self.quantized is not None and not self.quantized.calibrated:
                raise ValueError(
                    f"model {name!r} is not calibrated; quantized serving "
                    "needs the frozen scales")
        if plan is None:
            if self.packed.model is None:
                raise ValueError(
                    f"model {name!r} has no nn model attached; serving needs a "
                    "forward-capable artifact (save it with model state)")
            source = self.quantized if self.quantized is not None else self.packed
            plan = source.compile_plan()
        #: The immutable execution plan every forward runs through.
        self.plan = plan
        #: Content fingerprint of the artifact this entry was loaded
        #: from (None for live models) and the registration generation
        #: it belongs to — stamped by the registry, bumped per swap.
        self.fingerprint: str | None = None
        self.generation = 1
        #: Optional exclusivity for callers that want it; forwards do not
        #: need it (plan execution never mutates shared state).
        self.lock = threading.Lock()
        self._plans_lock = threading.Lock()
        #: LRU-bounded: the (batch size, spatial map) key space is
        #: unbounded under varied traffic.
        self._plans: LRUCache = LRUCache(ACCOUNTING_PLAN_CACHE_SIZE)
        #: Accounting-plan cache hits / misses (guarded by ``_plans_lock``).
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    def forward(self, batch: np.ndarray,
                kernel: str = DEFAULT_KERNEL) -> np.ndarray:
        """The serving forward: batch-invariant, accounting-free.

        Thread-safe without any lock — the plan is immutable.
        Batch-invariant execution is what makes dynamic batching
        bit-transparent — see
        :meth:`repro.combining.execplan.ExecutionPlan.forward`; ``kernel``
        picks the batch-invariant implementation
        (:mod:`repro.combining.kernels`).
        """
        return self.forward_traced(batch, kernel=kernel)[0]

    def forward_traced(self, batch: np.ndarray, kernel: str = DEFAULT_KERNEL,
                       profile: dict[str, int] | None = None
                       ) -> tuple[np.ndarray, dict[str, tuple[int, int]]]:
        """Forward plus the observed per-layer spatial map.

        The map is what :meth:`batch_plan` needs to cost the batch on the
        systolic timing model; returning it per call (instead of stashing
        it on shared module state like the legacy mutating path did) is
        what lets concurrent forwards on one resident model coexist.
        ``profile`` is handed to :meth:`ExecutionPlan.forward` — pass a
        dict to collect per-layer wall time in integer nanoseconds
        (wrapping only; the outputs stay bit-identical).
        """
        observed: dict[str, tuple[int, int]] = {}
        outputs = self.plan.forward(batch, mode=self.mode,
                                    batch_invariant=True, observed=observed,
                                    kernel=kernel, profile=profile)
        return outputs, observed

    def batch_plan(self, num_samples: int,
                   observed: dict[str, tuple[int, int]] | None = None
                   ) -> ModelExecutionPlan:
        """The systolic execution plan for a batch this model just ran.

        ``observed`` is the spatial map returned by
        :meth:`forward_traced`; plans are cached per (batch size,
        observed spatial shapes) — the plan walks the timing model, which
        would otherwise cost more than a small forward, and spatially
        flexible models (global-pool classifiers) legitimately serve
        requests of different map sizes.
        """
        return self.batch_plan_traced(num_samples, observed)[0]

    def batch_plan_traced(self, num_samples: int,
                          observed: dict[str, tuple[int, int]] | None = None
                          ) -> tuple[ModelExecutionPlan, bool]:
        """:meth:`batch_plan` plus whether the plan came from the cache.

        The hit flag (also accumulated on :attr:`plan_cache_hits` /
        :attr:`plan_cache_misses`) is what the server's per-backend stats
        surface — per-process caches in the process backend each pay
        their own misses, and these counters make that duplication
        visible.
        """
        if observed is None:
            raise ValueError(
                "batch_plan needs the observed spatial map; run "
                "forward_traced(batch) and pass its second return value")
        key = (num_samples, tuple(sorted(observed.items())))
        with self._plans_lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.plan_cache_hits += 1
                return plan, True
        plan = self.plan.execution_plan(observed=observed,
                                        batch=num_samples)
        with self._plans_lock:
            self.plan_cache_misses += 1
            plan = self._plans.setdefault(key, plan)
        return plan, False

    @property
    def accounting_cache_size(self) -> int:
        """How many accounting plans are cached right now (bounded)."""
        with self._plans_lock:
            return len(self._plans)


class ModelRegistry:
    """Thread-safe name -> execution plan mapping with bounded residency.

    ``mmap`` is handed to :func:`load_plan` on every artifact load; the
    default ``"auto"`` memory-maps V2 uncompressed artifacts (so N
    registries / processes share one resident copy through the page
    cache) and silently falls back to a regular load for compressed or
    V1 artifacts.
    """

    def __init__(self, max_resident: int = 2, mmap: bool | str = "auto",
                 events: EventLog | None = None):
        if max_resident < 1:
            raise ValueError("max_resident must be >= 1")
        self.max_resident = max_resident
        self.mmap = mmap
        self._lock = threading.RLock()
        self._registrations: dict[str, _Registration] = {}
        #: LRU order over resident *reloadable* entries (pinned live
        #: models are tracked on their registration instead).
        self._resident: OrderedDict[str, ResidentModel] = OrderedDict()
        self.loads = 0
        self.hits = 0
        self.evictions = 0
        self.swaps = 0
        self.load_seconds = 0.0
        #: Lifecycle stream: ``model_load`` / ``model_evict`` /
        #: ``model_swap`` / ``load_failure`` records with fingerprints
        #: and generations — the inspectable counterpart of the bare
        #: counters above.  An :class:`InferenceServer` built over this
        #: registry joins the same log by default.
        self.event_log: EventLog = (events if events is not None
                                    else EventLog())

    def _evict_over_limit_locked(self) -> None:
        """Evict LRU entries over the bound; caller holds ``_lock``."""
        while len(self._resident) > self.max_resident:
            evicted_name, _ = self._resident.popitem(last=False)
            self.evictions += 1
            self.event_log.emit("model_evict", model=evicted_name,
                                resident=len(self._resident),
                                max_resident=self.max_resident)

    # -- registration --------------------------------------------------------
    def register(self, name: str, path: str | Path, mode: str = "exact",
                 architecture: Module | None = None) -> None:
        """Register a packed artifact under ``name`` (loaded lazily).

        ``mode`` picks the serving backend; ``architecture`` optionally
        supplies the nn model for artifacts saved without a
        ``model_spec`` (it is handed to
        :func:`~repro.combining.serialization.load_plan` on every load,
        so an evicted-and-reloaded model reuses the same object).

        Registration probes the artifact's metadata (cheap — no arrays
        are loaded) to pin its content fingerprint and per-layer shape
        signature: the fingerprint is what keys the process backend's
        worker caches, and the signature is what a later
        :meth:`swap` target must reproduce.
        """
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"packed artifact {path} does not exist")
        info = artifact_info(path)
        with self._lock:
            self._check_registration(name, mode)
            self._registrations[name] = _Registration(
                name=name, mode=mode, path=path, architecture=architecture,
                fingerprint=str(info["fingerprint"]),
                layer_signature=_signature_from_info(info))

    def add(self, name: str,
            model: PackedModel | QuantizedPackedModel | ExecutionPlan,
            mode: str | None = None) -> None:
        """Register an already-built model (pinned: it cannot be reloaded,
        so it is never evicted and does not count against ``max_resident``).

        Accepts a live model (compiled to a plan here) or an
        :class:`ExecutionPlan` directly.  ``mode`` defaults to
        ``"quantized"`` when the model carries frozen scales and
        ``"exact"`` otherwise.
        """
        if mode is None:
            quantized = (model.bits is not None
                         if isinstance(model, ExecutionPlan)
                         else isinstance(model, QuantizedPackedModel))
            mode = "quantized" if quantized else "exact"
        resident = ResidentModel(name, mode, model)
        with self._lock:
            self._check_registration(name, mode)
            self._registrations[name] = _Registration(
                name=name, mode=mode, resident=resident,
                layer_signature=_signature_from_plan(resident.plan))

    def _check_registration(self, name: str, mode: str) -> None:
        """Validate under the caller's lock hold (check + insert are atomic)."""
        if mode not in SERVING_MODES:
            raise ValueError(f"unknown serving mode {mode!r}; "
                             f"expected one of {SERVING_MODES}")
        if name in self._registrations:
            raise ValueError(f"model {name!r} is already registered")

    # -- lookup --------------------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._registrations)

    def resident_names(self) -> list[str]:
        """Currently loaded models (pinned ones included), unordered."""
        with self._lock:
            pinned = [registration.name
                      for registration in self._registrations.values()
                      if registration.resident is not None]
            return sorted(pinned + list(self._resident))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._registrations

    def registration_info(self, name: str
                          ) -> tuple[Path | None, str, str | None]:
        """``(artifact path, serving mode, content fingerprint)`` for a name.

        Pinned live models have no path (and no fingerprint).  The
        process serving backend uses this to ship
        (path, mode, fingerprint) — instead of a loaded model — to its
        workers, which map the artifact themselves and key their plan
        caches by ``(path, fingerprint)``; after a :meth:`swap`, the new
        fingerprint is what forces every warm worker onto the new
        artifact.
        """
        with self._lock:
            registration = self._registrations.get(name)
            if registration is None:
                raise KeyError(
                    f"unknown model {name!r}; registered models: "
                    f"{self.names()}")
            return (registration.path, registration.mode,
                    registration.fingerprint)

    def get(self, name: str) -> ResidentModel:
        """The resident model for ``name``, loading (and evicting) as needed.

        The registry lock is held only for residency bookkeeping; the
        artifact load itself runs under the entry's own ``load_lock``,
        so concurrent ``get`` calls for one name load its artifact
        exactly once while gets of *other* names (hits or loads)
        proceed unblocked.
        """
        with self._lock:
            registration = self._registrations.get(name)
            if registration is None:
                raise KeyError(
                    f"unknown model {name!r}; registered models: "
                    f"{self.names()}")
            if registration.resident is not None:  # pinned live model
                self.hits += 1
                return registration.resident
            resident = self._resident.get(name)
            if resident is not None:
                self.hits += 1
                self._resident.move_to_end(name)
                return resident
        with registration.load_lock:
            # Double-check: another thread may have finished this load —
            # or a swap_live may have pinned a fresh entry — while we
            # waited on the entry lock.
            with self._lock:
                if registration.resident is not None:
                    self.hits += 1
                    return registration.resident
                resident = self._resident.get(name)
                if resident is not None:
                    self.hits += 1
                    self._resident.move_to_end(name)
                    return resident
                # Snapshot under the lock: stable for the duration of
                # the load (swaps also serialize on load_lock).
                path, architecture = registration.path, registration.architecture
                mode, fingerprint = registration.mode, registration.fingerprint
                generation = registration.generation
            started = time.monotonic()
            try:
                loaded = load_plan(path, model=architecture, mmap=self.mmap)
            except Exception as error:
                self.event_log.emit("load_failure", model=name,
                                    path=str(path),
                                    error=f"{type(error).__name__}: {error}")
                raise
            elapsed = time.monotonic() - started
            resident = ResidentModel(name, mode, loaded)
            resident.fingerprint = fingerprint
            resident.generation = generation
            with self._lock:
                self.loads += 1
                self.load_seconds += elapsed
                self._resident[name] = resident
                self._evict_over_limit_locked()
            self.event_log.emit("model_load", model=name, mode=mode,
                                fingerprint=fingerprint,
                                generation=generation,
                                load_seconds=elapsed)
            return resident

    # -- live redeploy (hot swap) --------------------------------------------
    def _registration_for_swap(self, name: str) -> _Registration:
        with self._lock:
            registration = self._registrations.get(name)
            if registration is None:
                raise KeyError(
                    f"unknown model {name!r}; registered models: "
                    f"{self.names()}")
            return registration

    @staticmethod
    def _check_swap_compatible(registration: _Registration,
                               kind: str, signature: _LayerSignature,
                               target: str) -> None:
        """Refuse cutovers the live traffic could not survive.

        Must hold *before* the resident entry flips: a quantized-mode
        entry needs frozen scales, and the per-layer shape skeleton must
        match the registration's — in-flight clients keep sending the
        shapes the old model accepted.
        """
        if registration.mode == "quantized" and kind != "quantized":
            raise ValueError(
                f"cannot swap model {registration.name!r}: it serves in "
                f"quantized mode but {target} holds a float packed model "
                "(no frozen calibration scales)")
        expected = registration.layer_signature
        if expected is not None and signature != expected:
            raise ValueError(
                f"cannot swap model {registration.name!r}: {target} has a "
                f"different packed-layer architecture ({len(signature)} "
                f"layers {[name for name, _ in signature]} vs the "
                f"registered {len(expected)} layers "
                f"{[name for name, _ in expected]} / shapes) — swap targets "
                "must repackage the same architecture")

    def _install_swapped(self, registration: _Registration,
                         resident: ResidentModel, *, path: Path | None,
                         fingerprint: str | None,
                         architecture: Module | None,
                         signature: _LayerSignature,
                         load_seconds: float) -> dict[str, Any]:
        """Atomically cut the entry over (caller holds ``load_lock``)."""
        with self._lock:
            previous_fingerprint = registration.fingerprint
            registration.generation += 1
            registration.path = path
            registration.fingerprint = fingerprint
            registration.architecture = architecture
            registration.layer_signature = signature
            resident.generation = registration.generation
            resident.fingerprint = fingerprint
            if path is None:
                # Live model: pinned, never evicted, leaves the LRU.
                registration.resident = resident
                self._resident.pop(name := registration.name, None)
            else:
                registration.resident = None
                self._resident[name := registration.name] = resident
                self._resident.move_to_end(name)
                self._evict_over_limit_locked()
            self.swaps += 1
            self.load_seconds += load_seconds
            result = {
                "name": name,
                "generation": registration.generation,
                "fingerprint": fingerprint,
                "previous_fingerprint": previous_fingerprint,
                "load_seconds": load_seconds,
            }
        self.event_log.emit("model_swap", model=result["name"],
                            generation=result["generation"],
                            fingerprint=result["fingerprint"],
                            previous_fingerprint=result["previous_fingerprint"],
                            load_seconds=result["load_seconds"],
                            live=path is None)
        return result

    def swap(self, name: str, path: str | Path,
             architecture: Module | None = None) -> dict[str, Any]:
        """Cut a registered name over to an updated artifact, under traffic.

        The new artifact is probed (:func:`artifact_info`: content
        fingerprint plus serving-mode / layer-architecture compatibility)
        and loaded **off to the side** under the entry's ``load_lock`` —
        the old resident keeps serving every in-flight and queued forward
        throughout, and nothing blocks requests (plans are immutable, so
        no drain is needed).  Only when the new plan is fully resident
        does the entry atomically flip: the next ``get()`` (and, via the
        re-probed fingerprint, the next process-backend batch) serves the
        new artifact.  Works on artifact-backed *and* pinned live
        entries (the entry becomes artifact-backed).  Returns the new
        ``{"generation", "fingerprint", "previous_fingerprint",
        "load_seconds", "name"}``.

        ``architecture`` replaces the registration's architecture module
        for this and future loads (defaults to keeping the current one).
        Incompatible targets (wrong serving kind, different packed-layer
        skeleton) raise ``ValueError`` before anything flips, so a failed
        swap never degrades the live entry.
        """
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"packed artifact {path} does not exist")
        registration = self._registration_for_swap(name)
        with registration.load_lock:
            info = artifact_info(path)
            fingerprint = str(info["fingerprint"])
            signature = _signature_from_info(info)
            self._check_swap_compatible(registration, str(info["kind"]),
                                        signature, str(path))
            if architecture is None:
                architecture = registration.architecture
            started = time.monotonic()
            try:
                loaded = load_plan(path, model=architecture, mmap=self.mmap)
            except Exception as error:
                self.event_log.emit("load_failure", model=name,
                                    path=str(path),
                                    error=f"{type(error).__name__}: {error}")
                raise
            elapsed = time.monotonic() - started
            resident = ResidentModel(name, registration.mode, loaded)
            return self._install_swapped(
                registration, resident, path=path, fingerprint=fingerprint,
                architecture=architecture, signature=signature,
                load_seconds=elapsed)

    def swap_live(self, name: str,
                  model: PackedModel | QuantizedPackedModel | ExecutionPlan
                  ) -> dict[str, Any]:
        """:meth:`swap`, but the replacement is an already-built model.

        The model is compiled to a plan off to the side (old resident
        keeps serving), checked against the entry's serving mode and
        layer signature, then atomically installed as a **pinned** live
        entry — exactly what :meth:`add` would have registered, so the
        process backend can no longer serve this name afterwards (live
        models have no artifact to ship).
        """
        registration = self._registration_for_swap(name)
        with registration.load_lock:
            started = time.monotonic()
            resident = ResidentModel(name, registration.mode, model)
            elapsed = time.monotonic() - started
            signature = _signature_from_plan(resident.plan)
            kind = "quantized" if resident.plan.bits is not None else "packed"
            self._check_swap_compatible(registration, kind, signature,
                                        f"the live {type(model).__name__}")
            return self._install_swapped(
                registration, resident, path=None, fingerprint=None,
                architecture=None, signature=signature,
                load_seconds=elapsed)

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "registered": len(self._registrations),
                "resident": len(self.resident_names()),
                "loads": self.loads,
                "hits": self.hits,
                "evictions": self.evictions,
                "swaps": self.swaps,
                "load_seconds": self.load_seconds,
                "generations": {name: registration.generation
                                for name, registration
                                in sorted(self._registrations.items())},
            }
