"""Named packed artifacts with lazy loading and LRU-bounded residency.

A serving node typically advertises more models than it wants resident in
memory at once: artifacts are cheap on disk (the whole point of
:mod:`repro.combining.serialization`), loaded models are not.
:class:`ModelRegistry` maps names to registered artifacts, loads them on
first request (:meth:`ModelRegistry.get`), and keeps at most
``max_resident`` loaded at a time, evicting the least recently used
reloadable entry when the bound is exceeded.  Models registered directly
as live objects (:meth:`ModelRegistry.add`) cannot be reloaded from
anywhere, so they are pinned and never count against the bound.

Each resident entry carries the serving-mode dispatch
(:data:`SERVING_MODES`: ``"exact"``, ``"mx"``, or ``"quantized"``) and a
per-model lock: packed forwards install/restore state on the shared
module graph, so at most one forward may run per resident model at a
time.  Workers therefore parallelize across *models*, not within one —
the registry is the unit of concurrency, matching how one array serves
one resident network in the paper's deployment.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.combining.inference import PackedModel
from repro.combining.quantized import QuantizedPackedModel
from repro.combining.serialization import load_packed
from repro.nn import Module
from repro.systolic.system import ModelExecutionPlan

#: Execution backends a registered model can serve under.
SERVING_MODES: tuple[str, ...] = ("exact", "mx", "quantized")

_FORWARD_LOCK_GUARD = threading.Lock()


def _forward_lock(model: Module) -> threading.Lock:
    """One lock per underlying nn model, shared by every resident wrapping it.

    Packed forwards install and restore state on the module graph itself,
    so the unit of mutual exclusion is the nn *model*, not the resident
    entry: two registry entries serving the same model object (e.g. an
    exact and an mx view of one loaded artifact) must never forward
    concurrently.  The lock lives on the model instance so all wrappers
    find the same one.
    """
    with _FORWARD_LOCK_GUARD:
        lock = getattr(model, "_serving_forward_lock", None)
        if lock is None:
            lock = threading.Lock()
            model._serving_forward_lock = lock
        return lock


@dataclass
class _Registration:
    """How to obtain a model: an artifact path, or a pinned live object."""

    name: str
    mode: str
    path: Path | None = None
    architecture: Module | None = None
    resident: "ResidentModel | None" = None

    @property
    def reloadable(self) -> bool:
        return self.path is not None


class ResidentModel:
    """A loaded model plus its serving dispatch, lock, and plan cache."""

    def __init__(self, name: str, mode: str,
                 model: PackedModel | QuantizedPackedModel):
        self.name = name
        self.mode = mode
        self.quantized = model if isinstance(model, QuantizedPackedModel) else None
        self.packed = model.packed if self.quantized is not None else model
        if mode == "quantized":
            if self.quantized is None:
                raise ValueError(
                    f"model {name!r} is registered for quantized serving but "
                    "the artifact holds a float PackedModel")
            if not self.quantized.calibrated:
                raise ValueError(
                    f"model {name!r} is not calibrated; quantized serving "
                    "needs the frozen scales")
        if self.packed.model is None:
            raise ValueError(
                f"model {name!r} has no nn model attached; serving needs a "
                "forward-capable artifact (save it with model state)")
        #: serialize forwards: packed execution mutates shared module
        #: state, so the lock is per underlying nn model (shared with any
        #: other resident wrapping the same model object).
        self.lock = _forward_lock(self.packed.model)
        self._plans: dict[tuple, ModelExecutionPlan] = {}

    def forward(self, batch: np.ndarray) -> np.ndarray:
        """The serving forward: batch-invariant, accounting-free.

        Caller must hold :attr:`lock`.  Batch-invariant execution is what
        makes dynamic batching bit-transparent — see
        :meth:`repro.combining.inference.PackedModel.forward`.
        """
        if self.mode == "quantized":
            assert self.quantized is not None
            return self.quantized.forward(batch, track_errors=False,
                                          batch_invariant=True)
        return self.packed.forward(batch, mode=self.mode, batch_invariant=True)

    def batch_plan(self, num_samples: int) -> ModelExecutionPlan:
        """The systolic execution plan for the batch the model just ran.

        Uses the spatial sizes observed by the preceding forward (so it
        must run right after one, under the same :attr:`lock` hold) and
        caches per (batch size, observed spatial shapes) — the plan walks
        the timing model, which would otherwise cost more than a small
        forward, and spatially flexible models (global-pool classifiers)
        legitimately serve requests of different map sizes.
        """
        spatial = tuple(sorted(self.packed.observed_spatial_map().items()))
        key = (num_samples, spatial)
        plan = self._plans.get(key)
        if plan is None:
            source = self.quantized if self.quantized is not None else self.packed
            plan = source.plan(batch=num_samples)
            self._plans[key] = plan
        return plan


class ModelRegistry:
    """Thread-safe name -> packed model mapping with bounded residency."""

    def __init__(self, max_resident: int = 2):
        if max_resident < 1:
            raise ValueError("max_resident must be >= 1")
        self.max_resident = max_resident
        self._lock = threading.RLock()
        self._registrations: dict[str, _Registration] = {}
        #: LRU order over resident *reloadable* entries (pinned live
        #: models are tracked on their registration instead).
        self._resident: OrderedDict[str, ResidentModel] = OrderedDict()
        self.loads = 0
        self.hits = 0
        self.evictions = 0
        self.load_seconds = 0.0

    # -- registration --------------------------------------------------------
    def register(self, name: str, path: str | Path, mode: str = "exact",
                 architecture: Module | None = None) -> None:
        """Register a packed artifact under ``name`` (loaded lazily).

        ``mode`` picks the serving backend; ``architecture`` optionally
        supplies the nn model for artifacts saved without a
        ``model_spec`` (it is handed to
        :func:`~repro.combining.serialization.load_packed` on every load,
        so an evicted-and-reloaded model reuses the same object).
        """
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"packed artifact {path} does not exist")
        with self._lock:
            self._check_registration(name, mode)
            self._registrations[name] = _Registration(
                name=name, mode=mode, path=path, architecture=architecture)

    def add(self, name: str,
            model: PackedModel | QuantizedPackedModel,
            mode: str | None = None) -> None:
        """Register an already-built model (pinned: it cannot be reloaded,
        so it is never evicted and does not count against ``max_resident``).

        ``mode`` defaults to ``"quantized"`` for a
        :class:`QuantizedPackedModel` and ``"exact"`` otherwise.
        """
        if mode is None:
            mode = ("quantized" if isinstance(model, QuantizedPackedModel)
                    else "exact")
        resident = ResidentModel(name, mode, model)
        with self._lock:
            self._check_registration(name, mode)
            self._registrations[name] = _Registration(
                name=name, mode=mode, resident=resident)

    def _check_registration(self, name: str, mode: str) -> None:
        """Validate under the caller's lock hold (check + insert are atomic)."""
        if mode not in SERVING_MODES:
            raise ValueError(f"unknown serving mode {mode!r}; "
                             f"expected one of {SERVING_MODES}")
        if name in self._registrations:
            raise ValueError(f"model {name!r} is already registered")

    # -- lookup --------------------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._registrations)

    def resident_names(self) -> list[str]:
        """Currently loaded models (pinned ones included), unordered."""
        with self._lock:
            pinned = [registration.name
                      for registration in self._registrations.values()
                      if registration.resident is not None]
            return sorted(pinned + list(self._resident))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._registrations

    def get(self, name: str) -> ResidentModel:
        """The resident model for ``name``, loading (and evicting) as needed.

        Loading happens under the registry lock, so concurrent ``get``
        calls never load the same artifact twice; with artifacts being
        single-file npz loads this brief serialization is the simplest
        correct policy.
        """
        with self._lock:
            registration = self._registrations.get(name)
            if registration is None:
                raise KeyError(
                    f"unknown model {name!r}; registered models: "
                    f"{self.names()}")
            if registration.resident is not None:  # pinned live model
                self.hits += 1
                return registration.resident
            resident = self._resident.get(name)
            if resident is not None:
                self.hits += 1
                self._resident.move_to_end(name)
                return resident
            started = time.monotonic()
            loaded = load_packed(registration.path,
                                 model=registration.architecture)
            self.load_seconds += time.monotonic() - started
            self.loads += 1
            resident = ResidentModel(name, registration.mode, loaded)
            self._resident[name] = resident
            while len(self._resident) > self.max_resident:
                evicted_name, _ = self._resident.popitem(last=False)
                self.evictions += 1
            return resident

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "registered": len(self._registrations),
                "resident": len(self.resident_names()),
                "loads": self.loads,
                "hits": self.hits,
                "evictions": self.evictions,
                "load_seconds": self.load_seconds,
            }
