"""Named packed artifacts with lazy loading and LRU-bounded residency.

A serving node typically advertises more models than it wants resident in
memory at once: artifacts are cheap on disk (the whole point of
:mod:`repro.combining.serialization`), loaded models are not.
:class:`ModelRegistry` maps names to registered artifacts, loads them on
first request (:meth:`ModelRegistry.get`), and keeps at most
``max_resident`` loaded at a time, evicting the least recently used
reloadable entry when the bound is exceeded.  Models registered directly
as live objects (:meth:`ModelRegistry.add`) cannot be reloaded from
anywhere, so they are pinned and never count against the bound.

What the registry keeps resident is an immutable
:class:`~repro.combining.execplan.ExecutionPlan`, not an nn module graph.
Plans never mutate shared state during a forward, so any number of worker
threads may run the *same* resident model concurrently — there is no
per-model forward lock anymore, and the registry is no longer the unit of
serving concurrency.  Artifact-backed entries load through
:func:`~repro.combining.serialization.load_plan` (``mmap="auto"``), so a
V2 uncompressed artifact comes up as read-only views of the page cache
without ever reconstructing the nn model.

Loads are guarded by **per-entry** locks: concurrent ``get`` calls for
one name still load its artifact exactly once, but a slow load of one
model never serializes loads (or cache hits) of unrelated models behind
a registry-wide lock.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.combining.execplan import ExecutionPlan
from repro.combining.inference import PackedModel
from repro.combining.kernels import DEFAULT_KERNEL
from repro.combining.quantized import QuantizedPackedModel
from repro.combining.serialization import load_plan
from repro.nn import Module
from repro.systolic.system import ModelExecutionPlan

#: Execution backends a registered model can serve under.
SERVING_MODES: tuple[str, ...] = ("exact", "mx", "quantized")


@dataclass
class _Registration:
    """How to obtain a model: an artifact path, or a pinned live object.

    ``load_lock`` serializes loads *of this entry only*: the registry
    lock is never held across a load, so unrelated entries load (and
    serve cache hits) concurrently.
    """

    name: str
    mode: str
    path: Path | None = None
    architecture: Module | None = None
    resident: "ResidentModel | None" = None
    load_lock: threading.Lock = field(default_factory=threading.Lock)

    @property
    def reloadable(self) -> bool:
        return self.path is not None


class ResidentModel:
    """A resident serving entry: an immutable plan plus its dispatch mode.

    Accepts an already-compiled :class:`ExecutionPlan` (the artifact load
    path) or a live :class:`PackedModel` / :class:`QuantizedPackedModel`
    (the :meth:`ModelRegistry.add` path), which is compiled once here.
    The source model objects, when given, are kept on :attr:`packed` /
    :attr:`quantized` for callers that want the full accounting API; the
    serving forward itself only ever touches :attr:`plan`.

    Plan execution is stateless, so forwards need no lock: :attr:`lock`
    is kept for callers that want exclusive access to an entry (and for
    source compatibility), but the server no longer holds it around
    forwards.
    """

    def __init__(self, name: str, mode: str,
                 model: PackedModel | QuantizedPackedModel | ExecutionPlan):
        self.name = name
        self.mode = mode
        if isinstance(model, ExecutionPlan):
            self.quantized = None
            self.packed = None
            plan = model
        else:
            self.quantized = (model if isinstance(model, QuantizedPackedModel)
                              else None)
            self.packed = (model.packed if self.quantized is not None
                           else model)
            plan = None
        if mode == "quantized":
            quantized_capable = (plan.bits is not None if plan is not None
                                 else self.quantized is not None)
            if not quantized_capable:
                raise ValueError(
                    f"model {name!r} is registered for quantized serving but "
                    "the artifact holds a float PackedModel")
            if self.quantized is not None and not self.quantized.calibrated:
                raise ValueError(
                    f"model {name!r} is not calibrated; quantized serving "
                    "needs the frozen scales")
        if plan is None:
            if self.packed.model is None:
                raise ValueError(
                    f"model {name!r} has no nn model attached; serving needs a "
                    "forward-capable artifact (save it with model state)")
            source = self.quantized if self.quantized is not None else self.packed
            plan = source.compile_plan()
        #: The immutable execution plan every forward runs through.
        self.plan = plan
        #: Optional exclusivity for callers that want it; forwards do not
        #: need it (plan execution never mutates shared state).
        self.lock = threading.Lock()
        self._plans_lock = threading.Lock()
        self._plans: dict[tuple, ModelExecutionPlan] = {}
        #: Accounting-plan cache hits / misses (guarded by ``_plans_lock``).
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0

    def forward(self, batch: np.ndarray,
                kernel: str = DEFAULT_KERNEL) -> np.ndarray:
        """The serving forward: batch-invariant, accounting-free.

        Thread-safe without any lock — the plan is immutable.
        Batch-invariant execution is what makes dynamic batching
        bit-transparent — see
        :meth:`repro.combining.execplan.ExecutionPlan.forward`; ``kernel``
        picks the batch-invariant implementation
        (:mod:`repro.combining.kernels`).
        """
        return self.forward_traced(batch, kernel=kernel)[0]

    def forward_traced(self, batch: np.ndarray, kernel: str = DEFAULT_KERNEL
                       ) -> tuple[np.ndarray, dict[str, tuple[int, int]]]:
        """Forward plus the observed per-layer spatial map.

        The map is what :meth:`batch_plan` needs to cost the batch on the
        systolic timing model; returning it per call (instead of stashing
        it on shared module state like the legacy mutating path did) is
        what lets concurrent forwards on one resident model coexist.
        """
        observed: dict[str, tuple[int, int]] = {}
        outputs = self.plan.forward(batch, mode=self.mode,
                                    batch_invariant=True, observed=observed,
                                    kernel=kernel)
        return outputs, observed

    def batch_plan(self, num_samples: int,
                   observed: dict[str, tuple[int, int]] | None = None
                   ) -> ModelExecutionPlan:
        """The systolic execution plan for a batch this model just ran.

        ``observed`` is the spatial map returned by
        :meth:`forward_traced`; plans are cached per (batch size,
        observed spatial shapes) — the plan walks the timing model, which
        would otherwise cost more than a small forward, and spatially
        flexible models (global-pool classifiers) legitimately serve
        requests of different map sizes.
        """
        return self.batch_plan_traced(num_samples, observed)[0]

    def batch_plan_traced(self, num_samples: int,
                          observed: dict[str, tuple[int, int]] | None = None
                          ) -> tuple[ModelExecutionPlan, bool]:
        """:meth:`batch_plan` plus whether the plan came from the cache.

        The hit flag (also accumulated on :attr:`plan_cache_hits` /
        :attr:`plan_cache_misses`) is what the server's per-backend stats
        surface — per-process caches in the process backend each pay
        their own misses, and these counters make that duplication
        visible.
        """
        if observed is None:
            raise ValueError(
                "batch_plan needs the observed spatial map; run "
                "forward_traced(batch) and pass its second return value")
        key = (num_samples, tuple(sorted(observed.items())))
        with self._plans_lock:
            plan = self._plans.get(key)
            if plan is not None:
                self.plan_cache_hits += 1
                return plan, True
        plan = self.plan.execution_plan(observed=observed,
                                        batch=num_samples)
        with self._plans_lock:
            self.plan_cache_misses += 1
            plan = self._plans.setdefault(key, plan)
        return plan, False


class ModelRegistry:
    """Thread-safe name -> execution plan mapping with bounded residency.

    ``mmap`` is handed to :func:`load_plan` on every artifact load; the
    default ``"auto"`` memory-maps V2 uncompressed artifacts (so N
    registries / processes share one resident copy through the page
    cache) and silently falls back to a regular load for compressed or
    V1 artifacts.
    """

    def __init__(self, max_resident: int = 2, mmap: bool | str = "auto"):
        if max_resident < 1:
            raise ValueError("max_resident must be >= 1")
        self.max_resident = max_resident
        self.mmap = mmap
        self._lock = threading.RLock()
        self._registrations: dict[str, _Registration] = {}
        #: LRU order over resident *reloadable* entries (pinned live
        #: models are tracked on their registration instead).
        self._resident: OrderedDict[str, ResidentModel] = OrderedDict()
        self.loads = 0
        self.hits = 0
        self.evictions = 0
        self.load_seconds = 0.0

    # -- registration --------------------------------------------------------
    def register(self, name: str, path: str | Path, mode: str = "exact",
                 architecture: Module | None = None) -> None:
        """Register a packed artifact under ``name`` (loaded lazily).

        ``mode`` picks the serving backend; ``architecture`` optionally
        supplies the nn model for artifacts saved without a
        ``model_spec`` (it is handed to
        :func:`~repro.combining.serialization.load_plan` on every load,
        so an evicted-and-reloaded model reuses the same object).
        """
        path = Path(path)
        if not path.exists():
            raise FileNotFoundError(f"packed artifact {path} does not exist")
        with self._lock:
            self._check_registration(name, mode)
            self._registrations[name] = _Registration(
                name=name, mode=mode, path=path, architecture=architecture)

    def add(self, name: str,
            model: PackedModel | QuantizedPackedModel | ExecutionPlan,
            mode: str | None = None) -> None:
        """Register an already-built model (pinned: it cannot be reloaded,
        so it is never evicted and does not count against ``max_resident``).

        Accepts a live model (compiled to a plan here) or an
        :class:`ExecutionPlan` directly.  ``mode`` defaults to
        ``"quantized"`` when the model carries frozen scales and
        ``"exact"`` otherwise.
        """
        if mode is None:
            quantized = (model.bits is not None
                         if isinstance(model, ExecutionPlan)
                         else isinstance(model, QuantizedPackedModel))
            mode = "quantized" if quantized else "exact"
        resident = ResidentModel(name, mode, model)
        with self._lock:
            self._check_registration(name, mode)
            self._registrations[name] = _Registration(
                name=name, mode=mode, resident=resident)

    def _check_registration(self, name: str, mode: str) -> None:
        """Validate under the caller's lock hold (check + insert are atomic)."""
        if mode not in SERVING_MODES:
            raise ValueError(f"unknown serving mode {mode!r}; "
                             f"expected one of {SERVING_MODES}")
        if name in self._registrations:
            raise ValueError(f"model {name!r} is already registered")

    # -- lookup --------------------------------------------------------------
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._registrations)

    def resident_names(self) -> list[str]:
        """Currently loaded models (pinned ones included), unordered."""
        with self._lock:
            pinned = [registration.name
                      for registration in self._registrations.values()
                      if registration.resident is not None]
            return sorted(pinned + list(self._resident))

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._registrations

    def registration_info(self, name: str) -> tuple[Path | None, str]:
        """``(artifact path, serving mode)`` for a registered name.

        Pinned live models have no path.  The process serving backend
        uses this to ship (path, mode) — instead of a loaded model — to
        its workers, which map the artifact themselves.
        """
        with self._lock:
            registration = self._registrations.get(name)
            if registration is None:
                raise KeyError(
                    f"unknown model {name!r}; registered models: "
                    f"{self.names()}")
            return registration.path, registration.mode

    def get(self, name: str) -> ResidentModel:
        """The resident model for ``name``, loading (and evicting) as needed.

        The registry lock is held only for residency bookkeeping; the
        artifact load itself runs under the entry's own ``load_lock``,
        so concurrent ``get`` calls for one name load its artifact
        exactly once while gets of *other* names (hits or loads)
        proceed unblocked.
        """
        with self._lock:
            registration = self._registrations.get(name)
            if registration is None:
                raise KeyError(
                    f"unknown model {name!r}; registered models: "
                    f"{self.names()}")
            if registration.resident is not None:  # pinned live model
                self.hits += 1
                return registration.resident
            resident = self._resident.get(name)
            if resident is not None:
                self.hits += 1
                self._resident.move_to_end(name)
                return resident
        with registration.load_lock:
            # Double-check: another thread may have finished this load
            # while we waited on the entry lock.
            with self._lock:
                resident = self._resident.get(name)
                if resident is not None:
                    self.hits += 1
                    self._resident.move_to_end(name)
                    return resident
            started = time.monotonic()
            loaded = load_plan(registration.path,
                               model=registration.architecture,
                               mmap=self.mmap)
            elapsed = time.monotonic() - started
            resident = ResidentModel(name, registration.mode, loaded)
            with self._lock:
                self.loads += 1
                self.load_seconds += elapsed
                self._resident[name] = resident
                while len(self._resident) > self.max_resident:
                    self._resident.popitem(last=False)
                    self.evictions += 1
            return resident

    def stats(self) -> dict[str, Any]:
        with self._lock:
            return {
                "registered": len(self._registrations),
                "resident": len(self.resident_names()),
                "loads": self.loads,
                "hits": self.hits,
                "evictions": self.evictions,
                "load_seconds": self.load_seconds,
            }
