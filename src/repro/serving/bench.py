"""Serving benchmarks: batching throughput, artifact cold-start, backends.

Three measurements justify the serving subsystem, and this module is
their single implementation (used by the ``repro serve-bench`` CLI and
asserted by ``benchmarks/test_bench_serving.py``):

* **Dynamic batching vs one-request-at-a-time** — the same stream of
  single-sample requests is served twice, once with ``max_batch=1``
  (every request is its own forward) and once with the real ``max_batch``;
  the per-forward fixed cost amortizes across the coalesced batch, so
  batched throughput wins while every response stays bit-identical to
  the direct forward (checked here, too).
* **Artifact load vs re-packing** — cold-starting a server by
  :func:`~repro.combining.serialization.load_packed` versus re-running
  the :class:`~repro.combining.pipeline.PackingPipeline` on the same
  weights.
* **Process vs thread backend scaling** — the same stream served under
  ``backend="thread"`` and ``backend="process"`` at increasing worker
  counts.  Thread workers contend on the GIL for the Python-loop parts
  of plan execution; process workers each mmap the artifact and run
  fully parallel, so CPU-bound models scale with workers.  Responses
  must stay bit-identical across every (backend, workers) cell — the
  invariant the plan refactor bought.

:func:`hot_swap_benchmark` measures live redeploy: clients keep
submitting while :meth:`~repro.serving.registry.ModelRegistry.swap`
repeatedly cuts the model over between two artifacts, and every response
must be bit-identical to one of the two artifacts' direct forwards —
zero dropped requests, zero ambiguous bits — while the swap wall time
(probe + side-load + atomic flip) is reported per cutover.

A fourth measurement justifies the blocked batch-invariant kernel:
:func:`kernel_gap_benchmark` times the packed-layer contractions of one
model three ways — the ``"loops"`` einsum kernel, the ``"blocked"``
kernel, and the unconstrained raw-BLAS dispatch — over the shapes a
serving forward actually runs, reporting the blocked speedup over loops
and the residual gap to BLAS.
"""

from __future__ import annotations

import dataclasses
from pathlib import Path
from time import monotonic
from typing import Any

import numpy as np

from repro.combining.inference import PackedModel
from repro.combining.kernels import (
    DEFAULT_KERNEL,
    invariant_conv_pointwise,
    validate_kernel,
)
from repro.combining.pipeline import PipelineConfig
from repro.combining.quantized import QuantizedPackedModel
from repro.combining.serialization import load_packed
from repro.obs.slo import SLORule
from repro.serving.registry import ModelRegistry
from repro.serving.server import InferenceServer


def default_slo_rules(latency_target: float = 0.25,
                      error_rate: float = 0.01,
                      queue_depth: int = 256) -> tuple[SLORule, ...]:
    """The stock rule set ``serve-bench --slo`` evaluates.

    One rule per kind: p99 service latency under ``latency_target``
    seconds, failed-request fraction under ``error_rate``, and pending
    queue depth under ``queue_depth``.
    """
    return (
        SLORule("service-p99", "latency_quantile", latency_target,
                quantile=0.99, latency="service"),
        SLORule("error-rate", "error_rate", error_rate),
        SLORule("queue-depth", "queue_depth", float(queue_depth)),
    )


def _scrape(url: str) -> tuple[int, str]:
    """GET ``url``; returns ``(status, body)`` without raising on 4xx/5xx."""
    import urllib.error
    import urllib.request

    try:
        with urllib.request.urlopen(url, timeout=10.0) as response:
            return response.status, response.read().decode("utf-8")
    except urllib.error.HTTPError as error:
        return error.code, error.read().decode("utf-8")


def resolve_sample_shape(loaded: PackedModel | QuantizedPackedModel,
                         image_size: int,
                         model_spec: dict[str, Any] | None = None
                         ) -> tuple[int, int, int]:
    """The ``(C, H, W)`` a request to this model must have.

    Channels come from the first packed layer's original filter matrix;
    the spatial size comes from the artifact's ``model_spec`` when it
    records one (architectures like LeNet-5 bake the image size into
    their classifier shapes) and from ``image_size`` otherwise.
    """
    packed = loaded.packed if isinstance(loaded, QuantizedPackedModel) else loaded
    if not packed.specs:
        raise ValueError("model has no packed layers")
    channels = packed.specs[0].packed.original_shape[1]
    if model_spec is not None:
        image_size = int(model_spec.get("kwargs", {}).get("image_size",
                                                          image_size))
    return channels, image_size, image_size


def _serving_mode(loaded: PackedModel | QuantizedPackedModel) -> str:
    return ("quantized" if isinstance(loaded, QuantizedPackedModel)
            else "exact")


def _serve_stream(loaded: PackedModel | QuantizedPackedModel,
                  samples: np.ndarray, max_batch: int, max_wait: float,
                  workers: int = 1, backend: str = "thread",
                  path: str | Path | None = None,
                  kernel: str = DEFAULT_KERNEL, profile: bool = False,
                  trace_capacity: int = 0,
                  slo_rules: tuple[SLORule, ...] | None = None,
                  export_port: int | None = None
                  ) -> tuple[float, list[np.ndarray], dict[str, Any],
                             dict[str, Any]]:
    """Serve every sample as its own request.

    Returns ``(seconds, outputs, stats, obs)`` — ``obs`` carries the
    server's observability exports (per-layer profile, retained traces,
    merged metrics snapshot); empty-ish unless ``profile`` /
    ``trace_capacity`` opt in.  ``slo_rules`` installs the rules on the
    server's SLO engine; ``export_port`` (0 = ephemeral) attaches the
    live HTTP exporter for the run and scrapes ``/metrics`` + ``/health``
    once before shutdown — both land under ``obs["operational"]``.  The
    thread backend serves the live ``loaded`` model directly; the
    process backend needs ``path``, because its workers map the artifact
    themselves rather than receiving a model.
    """
    registry = ModelRegistry(max_resident=1)
    if backend == "process":
        if path is None:
            raise ValueError(
                "the process backend serves artifact-backed registrations; "
                "pass the artifact path")
        registry.register("bench", path=path, mode=_serving_mode(loaded))
    else:
        registry.add("bench", loaded)
    with InferenceServer(registry, max_batch=max_batch, max_wait=max_wait,
                         workers=workers, backend=backend, kernel=kernel,
                         profile=profile, trace_capacity=trace_capacity,
                         slo=slo_rules) as server:
        exporter = (server.serve_metrics(port=export_port)
                    if export_port is not None else None)
        started = monotonic()
        pending = [server.submit("bench", sample) for sample in samples]
        outputs = [request.result(timeout=120.0) for request in pending]
        elapsed = monotonic() - started
        stats = server.stats()
        obs = {
            "layer_profile": server.layer_profile(),
            "traces": server.traces(),
            "metrics_snapshot": server.metrics_snapshot(),
        }
        if slo_rules is not None or exporter is not None:
            health = server.health()
            operational: dict[str, Any] = {
                "health": health,
                "slo": health["slo"],
                "windows": health["windows"],
                "events": server.events(),
            }
            if exporter is not None:
                health_status, health_body = _scrape(exporter.url + "/health")
                metrics_status, metrics_body = _scrape(
                    exporter.url + "/metrics")
                operational["exporter"] = {
                    "url": exporter.url,
                    "health_status": health_status,
                    "health_body": health_body,
                    "metrics_status": metrics_status,
                    "metrics_lines": metrics_body.count("\n"),
                }
            obs["operational"] = operational
    return elapsed, outputs, stats, obs


def _direct_reference(loaded: PackedModel | QuantizedPackedModel,
                      kernel: str = DEFAULT_KERNEL):
    """The per-sample reference forward every served response must match."""
    if isinstance(loaded, QuantizedPackedModel):
        def direct(sample: np.ndarray) -> np.ndarray:
            return loaded.forward(sample[None], track_errors=False,
                                  batch_invariant=True, kernel=kernel)[0]
    else:
        def direct(sample: np.ndarray) -> np.ndarray:
            return loaded.forward(sample[None], batch_invariant=True,
                                  kernel=kernel)[0]
    return direct


def _top_layers(layer_profile: dict[str, list[dict[str, Any]]],
                top: int = 3) -> list[dict[str, Any]]:
    """The ``top`` slowest layers across every model in a layer profile."""
    rows = [dict(row, model=model)
            for model, layers in layer_profile.items() for row in layers]
    rows.sort(key=lambda row: (-row["total_seconds"], row["layer"]))
    return rows[:top]


def throughput_benchmark(loaded: PackedModel | QuantizedPackedModel,
                         samples: np.ndarray, max_batch: int = 16,
                         max_wait: float = 0.002, workers: int = 1,
                         backend: str = "thread",
                         path: str | Path | None = None,
                         kernel: str = DEFAULT_KERNEL, profile: bool = False,
                         trace: bool = False,
                         slo_rules: tuple[SLORule, ...] | None = None,
                         export_port: int | None = None) -> dict[str, Any]:
    """Serve ``samples`` one-at-a-time and batched; verify bit-identity.

    Every sample becomes one single-sample request.  The returned mapping
    carries both wall times, both throughputs (requests/second), the
    speedup, the servers' batch-size accounting, the batched server's
    plan-cache hit/miss totals, the batched run's queued / service
    latency digests (p50/p90/p99 from the server's mergeable histograms)
    and flush-reason split, and ``bit_identical_to_direct`` — whether
    every batched response matched the direct ``forward`` call on its own
    request, which the batch-invariant serving path guarantees regardless
    of ``backend``, ``workers``, ``kernel``, and (``profile=True``)
    per-layer profiling.  Profiling adds ``slowest_layers``; ``trace``
    retains the batched run's request traces (``traces`` /
    ``trace_stats``).  ``slo_rules`` / ``export_port`` run the batched
    leg with the SLO engine evaluating and the HTTP exporter attached
    (scraped once) and add the ``operational`` section — rolling-window
    quantiles, per-rule verdicts, lifecycle events, scrape results.
    """
    sequential_seconds, sequential_outputs, sequential_stats, _ = (
        _serve_stream(loaded, samples, max_batch=1, max_wait=0.0,
                      workers=workers, backend=backend, path=path,
                      kernel=kernel))
    batched_seconds, batched_outputs, batched_stats, batched_obs = (
        _serve_stream(loaded, samples, max_batch=max_batch,
                      max_wait=max_wait, workers=workers, backend=backend,
                      path=path, kernel=kernel, profile=profile,
                      trace_capacity=256 if trace else 0,
                      slo_rules=slo_rules, export_port=export_port))

    direct = _direct_reference(loaded, kernel=kernel)
    bit_identical = all(
        np.array_equal(batched, direct(sample))
        and np.array_equal(sequential, batched)
        for sample, sequential, batched
        in zip(samples, sequential_outputs, batched_outputs))

    requests = len(samples)
    result = {
        "requests": requests,
        "max_batch": max_batch,
        "backend": backend,
        "workers": workers,
        "kernel": kernel,
        "profile": profile,
        "sequential_seconds": sequential_seconds,
        "batched_seconds": batched_seconds,
        "sequential_throughput": requests / sequential_seconds,
        "batched_throughput": requests / batched_seconds,
        "speedup": sequential_seconds / batched_seconds,
        "sequential_mean_batch": sequential_stats["totals"]["mean_batch_size"],
        "batched_mean_batch": batched_stats["totals"]["mean_batch_size"],
        "batched_cycles": batched_stats["totals"]["cycles"],
        "batched_plan_cache": batched_stats["totals"]["plan_cache"],
        "queued_seconds": batched_stats["totals"]["queued_seconds"],
        "service_seconds": batched_stats["totals"]["service_seconds"],
        "flush_reasons": batched_stats["totals"]["flush_reasons"],
        "bit_identical_to_direct": bit_identical,
    }
    if profile:
        result["slowest_layers"] = _top_layers(batched_obs["layer_profile"])
    if trace:
        result["traces"] = batched_obs["traces"]
        result["trace_stats"] = batched_stats["traces"]
    if "operational" in batched_obs:
        result["operational"] = batched_obs["operational"]
    return result


def profiling_overhead_benchmark(loaded: PackedModel | QuantizedPackedModel,
                                 samples: np.ndarray, max_batch: int = 16,
                                 max_wait: float = 0.002, workers: int = 1,
                                 backend: str = "thread",
                                 path: str | Path | None = None,
                                 kernel: str = DEFAULT_KERNEL,
                                 repeats: int = 3) -> dict[str, Any]:
    """Served wall time with per-layer profiling off vs on.

    Serves the same stream ``repeats`` times per configuration and keeps
    each configuration's **minimum** wall time (the standard
    noise-rejection for wall-clock benchmarks), then reports
    ``overhead`` — profiled seconds over unprofiled seconds, minus one.
    Profiling wraps each packed layer op in two perf-counter reads and a
    dict update, nothing inside the contraction loops, so the overhead
    stays small (the benchmark suite pins < 10%) and outputs stay
    bit-identical (``bit_identical``).
    """
    def best(profile: bool) -> tuple[float, list[np.ndarray]]:
        elapsed = float("inf")
        outputs: list[np.ndarray] = []
        for _ in range(repeats):
            seconds, run_outputs, _, _ = _serve_stream(
                loaded, samples, max_batch=max_batch, max_wait=max_wait,
                workers=workers, backend=backend, path=path, kernel=kernel,
                profile=profile)
            if seconds < elapsed:
                elapsed = seconds
            outputs = run_outputs
        return elapsed, outputs

    plain_seconds, plain_outputs = best(profile=False)
    profiled_seconds, profiled_outputs = best(profile=True)
    bit_identical = all(np.array_equal(plain, profiled)
                        for plain, profiled
                        in zip(plain_outputs, profiled_outputs))
    return {
        "requests": len(samples),
        "repeats": repeats,
        "backend": backend,
        "workers": workers,
        "kernel": kernel,
        "plain_seconds": plain_seconds,
        "profiled_seconds": profiled_seconds,
        "overhead": (profiled_seconds / plain_seconds - 1.0
                     if plain_seconds else 0.0),
        "bit_identical": bit_identical,
    }


def backend_scaling_benchmark(path: str | Path, requests: int = 64,
                              max_batch: int = 8, max_wait: float = 0.001,
                              worker_counts: tuple[int, ...] = (1, 2, 4),
                              image_size: int = 8, seed: int = 0,
                              kernel: str = DEFAULT_KERNEL
                              ) -> dict[str, Any]:
    """Thread vs process backend over increasing worker counts.

    Serves the same seeded single-sample stream once per
    (backend, workers) cell and reports each cell's wall time and
    throughput, plus ``bit_identical`` — whether every cell's responses
    matched the direct batch-invariant forward bit-for-bit.
    """
    from repro.combining.serialization import artifact_info

    if requests < 1:
        raise ValueError("requests must be >= 1")
    loaded = load_packed(path)
    info = artifact_info(path)
    shape = resolve_sample_shape(loaded, image_size,
                                 model_spec=info.get("model_spec"))
    rng = np.random.default_rng(seed)
    samples = rng.normal(size=(requests, *shape))
    direct = _direct_reference(loaded, kernel=kernel)
    expected = [direct(sample) for sample in samples]

    cells: dict[str, dict[int, dict[str, float]]] = {}
    bit_identical = True
    for backend in ("thread", "process"):
        cells[backend] = {}
        for workers in worker_counts:
            seconds, outputs, _, _ = _serve_stream(
                loaded, samples, max_batch=max_batch, max_wait=max_wait,
                workers=workers, backend=backend, path=path, kernel=kernel)
            bit_identical &= all(np.array_equal(output, reference)
                                 for output, reference
                                 in zip(outputs, expected))
            cells[backend][workers] = {
                "seconds": seconds,
                "throughput": requests / seconds,
            }
    return {
        "requests": requests,
        "sample_shape": shape,
        "worker_counts": tuple(worker_counts),
        "backends": cells,
        "bit_identical": bit_identical,
    }


def cold_start_benchmark(path: str | Path) -> dict[str, Any]:
    """Artifact load time vs re-packing the same weights from scratch.

    The artifact must be model-backed and carry its
    :class:`~repro.combining.pipeline.PipelineConfig` (anything saved
    from a pipeline-assembled model does).  Re-packing runs serially
    (``workers=1``) so the comparison is deterministic and conservative —
    it excludes process-pool spawn costs *and* any quantized model's
    calibration run, both of which would only widen the gap.
    """
    started = monotonic()
    loaded = load_packed(path)
    load_seconds = monotonic() - started

    packed = (loaded.packed if isinstance(loaded, QuantizedPackedModel)
              else loaded)
    if packed.model is None or packed.pipeline_config is None:
        raise ValueError(
            "cold-start comparison needs a model-backed artifact with a "
            "recorded pipeline config")
    config = dataclasses.replace(packed.pipeline_config, workers=1)
    started = monotonic()
    repacked = PackedModel.from_model(packed.model, config)
    repack_seconds = monotonic() - started

    return {
        "load_seconds": load_seconds,
        "repack_seconds": repack_seconds,
        "speedup": repack_seconds / load_seconds,
        "num_layers": repacked.num_layers,
        "loaded": loaded,
    }


def run_serving_benchmark(path: str | Path, requests: int = 96,
                          max_batch: int = 16, max_wait: float = 0.002,
                          image_size: int = 8, seed: int = 0,
                          workers: int = 1, backend: str = "thread",
                          kernel: str = DEFAULT_KERNEL,
                          profile: bool = False, trace: bool = False,
                          slo_rules: tuple[SLORule, ...] | None = None,
                          export_port: int | None = None
                          ) -> dict[str, Any]:
    """The full serve-bench: cold start plus throughput on one artifact.

    ``profile`` turns on per-layer wall-time accounting for the batched
    run (slowest layers land in the throughput section); ``trace``
    retains its request traces; ``slo_rules`` / ``export_port`` add the
    operational section (window quantiles, verdicts, exporter scrape).
    """
    if requests < 1:
        raise ValueError("requests must be >= 1")
    validate_kernel(kernel)
    cold = cold_start_benchmark(path)
    loaded = cold.pop("loaded")
    from repro.combining.serialization import artifact_info

    info = artifact_info(path)
    shape = resolve_sample_shape(loaded, image_size,
                                 model_spec=info.get("model_spec"))
    rng = np.random.default_rng(seed)
    samples = rng.normal(size=(requests, *shape))
    throughput = throughput_benchmark(loaded, samples, max_batch=max_batch,
                                      max_wait=max_wait, workers=workers,
                                      backend=backend, path=path,
                                      kernel=kernel, profile=profile,
                                      trace=trace, slo_rules=slo_rules,
                                      export_port=export_port)
    return {"kind": info["kind"], "sample_shape": shape,
            "cold_start": cold, "throughput": throughput}


def observability_report(path: str | Path, requests: int = 32,
                         max_batch: int = 8, max_wait: float = 0.001,
                         image_size: int = 8, seed: int = 0,
                         workers: int = 1, backend: str = "thread",
                         kernel: str = DEFAULT_KERNEL,
                         trace_limit: int = 5) -> dict[str, Any]:
    """One profiled, traced serving run distilled into a stats report.

    The implementation behind ``repro serve-stats``: serve a seeded
    single-sample stream against the artifact with per-layer profiling
    and request tracing on, then return the server's aggregate stats,
    the per-model layer profile, the last ``trace_limit`` traces, and
    the merged metrics snapshot (JSON-able; render with
    :func:`repro.obs.prometheus_from_snapshot` for scrape-style output).
    """
    if requests < 1:
        raise ValueError("requests must be >= 1")
    validate_kernel(kernel)
    loaded = load_packed(path)
    from repro.combining.serialization import artifact_info

    info = artifact_info(path)
    shape = resolve_sample_shape(loaded, image_size,
                                 model_spec=info.get("model_spec"))
    rng = np.random.default_rng(seed)
    samples = rng.normal(size=(requests, *shape))
    seconds, _, stats, obs = _serve_stream(
        loaded, samples, max_batch=max_batch, max_wait=max_wait,
        workers=workers, backend=backend, path=path, kernel=kernel,
        profile=True, trace_capacity=max(trace_limit, 1))
    return {
        "kind": info["kind"],
        "requests": requests,
        "seconds": seconds,
        "throughput": requests / seconds if seconds else 0.0,
        "stats": stats,
        "layer_profile": obs["layer_profile"],
        "slowest_layers": _top_layers(obs["layer_profile"]),
        "traces": obs["traces"][-trace_limit:],
        "metrics_snapshot": obs["metrics_snapshot"],
    }


def _perturbed_artifact_copy(loaded: PackedModel, destination: Path,
                             model_spec: dict[str, Any] | None = None
                             ) -> PackedModel:
    """Save a same-architecture artifact whose forward produces different bits.

    Perturbs the first **non-packed** parameter (classifier weights /
    biases — packed conv weights are realized into the plan's arrays at
    pack time, so touching them would not change the artifact's packed
    forward) and repacks, restoring the source model afterwards.  The
    result is exactly what a retrained checkpoint looks like to the
    registry: same layer signature, different content fingerprint,
    measurably different outputs.
    """
    model = loaded.model
    if model is None or loaded.pipeline_config is None:
        raise ValueError(
            "hot-swap benchmark needs a model-backed artifact with a "
            "recorded pipeline config")
    packed_weights = {id(layer.weight)
                      for _, layer in model.packable_layers()}
    target = None
    for _, parameter in model.named_parameters():
        if id(parameter) not in packed_weights:
            target = parameter
            break
    if target is None:
        raise ValueError("model has no non-packed parameter to perturb")
    original = target.data
    target.data = original + 0.01
    try:
        config = dataclasses.replace(loaded.pipeline_config, workers=1)
        repacked = PackedModel.from_model(model, config)
        from repro.combining.serialization import save_packed

        save_packed(repacked, destination, model_spec=model_spec,
                    compress=False)
    finally:
        target.data = original
    return load_packed(destination)


def hot_swap_benchmark(path: str | Path, swaps: int = 4,
                       requests_per_swap: int = 24, max_batch: int = 8,
                       max_wait: float = 0.001, workers: int = 2,
                       backend: str = "thread", image_size: int = 8,
                       seed: int = 0, kernel: str = DEFAULT_KERNEL
                       ) -> dict[str, Any]:
    """Repeated live cutovers under traffic; every response old or new bits.

    Builds a perturbed same-architecture copy of the artifact, then
    alternates ``registry.swap`` between the two **while requests are in
    flight**: each round submits ``requests_per_swap`` single-sample
    requests and swaps mid-stream.  Every response must be bit-identical
    to the direct batch-invariant forward of *one of the two* artifacts
    (in-flight batches finish on the old immutable plan, later batches
    serve the new one — nothing in between exists), and no request may
    fail or hang.  Reports per-swap wall time (artifact probe +
    side-load + atomic flip — the old plan serves throughout, so this is
    deploy latency, not downtime) plus the old/new response split and
    the registry's final generation.
    """
    import tempfile

    from repro.combining.serialization import artifact_info

    if swaps < 1:
        raise ValueError("swaps must be >= 1")
    validate_kernel(kernel)
    loaded = load_packed(path)
    if isinstance(loaded, QuantizedPackedModel):
        raise ValueError(
            "hot-swap benchmark perturbs float model state; pass a float "
            "packed artifact")
    info = artifact_info(path)
    shape = resolve_sample_shape(loaded, image_size,
                                 model_spec=info.get("model_spec"))
    rng = np.random.default_rng(seed)
    direct_old = _direct_reference(loaded, kernel=kernel)

    with tempfile.TemporaryDirectory() as tmp:
        alt_path = Path(tmp) / "swap-target.npz"
        alt = _perturbed_artifact_copy(loaded, alt_path,
                                       model_spec=info.get("model_spec"))
        direct_new = _direct_reference(alt, kernel=kernel)

        registry = ModelRegistry(max_resident=2)
        registry.register("bench", path=path, mode="exact")
        targets = (alt_path, Path(path))
        swap_seconds: list[float] = []
        old_bits = new_bits = mismatched = failures = 0
        started = monotonic()
        with InferenceServer(registry, max_batch=max_batch,
                             max_wait=max_wait, workers=workers,
                             backend=backend, kernel=kernel) as server:
            for index in range(swaps):
                samples = rng.normal(size=(requests_per_swap, *shape))
                pending = [server.submit("bench", sample)
                           for sample in samples]
                swap_started = monotonic()
                registry.swap("bench", targets[index % 2])
                swap_seconds.append(monotonic() - swap_started)
                for sample, request in zip(samples, pending):
                    try:
                        output = request.result(timeout=120.0)
                    except Exception:  # noqa: BLE001 - counted, not raised
                        failures += 1
                        continue
                    if np.array_equal(output, direct_old(sample)):
                        old_bits += 1
                    elif np.array_equal(output, direct_new(sample)):
                        new_bits += 1
                    else:
                        mismatched += 1
        elapsed = monotonic() - started
    registry_stats = registry.stats()
    total = swaps * requests_per_swap
    return {
        "backend": backend,
        "workers": workers,
        "kernel": kernel,
        "swaps": swaps,
        "requests": total,
        "seconds": elapsed,
        "throughput": total / elapsed if elapsed else 0.0,
        "swap_seconds": {
            "mean": sum(swap_seconds) / len(swap_seconds),
            "max": max(swap_seconds),
        },
        "old_bits": old_bits,
        "new_bits": new_bits,
        "mismatched": mismatched,
        "failures": failures,
        "bit_exact": mismatched == 0 and failures == 0,
        "final_generation": registry_stats["generations"]["bench"],
        "registry_swaps": registry_stats["swaps"],
    }


def kernel_gap_benchmark(loaded: PackedModel | QuantizedPackedModel,
                         image_size: int = 32, batch: int = 8,
                         seed: int = 0, repeats: int = 3) -> dict[str, Any]:
    """Three-way timing of the packed-layer contractions: loops / blocked / BLAS.

    Probes one batch-invariant forward to collect each packed layer's
    realized weight matrix and the activation shape it sees at
    ``image_size``, then times that layer's contraction under the
    ``"loops"`` kernel, the ``"blocked"`` kernel, and the unconstrained
    raw-BLAS einsum (``optimize=True``) — min over ``repeats`` — on
    random activations of the serving shape.  This is the serving hot
    path measured where it runs: per packed-layer GEMM, at the batch
    size dynamic coalescing actually produces.

    Returns per-layer rows plus totals with ``blocked_speedup``
    (loops seconds / blocked seconds — the factor determinism stops
    costing) and ``blas_gap`` (blocked seconds / raw-BLAS seconds — the
    residual price of pinning the schedule; < 1 means blocked is faster
    than the naive batched dispatch).  ``numerically_equivalent``
    confirms the three paths agree to ``allclose`` on every layer.
    """
    packed = (loaded.packed if isinstance(loaded, QuantizedPackedModel)
              else loaded)
    if packed.model is None:
        raise ValueError("kernel gap benchmark needs a model-backed artifact")
    channels = packed.specs[0].packed.original_shape[1]
    rng = np.random.default_rng(seed)
    probe = rng.normal(size=(batch, channels, image_size, image_size))
    packed.forward(probe, batch_invariant=True)
    observed = packed.observed_spatial_map()

    def best(timed) -> float:
        elapsed = float("inf")
        for _ in range(repeats):
            started = monotonic()
            timed()
            elapsed = min(elapsed, monotonic() - started)
        return elapsed

    layers = []
    totals = {"loops_seconds": 0.0, "blocked_seconds": 0.0,
              "blas_seconds": 0.0}
    equivalent = True
    for spec in packed.specs:
        weight = spec.realized()
        height, width = observed[spec.name]
        x = rng.normal(size=(batch, weight.shape[1], height, width))
        loops_s = best(lambda: invariant_conv_pointwise(x, weight, "loops"))
        blocked_s = best(lambda: invariant_conv_pointwise(x, weight, "blocked"))
        blas_s = best(lambda: np.einsum("nc,bchw->bnhw", weight, x,
                                        optimize=True))
        equivalent &= np.allclose(
            invariant_conv_pointwise(x, weight, "blocked"),
            invariant_conv_pointwise(x, weight, "loops"),
            rtol=1e-9, atol=1e-11)
        layers.append({
            "name": spec.name, "shape": weight.shape,
            "spatial": (height, width),
            "loops_seconds": loops_s, "blocked_seconds": blocked_s,
            "blas_seconds": blas_s,
            "blocked_speedup": loops_s / blocked_s if blocked_s else 0.0,
        })
        totals["loops_seconds"] += loops_s
        totals["blocked_seconds"] += blocked_s
        totals["blas_seconds"] += blas_s
    totals["blocked_speedup"] = (totals["loops_seconds"]
                                 / totals["blocked_seconds"]
                                 if totals["blocked_seconds"] else 0.0)
    totals["blas_gap"] = (totals["blocked_seconds"] / totals["blas_seconds"]
                          if totals["blas_seconds"] else 0.0)
    return {"batch": batch, "image_size": image_size, "repeats": repeats,
            "layers": layers, "totals": totals,
            "numerically_equivalent": equivalent}
