"""Persistent worker processes running mmap-shared execution plans.

The process serving backend ships ``(artifact path, mode, batch)`` to a
pool of long-lived worker processes instead of running the forward on a
server thread.  Each worker lazily loads the artifact **once** through
:func:`~repro.combining.serialization.load_plan` with ``mmap="auto"``
and caches the resulting :class:`~repro.combining.execplan.ExecutionPlan`
in its own module globals — so N workers serving one V2 uncompressed
artifact share a single resident copy of the packed arrays through the
page cache, and the cost of crossing the process boundary is one batch
of activations each way, never a model.

Because plan execution is batch-invariant and bit-exact to the legacy
in-process path, responses computed in a worker process are bit-identical
to the thread backend's — the server's determinism guarantee holds across
backends and worker counts.

Fork safety: :class:`ProcessWorkerPool` is created and warmed (one no-op
task per worker, forcing every fork) before the server spawns its drain
threads, so no worker process is ever forked from a multi-threaded
parent.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import numpy as np

from repro.combining.kernels import DEFAULT_KERNEL

#: Per-process plan cache: artifact path -> loaded ExecutionPlan.  Lives
#: in the worker's own interpreter; the parent never touches it.
_PLAN_CACHE: dict[str, object] = {}

#: Per-process systolic batch-plan cache, keyed like
#: ResidentModel._plans but per artifact.
_BATCH_PLAN_CACHE: dict[tuple, object] = {}


def _plan_for(path: str):
    plan = _PLAN_CACHE.get(path)
    if plan is None:
        from repro.combining.serialization import load_plan

        plan = load_plan(path, mmap="auto")
        _PLAN_CACHE[path] = plan
    return plan


def _warm_worker() -> int:
    """No-op task submitted once per worker to force the fork up front."""
    return 0


def _run_plan_batch(path: str, mode: str, batch: np.ndarray,
                    kernel: str = DEFAULT_KERNEL
                    ) -> tuple[np.ndarray, int, int, bool | None]:
    """One serving forward inside a worker:
    ``(outputs, cycles, tiles, plan_cache_hit)``.

    Mirrors the thread backend exactly: batch-invariant plan forward with
    the server's ``kernel``, then best-effort systolic cycle / tile
    accounting from the observed spatial map (a timing-model failure must
    not fail a batch whose forward already succeeded — it reports
    ``plan_cache_hit=None`` instead).  The hit flag reflects *this
    worker's* ``_BATCH_PLAN_CACHE``: each process pays its own misses, so
    the server-side hit/miss totals expose how much accounting work the
    process backend duplicates across workers.
    """
    plan = _plan_for(path)
    observed: dict[str, tuple[int, int]] = {}
    outputs = plan.forward(batch, mode=mode, batch_invariant=True,
                           observed=observed, kernel=kernel)
    cycles = tiles = 0
    cache_hit: bool | None = None
    try:
        key = (path, batch.shape[0], tuple(sorted(observed.items())))
        batch_plan = _BATCH_PLAN_CACHE.get(key)
        cache_hit = batch_plan is not None
        if batch_plan is None:
            batch_plan = plan.execution_plan(observed=observed,
                                             batch=batch.shape[0])
            _BATCH_PLAN_CACHE[key] = batch_plan
        cycles, tiles = batch_plan.total_cycles, batch_plan.total_tiles
    except Exception:  # noqa: BLE001 - accounting is best-effort
        cache_hit = None
    return outputs, cycles, tiles, cache_hit


class ProcessWorkerPool:
    """A warmed, persistent :class:`ProcessPoolExecutor` for plan forwards.

    ``run`` blocks until the worker returns, so the server's drain
    threads provide the concurrency structure (one in-flight batch per
    drain thread) while the pool provides the parallel compute.
    """

    def __init__(self, workers: int):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self._executor = ProcessPoolExecutor(max_workers=workers)

    def warm(self) -> None:
        """Fork every worker now (call before any threads exist)."""
        futures = [self._executor.submit(_warm_worker)
                   for _ in range(self.workers)]
        for future in futures:
            future.result()

    def run(self, path: str | Path, mode: str, batch: np.ndarray,
            kernel: str = DEFAULT_KERNEL
            ) -> tuple[np.ndarray, int, int, bool | None]:
        """Run one batch in a worker process; returns
        ``(outputs, cycles, tiles, plan_cache_hit)``."""
        future = self._executor.submit(_run_plan_batch, str(path), mode, batch,
                                       kernel)
        return future.result()

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)
