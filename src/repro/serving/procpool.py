"""Persistent worker processes running mmap-shared execution plans.

The process serving backend ships ``(artifact path, content fingerprint,
mode, batch)`` to a pool of long-lived worker processes instead of
running the forward on a server thread.  Each worker lazily loads the
artifact **once per content generation** through
:func:`~repro.combining.serialization.load_plan` with ``mmap="auto"``
and caches the resulting :class:`~repro.combining.execplan.ExecutionPlan`
in its own module globals, keyed by ``(path, fingerprint)`` — so N
workers serving one V2 uncompressed artifact share a single resident
copy of the packed arrays through the page cache, the cost of crossing
the process boundary is one batch of activations each way (never a
model), and a hot-swapped artifact takes effect in every warm worker on
its next batch: the registry's new fingerprint misses the cache, the
worker re-verifies the file against it, and the superseded plan ages out
of the bounded LRU.

Because plan execution is batch-invariant and bit-exact to the legacy
in-process path, responses computed in a worker process are bit-identical
to the thread backend's — the server's determinism guarantee holds across
backends and worker counts.

Fork safety: :class:`ProcessWorkerPool` is created and warmed (one no-op
task per worker, forcing every fork) before the server spawns its drain
threads, so no worker process is ever forked from a multi-threaded
parent.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from pathlib import Path
from typing import Any

import numpy as np

from repro.combining.kernels import DEFAULT_KERNEL
from repro.obs.events import EventLog
from repro.obs.metrics import MetricsRegistry
from repro.utils.lru import LRUCache

#: How many distinct ``(path, fingerprint)`` plans one worker keeps
#: resident.  Plans are the expensive entries (they pin the mmap'd
#: arrays), and a worker serving a registry that hot-swaps artifacts
#: would otherwise accumulate every superseded generation forever.
PLAN_CACHE_SIZE = 4

#: Bound on the per-worker systolic accounting-plan cache — its key
#: space (artifact x batch size x observed spatial map) is unbounded
#: under varied traffic.
BATCH_PLAN_CACHE_SIZE = 32

#: Per-process plan cache: ``(artifact path, content fingerprint)`` ->
#: loaded ExecutionPlan.  Lives in the worker's own interpreter; the
#: parent never touches it.  Keying by fingerprint — not path alone — is
#: what makes artifact hot-swap safe: after a
#: :meth:`~repro.serving.registry.ModelRegistry.swap` the registry hands
#: out the new content token, so a warm worker can never serve a
#: superseded plan it cached under the same path.
_PLAN_CACHE: LRUCache = LRUCache(PLAN_CACHE_SIZE)

#: Per-process systolic batch-plan cache, keyed like
#: ResidentModel's accounting cache but per (artifact, fingerprint).
_BATCH_PLAN_CACHE: LRUCache = LRUCache(BATCH_PLAN_CACHE_SIZE)

#: Per-process observability registry.  Profiled batches record their
#: per-layer and whole-forward wall times here, and every profiled
#: result ships the registry's *snapshot* back to the server, which
#: keeps the latest snapshot per worker pid and merges them on demand
#: (:meth:`~repro.serving.server.InferenceServer.metrics_snapshot`) —
#: histogram merging is exact (:mod:`repro.obs.metrics`), so N workers'
#: partial views combine into the same totals one worker would have
#: recorded alone.
_WORKER_METRICS = MetricsRegistry()


def _plan_for(path: str, fingerprint: str | None = None):
    key = (path, fingerprint)
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        from repro.combining.serialization import (
            PackedArtifactError,
            artifact_fingerprint,
            load_plan,
        )

        if fingerprint is not None:
            actual = artifact_fingerprint(path)
            if actual != fingerprint:
                raise PackedArtifactError(
                    f"{path} changed on disk: the registry expects content "
                    f"fingerprint {fingerprint} but the artifact now "
                    f"fingerprints as {actual}; cut the model over with "
                    "ModelRegistry.swap(name, path) instead of overwriting "
                    "its artifact in place")
        plan = load_plan(path, mmap="auto")
        _PLAN_CACHE.put(key, plan)
    return plan


def _warm_worker() -> int:
    """No-op task submitted once per worker to force the fork up front."""
    return 0


def _run_plan_batch(path: str, mode: str, batch: np.ndarray,
                    kernel: str = DEFAULT_KERNEL,
                    fingerprint: str | None = None,
                    profile: bool = False,
                    model_name: str | None = None
                    ) -> tuple[np.ndarray, int, int, bool | None,
                               dict[str, Any] | None]:
    """One serving forward inside a worker:
    ``(outputs, cycles, tiles, plan_cache_hit, obs)``.

    Mirrors the thread backend exactly: batch-invariant plan forward with
    the server's ``kernel``, then best-effort systolic cycle / tile
    accounting from the observed spatial map (a timing-model failure must
    not fail a batch whose forward already succeeded — it reports
    ``plan_cache_hit=None`` instead).  The hit flag reflects *this
    worker's* ``_BATCH_PLAN_CACHE``: each process pays its own misses, so
    the server-side hit/miss totals expose how much accounting work the
    process backend duplicates across workers.

    ``fingerprint`` is the content token the registry probed for the
    artifact; both caches key on it, and a cache miss re-verifies it
    against the file before loading, so a warm worker can neither serve a
    superseded cached plan nor silently adopt an artifact that was
    overwritten in place behind the registry's back.

    ``profile`` opts into per-layer wall-time accounting
    (``ExecutionPlan.forward(profile=...)`` — wrapping only, outputs
    bit-identical): this batch's per-layer nanoseconds are recorded into
    the worker's persistent :data:`_WORKER_METRICS` registry (histograms
    labelled by model and layer) and the last element of the result
    becomes ``{"pid", "layer_ns", "forward_ns", "snapshot"}`` — the
    per-batch timings for the server's trace, plus this worker's full
    registry snapshot for the server-side merge.  Unprofiled batches
    return ``None`` there and pay nothing.
    """
    plan = _plan_for(path, fingerprint)
    observed: dict[str, tuple[int, int]] = {}
    layer_ns: dict[str, int] | None = {} if profile else None
    if profile:
        from time import perf_counter_ns

        forward_started = perf_counter_ns()
    outputs = plan.forward(batch, mode=mode, batch_invariant=True,
                           observed=observed, kernel=kernel,
                           profile=layer_ns)
    obs: dict[str, Any] | None = None
    if profile:
        forward_ns = perf_counter_ns() - forward_started
        label_model = model_name if model_name is not None else path
        for layer, elapsed_ns in layer_ns.items():
            _WORKER_METRICS.histogram(
                "serving_layer_seconds",
                labels={"model": label_model, "layer": layer},
            ).record(elapsed_ns / 1e9)
        _WORKER_METRICS.histogram(
            "serving_forward_seconds",
            labels={"model": label_model}).record(forward_ns / 1e9)
        _WORKER_METRICS.counter(
            "serving_profiled_batches",
            labels={"model": label_model}).inc()
        obs = {"pid": os.getpid(), "layer_ns": layer_ns,
               "forward_ns": forward_ns,
               "snapshot": _WORKER_METRICS.snapshot()}
    cycles = tiles = 0
    cache_hit: bool | None = None
    try:
        key = (path, fingerprint, batch.shape[0],
               tuple(sorted(observed.items())))
        batch_plan = _BATCH_PLAN_CACHE.get(key)
        cache_hit = batch_plan is not None
        if batch_plan is None:
            batch_plan = plan.execution_plan(observed=observed,
                                             batch=batch.shape[0])
            _BATCH_PLAN_CACHE.put(key, batch_plan)
        cycles, tiles = batch_plan.total_cycles, batch_plan.total_tiles
    except Exception:  # noqa: BLE001 - accounting is best-effort
        cache_hit = None
    return outputs, cycles, tiles, cache_hit, obs


class ProcessWorkerPool:
    """A warmed, persistent :class:`ProcessPoolExecutor` for plan forwards.

    ``run`` blocks until the worker returns, so the server's drain
    threads provide the concurrency structure (one in-flight batch per
    drain thread) while the pool provides the parallel compute.
    """

    def __init__(self, workers: int, start_method: str | None = None,
                 events: EventLog | None = None):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        self.workers = workers
        self.start_method = start_method
        #: Optional lifecycle stream (the server passes its own):
        #: ``pool_warm`` / ``pool_shutdown`` records with pids, so a
        #: rebuild incident reads as evict-old/warm-new in one log.
        self.event_log = events
        context = (multiprocessing.get_context(start_method)
                   if start_method is not None else None)
        self._executor = ProcessPoolExecutor(max_workers=workers,
                                             mp_context=context)
        self._shut_down = False

    def warm(self) -> None:
        """Fork every worker now (call before any threads exist)."""
        futures = [self._executor.submit(_warm_worker)
                   for _ in range(self.workers)]
        for future in futures:
            future.result()
        if self.event_log is not None:
            self.event_log.emit("pool_warm", workers=self.workers,
                                start_method=self.start_method)

    def run(self, path: str | Path, mode: str, batch: np.ndarray,
            kernel: str = DEFAULT_KERNEL, fingerprint: str | None = None,
            profile: bool = False, model_name: str | None = None
            ) -> tuple[np.ndarray, int, int, bool | None,
                       dict[str, Any] | None]:
        """Run one batch in a worker process; returns
        ``(outputs, cycles, tiles, plan_cache_hit, obs)``.

        ``fingerprint`` pins which artifact *content* the worker must
        serve — its plan cache keys on it, so a swap-updated registry is
        never answered from a superseded cached plan.  ``profile``
        additionally collects per-layer wall time in the worker and
        ships its metrics snapshot back in ``obs`` (see
        :func:`_run_plan_batch`).
        """
        future = self._executor.submit(_run_plan_batch, str(path), mode, batch,
                                       kernel, fingerprint, profile,
                                       model_name)
        return future.result()

    def shutdown(self) -> None:
        self._executor.shutdown(wait=True)
        if self.event_log is not None and not self._shut_down:
            self._shut_down = True
            self.event_log.emit("pool_shutdown", workers=self.workers)
