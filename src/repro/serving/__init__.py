"""Dynamic-batching inference serving over packed artifacts.

The paper's column-combined arrays are throughput engines: packing costs
one pipeline run, and the payoff materializes when many requests share
the resident packed model.  This package is that serving layer:

* :mod:`~repro.serving.registry` —
  :class:`~repro.serving.registry.ModelRegistry`: named packed artifacts
  (:mod:`repro.combining.serialization`) loaded lazily on first request,
  with LRU-bounded residency so a node can advertise more models than it
  keeps in memory.
* :mod:`~repro.serving.batcher` —
  :class:`~repro.serving.batcher.DynamicBatcher`: single-sample requests
  queue up and coalesce (up to ``max_batch`` samples or ``max_wait``
  seconds) into one forward per model, and the batched outputs split
  back per request.  Coalescing is bit-transparent: every response is
  bit-identical to the direct single-request
  :meth:`~repro.combining.inference.PackedModel.forward` call, because
  the server runs the batch-invariant execution path
  (``batch_invariant=True``).
* :mod:`~repro.serving.server` —
  :class:`~repro.serving.server.InferenceServer`: thread-based workers
  over the batcher with per-request latency accounting and per-batch
  systolic cycle accounting (from the packed models' own ``plan()`` /
  ``summary()`` machinery), plus graceful drain-and-join shutdown.
* :mod:`~repro.serving.bench` — the throughput / cold-start benchmark
  behind ``repro serve-bench`` and ``benchmarks/test_bench_serving.py``.

Usage::

    from repro.serving import InferenceServer, ModelRegistry

    registry = ModelRegistry(max_resident=2)
    registry.register("lenet5", path="lenet5.packed.npz", mode="exact")
    registry.register("lenet5-int8", path="lenet5.int8.npz", mode="quantized")
    with InferenceServer(registry, max_batch=16, max_wait=0.002) as server:
        logits = server.infer("lenet5", sample)        # (C, H, W) or NCHW
        pending = server.submit("lenet5-int8", sample)  # async
        logits8 = pending.result(timeout=1.0)
"""

from repro.combining.serialization import (
    ARTIFACT_KINDS,
    FORMAT_VERSION,
    PackedArtifactError,
    artifact_info,
    fingerprint_packed,
    load_packed,
    save_packed,
)
from repro.serving.batcher import Batch, DynamicBatcher, PendingRequest
from repro.serving.registry import ModelRegistry, ResidentModel, SERVING_MODES
from repro.serving.server import InferenceServer

__all__ = [
    "ARTIFACT_KINDS",
    "FORMAT_VERSION",
    "PackedArtifactError",
    "artifact_info",
    "fingerprint_packed",
    "load_packed",
    "save_packed",
    "Batch",
    "DynamicBatcher",
    "PendingRequest",
    "ModelRegistry",
    "ResidentModel",
    "SERVING_MODES",
    "InferenceServer",
]
