"""Dynamic-batching inference serving over packed artifacts.

The paper's column-combined arrays are throughput engines: packing costs
one pipeline run, and the payoff materializes when many requests share
the resident packed model.  This package is that serving layer:

* :mod:`~repro.serving.registry` —
  :class:`~repro.serving.registry.ModelRegistry`: named packed artifacts
  (:mod:`repro.combining.serialization`) loaded lazily on first request,
  with LRU-bounded residency so a node can advertise more models than it
  keeps in memory.  Loads run under per-entry locks (a slow load never
  blocks unrelated models) and resolve to immutable execution plans.
* :mod:`~repro.serving.batcher` —
  :class:`~repro.serving.batcher.DynamicBatcher`: single-sample requests
  queue up and coalesce (up to ``max_batch`` samples or ``max_wait``
  seconds) into one forward per model, and the batched outputs split
  back per request.  Coalescing is bit-transparent: every response is
  bit-identical to the direct single-request forward, because the
  server runs the batch-invariant execution path
  (``batch_invariant=True``).
* :mod:`~repro.serving.server` —
  :class:`~repro.serving.server.InferenceServer`: drain threads over the
  batcher with per-request latency accounting and per-batch systolic
  cycle accounting, plus graceful drain-and-join shutdown.  The
  ``backend`` knob picks where forwards run (see below); ``profile``
  and ``trace_capacity`` opt into the observability layer.
* :mod:`~repro.serving.procpool` —
  :class:`~repro.serving.procpool.ProcessWorkerPool`: the persistent
  worker processes behind ``backend="process"``.
* :mod:`~repro.serving.bench` — the throughput / cold-start / backend
  scaling benchmarks behind ``repro serve-bench`` and
  ``benchmarks/test_bench_serving.py``.

Execution architecture
----------------------

Serving runs on **immutable execution plans**
(:class:`~repro.combining.execplan.ExecutionPlan`), not on the nn module
graph.  The legacy forward path installed packed state into the shared
module graph, ran, and restored it — correct, but it made the model the
unit of mutual exclusion: one lock per model, one forward at a time,
and nothing shippable across process boundaries.  A plan is compiled
once (from a loaded artifact or a live model) into a read-only,
picklable op tree; running it touches no shared state, so:

* any number of worker threads forward the *same* resident model
  concurrently — no per-model lock;
* :func:`~repro.combining.serialization.load_plan` with ``mmap="auto"``
  maps a V2 uncompressed artifact's arrays straight out of the page
  cache, so N processes serving one artifact share one resident copy;
* the process backend ships ``(artifact path, content fingerprint,
  mode, batch)`` to persistent workers that map the plan themselves —
  one batch of activations crosses the boundary each way, never a model.

Live redeploy (hot swap)
------------------------

Immutable plans are also what make zero-downtime model updates trivial:
:meth:`~repro.serving.registry.ModelRegistry.swap` loads a new artifact
off to the side (old plan keeps serving every in-flight and queued
forward — no drain, no request-blocking lock) and atomically flips the
resident entry once the new plan is ready; the next batch serves the
new bits.  Compatibility (serving kind, per-layer shape skeleton) is
verified against :func:`~repro.combining.serialization.artifact_info`
*before* the flip, so a bad swap never degrades the live entry.  Every
artifact carries a content **fingerprint**
(:func:`~repro.combining.serialization.artifact_fingerprint`, stored in
the metadata at save time) and every swap bumps the entry's
**generation**; the process backend keys its per-worker plan caches on
``(path, fingerprint)`` — a hot swap takes effect in every warm worker
on its next batch, and an artifact overwritten in place *without* a
swap fails loudly in the worker rather than serving ambiguous bits.
:meth:`~repro.serving.registry.ModelRegistry.swap_live` is the same
cutover for an already-built model object (the entry becomes pinned).
Swap counts and per-model generations surface in
``ModelRegistry.stats()`` / ``InferenceServer.stats()``.

Pick ``backend="thread"`` (default) for low request rates, live
(``add()``-registered) models, or when artifacts are compressed; pick
``backend="process"`` for CPU-bound sustained load on artifact-backed
models, where the GIL caps thread scaling.  Responses are bit-identical
across backends, worker counts, and batch coalescing — every path runs
the same batch-invariant plan execution.

Batch-invariant numerics used to mean a performance tax: every
weight-bearing layer ran ``np.einsum(optimize=False)`` reduction loops
because a general BLAS gemm picks its blocking — and therefore its float
summation order — from the full operand shapes, batch included.  The
server now defaults to the **blocked batch-invariant kernel**
(:mod:`repro.combining.kernels`, ``kernel="blocked"``): blocked GEMM
whose entire schedule — per-sample dispatch for the pointwise
contraction, fixed :data:`~repro.combining.kernels.M_TILE` row tiles for
the dense head, :data:`~repro.combining.kernels.K_BLOCK` reduction
blocks summed in pinned left-to-right order — is chosen only from
weight / spatial dimensions, never the batch size.  Every inner block
still dispatches to BLAS on contiguous slices, so the measured packed
layers run ~3.8x faster than the einsum loops (at or below the *raw*
batched-BLAS einsum time on the ResNet-20 serving shapes — the
per-sample gemm skips the batched dispatch's internal transposes), while
splitting a batch still concatenates to the exact whole-batch bits.
``kernel="loops"`` keeps the einsum path as the differential reference;
each kernel is bitwise batch-invariant with respect to itself, and a
server runs the one it was built with everywhere (thread and process
backends alike).  Determinism is now the cheap default serving mode.

Observability data flow
-----------------------

The serving stack reports on itself through :mod:`repro.obs`, and the
data flow mirrors the execution architecture — **record where the work
runs, merge exactly at the server, expose in one place**:

1. **Record.**  Every request gets a trace id at ``submit()`` and its
   latencies land in fixed-bucket log-spaced histograms whose bucket
   edges are computed from constants and whose sums are integer
   nanoseconds — the two properties that make histogram merging
   *exact*, not approximate.  Every dispatched batch counts its flush
   reason (``max_batch`` / ``max_wait`` / ``drain``).  With
   ``profile=True`` each packed layer op is timed with a perf-counter
   wrapper (wrapping only: profiled responses are bit-identical to
   unprofiled ones).  In the thread backend all of this records into
   the server's own :class:`~repro.obs.metrics.MetricsRegistry`; in the
   process backend each worker records layer / forward timings into its
   own per-process registry and ships its full snapshot back with every
   profiled batch result.
2. **Merge.**  The server keeps the latest snapshot per worker pid
   (snapshots are cumulative, so latest-wins loses nothing) and
   :meth:`~repro.serving.server.InferenceServer.metrics_snapshot` folds
   them into the server registry in pid order.  Because counters add as
   integers and histograms merge exactly, the merged totals are
   independent of how batches were scheduled across threads, workers,
   and models — the same schedule-independence the bit-identical
   forward gives responses, extended to telemetry.
3. **Expose.**  ``InferenceServer.stats()`` carries per-model and total
   latency digests (p50/p90/p99/mean/max) and the flush-reason split;
   ``traces()`` returns the bounded ring of recent span timelines
   (enqueue -> coalesce -> forward -> respond); ``layer_profile()``
   ranks layers by exact integer-nanosecond totals; ``prometheus_text()``
   renders the merged snapshot in text exposition format.  The
   ``repro serve-stats`` CLI and ``serve-bench --profile --trace`` are
   thin views over these.
4. **Operate.**  On top of the lifetime totals sits the operational
   layer (:mod:`repro.obs.window` / :mod:`~repro.obs.slo` /
   :mod:`~repro.obs.events` / :mod:`~repro.obs.exporter`): every
   request's queued / service / total latency also lands in **rolling
   time-bucketed windows** (same exactly-mergeable histogram state,
   keyed by absolute wall-clock bucket index, O(buckets) memory), a
   declarative :class:`~repro.obs.slo.SLOEngine` evaluates
   latency-quantile / error-rate / queue-depth rules over those windows
   into ok / warn / breach verdicts with burn counters, and lifecycle
   transitions — model load / evict, hot-swap old->new fingerprint +
   generation, pool warm / rebuild / shutdown, load failures, SLO
   breach / recover — append to one bounded
   :class:`~repro.obs.events.EventLog` shared by registry, server, and
   pool.  ``InferenceServer.serve_metrics()`` attaches a live threaded
   HTTP endpoint (:class:`~repro.obs.exporter.ObservabilityExporter`)
   serving ``/metrics`` (Prometheus text), ``/health`` (liveness + SLO
   verdict in the HTTP status: 200 ok/warn, 503 breach or stopped),
   ``/stats``, ``/traces``, and ``/events``; ``stop()`` closes it
   first.  :mod:`repro.obs.export` renders the same traces — and
   instrumented :class:`~repro.combining.pipeline.PackingPipeline`
   stage spans — as Chrome-trace-event JSON for Perfetto.  All of it is
   wrapping only: an observed server's responses stay bit-identical to
   a bare one's.

Usage::

    from repro.serving import InferenceServer, ModelRegistry

    registry = ModelRegistry(max_resident=2)
    registry.register("lenet5", path="lenet5.packed.npz", mode="exact")
    registry.register("lenet5-int8", path="lenet5.int8.npz", mode="quantized")
    with InferenceServer(registry, max_batch=16, max_wait=0.002,
                         workers=4, backend="process") as server:
        logits = server.infer("lenet5", sample)        # (C, H, W) or NCHW
        pending = server.submit("lenet5-int8", sample)  # async
        logits8 = pending.result(timeout=1.0)
"""

from repro.combining.serialization import (
    ARTIFACT_KINDS,
    FORMAT_VERSION,
    PackedArtifactError,
    artifact_fingerprint,
    artifact_info,
    fingerprint_packed,
    load_packed,
    load_plan,
    save_packed,
)
from repro.obs import (
    EventLog,
    MetricsRegistry,
    ObservabilityExporter,
    SLOEngine,
    SLORule,
    TraceBuffer,
)
from repro.serving.batcher import (
    Batch,
    DynamicBatcher,
    FLUSH_REASONS,
    PendingRequest,
)
from repro.serving.procpool import ProcessWorkerPool
from repro.serving.registry import ModelRegistry, ResidentModel, SERVING_MODES
from repro.serving.server import InferenceServer, SERVING_BACKENDS

__all__ = [
    "ARTIFACT_KINDS",
    "FORMAT_VERSION",
    "PackedArtifactError",
    "artifact_fingerprint",
    "artifact_info",
    "fingerprint_packed",
    "load_packed",
    "load_plan",
    "save_packed",
    "Batch",
    "DynamicBatcher",
    "FLUSH_REASONS",
    "EventLog",
    "MetricsRegistry",
    "ObservabilityExporter",
    "PendingRequest",
    "SLOEngine",
    "SLORule",
    "TraceBuffer",
    "ModelRegistry",
    "ProcessWorkerPool",
    "ResidentModel",
    "SERVING_MODES",
    "SERVING_BACKENDS",
    "InferenceServer",
]
