"""Table 2 — FPGA implementations for CIFAR-10 (energy efficiency).

The paper's FPGA design runs the column-combined ResNet-20 at 150 MHz with
8-bit data / weights and reports 93.1% accuracy and 18830 frames/joule —
about 3x better energy efficiency than the next best published FPGA design.

This reproduction packs the full-size ResNet-20 shapes at the paper's
sparsity, plans per-layer arrays, evaluates the analytical FPGA energy
model, and prints the prior-art rows alongside.  Accuracy comes from the
scaled training substrate.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import (
    FAST_RUN,
    combine_config,
    format_table,
    packing_pipeline,
    run_column_combining,
    shared_packing_pool,
)
from repro.experiments.workloads import PAPER_DENSITY, sparse_network, spatial_sizes
from repro.hardware.fpga import FPGADesign, FPGAReport, evaluate_fpga
from repro.hardware.reference import TABLE2_ROWS
from repro.systolic.array import ArrayConfig
from repro.systolic.system import SystolicSystem
from repro.utils.config import RunConfig


def _plan_resnet(alpha: int, gamma: float, seed: int = 0, workers: int = 1,
                 pool=None):
    """Pack the full-size ResNet-20 and plan per-layer (untiled) arrays."""
    layers = sparse_network("resnet20", density=PAPER_DENSITY["resnet20"], seed=seed,
                            width_multiplier=6)
    with packing_pipeline(alpha=alpha, gamma=gamma, workers=workers,
                          pool=pool) as pipeline:
        result = pipeline.run(layers)
    packed_layers = result.packed_layers()
    max_rows = max(1, max(layer.rows for layer in result.layers))
    max_groups = max(1, max(layer.columns_after for layer in result.layers))
    config = ArrayConfig(rows=max_rows, cols=max_groups, alpha=alpha)
    return SystolicSystem(config).plan_model(packed_layers, spatial_sizes(layers))


def _pipelined_latency_cycles(alpha: int, gamma: float, seed: int,
                              workers: int = 1, pool=None) -> int:
    """Cross-layer-pipelined single-sample latency (the paper's FPGA mode)."""
    from repro.experiments.table3 import network_latencies
    from repro.systolic.pipeline import pipeline_latency

    latencies = network_latencies("resnet20", alpha=alpha, gamma=gamma, seed=seed,
                                  workers=workers, pool=pool,
                                  width_multiplier=6, image_size=32)
    return pipeline_latency(latencies)


def run(run_config: RunConfig | None = None, alpha: int = 8, gamma: float = 0.5,
        include_accuracy: bool = True, seed: int = 0,
        workers: int = 1) -> dict[str, Any]:
    """Evaluate the FPGA ResNet-20 design point and collect Table 2."""
    run_config = run_config if run_config is not None else FAST_RUN
    # One worker pool serves all four packing passes (measured + baseline,
    # plans + latencies) instead of forking per pass.
    with shared_packing_pool(workers) as pool:
        plan = _plan_resnet(alpha, gamma, seed=seed, workers=workers, pool=pool)
        measured_latency = _pipelined_latency_cycles(alpha, gamma, seed, workers,
                                                     pool=pool)
        baseline_plan = _plan_resnet(alpha=1, gamma=0.0, seed=seed,
                                     workers=workers, pool=pool)
        baseline_latency = _pipelined_latency_cycles(1, 0.0, seed, workers,
                                                     pool=pool)
    accuracy = float("nan")
    if include_accuracy:
        cc_config = combine_config(run_config, alpha=alpha, gamma=gamma)
        trained = run_column_combining("resnet20", run_config, cc_config)
        accuracy = trained["final_accuracy"]
    design = FPGADesign(frequency_hz=1.5e8)
    report: FPGAReport = evaluate_fpga(
        design, plan, "resnet20", accuracy, latency_cycles=measured_latency)
    # Baseline FPGA design without column combining, for the relative factor.
    baseline_report = evaluate_fpga(
        design, baseline_plan, "resnet20-baseline", accuracy,
        latency_cycles=baseline_latency)
    return {
        "experiment": "table2",
        "measured": report,
        "baseline": baseline_report,
        "energy_gain_vs_baseline": (report.energy_efficiency_fpj
                                    / baseline_report.energy_efficiency_fpj),
        "paper_rows": TABLE2_ROWS,
    }


def main(include_accuracy: bool = True, workers: int = 1) -> dict[str, Any]:
    result = run(include_accuracy=include_accuracy, workers=workers)
    report = result["measured"]
    rows = [("Ours [measured]", "150", "8-bit", f"{report.accuracy:.3f}",
             f"{report.energy_efficiency_fpj:.0f}")]
    for row in result["paper_rows"]:
        rows.append((f"{row.platform} [paper]",
                     "N/A" if row.frequency_mhz is None else f"{row.frequency_mhz:.0f}",
                     row.precision,
                     "N/A" if row.accuracy_percent is None else f"{row.accuracy_percent:.2f}%",
                     f"{row.energy_efficiency_fpj:.0f}"))
    print("Table 2 — FPGA implementations for CIFAR-10 (measured vs paper-reported)")
    print(format_table(["platform", "MHz", "precision", "accuracy",
                        "energy efficiency (frames/J)"], rows))
    print(f"energy-efficiency gain vs no-combining baseline: "
          f"{result['energy_gain_vs_baseline']:.1f}x")
    return result


if __name__ == "__main__":
    main()
