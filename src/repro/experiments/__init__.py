"""Experiment runners, one per table / figure of the paper's evaluation.

Every module exposes a ``run(...)`` function returning a plain dictionary of
results (consumed by the benchmark harness and by EXPERIMENTS.md) and a
``main()`` that prints the same rows / series the paper reports.  The
mapping from experiment to paper artifact is recorded in DESIGN.md.

Two classes of experiments exist:

* *Training experiments* (Figures 13a-c, 15b, and the accuracy columns of
  Figure 16 / Tables 1-2) run Algorithm 1 on scaled-down shift + pointwise
  networks over synthetic data.  Accuracy values are therefore not the
  paper's MNIST / CIFAR-10 numbers, but the trends (accuracy recovers with
  retraining; α and γ trade utilization against ~1% accuracy) are
  reproduced with the same code path.
* *Structural / hardware experiments* (Figures 14b, 15a, 16 and Tables 1-3)
  operate on full-size filter-matrix shapes with the paper's reported
  sparsity levels and on the analytical hardware models, so tile counts,
  utilization, energy ratios, and latency ratios are directly comparable
  in shape to the paper's plots.
"""

from repro.experiments import common, workloads

__all__ = ["common", "workloads"]
