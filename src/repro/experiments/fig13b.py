"""Figure 13b — impact of the number of columns per group (α).

Sweeps α over {1, 2, 4, 8, 16} with β = 20% and γ = 0.5 and reports
classification accuracy and utilization efficiency.  Expected shape, as in
the paper: α = 1 (no combining) leaves utilization at the sparse density
(<20% at the paper's sparsity), utilization rises steeply up to α = 8 and
saturates at α = 16, while accuracy drops only slightly (~1%).
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.experiments.common import (
    FAST_RUN,
    combine_config,
    format_table,
    run_column_combining,
)
from repro.utils.config import RunConfig

DEFAULT_ALPHAS: tuple[int, ...] = (1, 2, 4, 8, 16)


def run(run_config: RunConfig | None = None, model_name: str = "resnet20",
        alphas: Sequence[int] = DEFAULT_ALPHAS, gamma: float = 0.5,
        beta: float = 0.20) -> dict[str, Any]:
    """Run the α sweep and return accuracy / utilization per α."""
    run_config = run_config if run_config is not None else FAST_RUN
    points: list[dict[str, Any]] = []
    for alpha in alphas:
        # alpha = 1 cannot prune conflicts (single-column groups never
        # conflict), matching the paper's "standard systolic array" baseline.
        cc_config = combine_config(run_config, alpha=alpha, beta=beta,
                                   gamma=gamma if alpha > 1 else 0.0)
        result = run_column_combining(model_name, run_config, cc_config)
        points.append({
            "alpha": alpha,
            "accuracy": result["final_accuracy"],
            "utilization": result["utilization"],
            "nonzeros": result["final_nonzeros"],
        })
    return {
        "experiment": "fig13b",
        "model": model_name,
        "gamma": gamma,
        "beta": beta,
        "points": points,
    }


def main() -> dict[str, Any]:
    result = run()
    rows = [(p["alpha"], p["accuracy"], p["utilization"], p["nonzeros"])
            for p in result["points"]]
    print(f"Figure 13b — impact of alpha ({result['model']}, gamma={result['gamma']})")
    print(format_table(["alpha", "accuracy", "utilization", "nonzeros"], rows))
    return result


if __name__ == "__main__":
    main()
