"""Ablation — column-grouping policy (dense-column-first vs alternatives).

The paper motivates the dense-column-first combining policy by analogy to
bin-packing heuristics that place large items first.  This ablation
compares it against first-fit (columns in natural order) and random order
on full-size sparse layers, measuring the number of combined columns
(fewer is better) and the packing efficiency (higher is better).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.combining import GROUPING_POLICIES
from repro.experiments.common import format_table, packing_pipeline
from repro.experiments.workloads import PAPER_DENSITY, sparse_network

POLICIES: tuple[str, ...] = GROUPING_POLICIES


def run(network: str = "resnet20", alpha: int = 8, gamma: float = 0.5,
        policies: Sequence[str] = POLICIES, seed: int = 0,
        workers: int = 1) -> dict[str, Any]:
    """Compare grouping policies across every layer of a full-size network.

    The ``"random"`` policy draws each layer's column order from a
    generator seeded per layer (via the pipeline's ``seed``), so results
    are identical for any ``workers`` setting.
    """
    shape_kwargs = {"width_multiplier": 6} if network == "resnet20" else {}
    layers = sparse_network(network, density=PAPER_DENSITY[network], seed=seed,
                            **shape_kwargs)
    results: dict[str, dict[str, float]] = {}
    for policy in policies:
        pipeline = packing_pipeline(alpha=alpha, gamma=gamma, policy=policy,
                                    workers=workers, seed=seed)
        packed = pipeline.run(layers)
        results[policy] = {
            "total_combined_columns": sum(layer.columns_after
                                          for layer in packed.layers),
            "total_original_columns": sum(layer.columns_before
                                          for layer in packed.layers),
            "mean_packing_efficiency": float(np.mean(
                [layer.packing_efficiency for layer in packed.layers])),
        }
    return {"experiment": "ablation-grouping", "network": network, "alpha": alpha,
            "gamma": gamma, "policies": results}


def main(workers: int = 1) -> dict[str, Any]:
    result = run(workers=workers)
    rows = [(policy, values["total_combined_columns"],
             f"{values['mean_packing_efficiency']:.1%}")
            for policy, values in result["policies"].items()]
    print(f"Grouping-policy ablation ({result['network']}, alpha={result['alpha']}, "
          f"gamma={result['gamma']})")
    print(format_table(["policy", "combined columns (lower is better)",
                        "mean packing efficiency"], rows))
    return result


if __name__ == "__main__":
    main()
