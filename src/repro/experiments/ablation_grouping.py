"""Ablation — column-grouping policy (dense-column-first vs alternatives).

The paper motivates the dense-column-first combining policy by analogy to
bin-packing heuristics that place large items first.  This ablation
compares it against first-fit (columns in natural order) and random order
on full-size sparse layers, measuring the number of combined columns
(fewer is better) and the packing efficiency (higher is better).
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.combining import group_columns, pack_filter_matrix
from repro.experiments.common import format_table
from repro.experiments.workloads import PAPER_DENSITY, sparse_network

POLICIES: tuple[str, ...] = ("dense-first", "first-fit", "random")


def run(network: str = "resnet20", alpha: int = 8, gamma: float = 0.5,
        policies: Sequence[str] = POLICIES, seed: int = 0) -> dict[str, Any]:
    """Compare grouping policies across every layer of a full-size network."""
    shape_kwargs = {"width_multiplier": 6} if network == "resnet20" else {}
    layers = sparse_network(network, density=PAPER_DENSITY[network], seed=seed,
                            **shape_kwargs)
    results: dict[str, dict[str, float]] = {}
    rng = np.random.default_rng(seed)
    for policy in policies:
        total_groups = 0
        total_columns = 0
        efficiencies: list[float] = []
        for _, matrix in layers:
            grouping = group_columns(matrix, alpha=alpha, gamma=gamma, policy=policy,
                                     rng=rng)
            packed = pack_filter_matrix(matrix, grouping)
            total_groups += grouping.num_groups
            total_columns += matrix.shape[1]
            efficiencies.append(packed.packing_efficiency())
        results[policy] = {
            "total_combined_columns": total_groups,
            "total_original_columns": total_columns,
            "mean_packing_efficiency": float(np.mean(efficiencies)),
        }
    return {"experiment": "ablation-grouping", "network": network, "alpha": alpha,
            "gamma": gamma, "policies": results}


def main() -> dict[str, Any]:
    result = run()
    rows = [(policy, values["total_combined_columns"],
             f"{values['mean_packing_efficiency']:.1%}")
            for policy, values in result["policies"].items()]
    print(f"Grouping-policy ablation ({result['network']}, alpha={result['alpha']}, "
          f"gamma={result['gamma']})")
    print(format_table(["policy", "combined columns (lower is better)",
                        "mean packing efficiency"], rows))
    return result


if __name__ == "__main__":
    main()
