"""Figure 15a — number of tiles per ResNet-20 layer under three settings.

For every layer of the full-size ResNet-20 shift-convolution variant (at
the paper's sparsity), count the tiles a 32 x 32 systolic array needs under:

* *baseline* (α = 1, γ = 0) — standard pruning, no combining;
* *column-combine* (α = 8, γ = 0) — combining without conflict pruning;
* *column-combine pruning* (α = 8, γ = 0.5) — the paper's full method.

Expected shape: combining without pruning buys little (≤ ~10%), while
column-combine pruning cuts tiles by a large factor in every layer, about
5x in the largest layer.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import format_table, packing_pipeline, shared_packing_pool
from repro.experiments.workloads import PAPER_DENSITY, sparse_network

SETTINGS: tuple[tuple[str, int, float], ...] = (
    ("baseline", 1, 0.0),
    ("column-combine", 8, 0.0),
    ("column-combine-pruning", 8, 0.5),
)


def run(density: float | None = None, array_rows: int = 32, array_cols: int = 32,
        width_multiplier: int = 6, seed: int = 0, grouping_engine: str = "fast",
        prune_engine: str = "fast", workers: int = 1) -> dict[str, Any]:
    """Count per-layer tiles for the three parameter settings."""
    density = density if density is not None else PAPER_DENSITY["resnet20"]
    layers = sparse_network("resnet20", density=density, seed=seed,
                            width_multiplier=width_multiplier)
    per_setting: dict[str, list[int]] = {}
    layer_names: list[str] = [shape.name for shape, _ in layers]
    with shared_packing_pool(workers) as pool:
        for setting, alpha, gamma in SETTINGS:
            pipeline = packing_pipeline(alpha=alpha, gamma=gamma,
                                        grouping_engine=grouping_engine,
                                        prune_engine=prune_engine,
                                        array_rows=array_rows, array_cols=array_cols,
                                        workers=workers, pool=pool)
            per_setting[setting] = pipeline.run(layers).tiles_after()
    largest = max(range(len(layers)), key=lambda i: per_setting["baseline"][i])
    largest_reduction = (per_setting["baseline"][largest]
                         / max(1, per_setting["column-combine-pruning"][largest]))
    return {
        "experiment": "fig15a",
        "density": density,
        "layer_names": layer_names,
        "tiles": per_setting,
        "total_tiles": {name: sum(counts) for name, counts in per_setting.items()},
        "largest_layer_index": largest,
        "largest_layer_tile_reduction": largest_reduction,
    }


def main(workers: int = 1) -> dict[str, Any]:
    result = run(workers=workers)
    tiles = result["tiles"]
    rows = [
        (index + 1, name, tiles["baseline"][index], tiles["column-combine"][index],
         tiles["column-combine-pruning"][index])
        for index, name in enumerate(result["layer_names"])
    ]
    print("Figure 15a — tiles per ResNet-20 layer on a 32x32 systolic array")
    print(format_table(["layer", "name", "baseline", "combine (gamma=0)",
                        "combine-prune (gamma=0.5)"], rows))
    totals = result["total_tiles"]
    print(f"totals: baseline={totals['baseline']}, combine={totals['column-combine']}, "
          f"combine-prune={totals['column-combine-pruning']}")
    print(f"largest-layer tile reduction: {result['largest_layer_tile_reduction']:.1f}x "
          "(paper: ~5x)")
    return result


if __name__ == "__main__":
    main()
