"""Figure 13c — impact of the limited-conflict condition (γ).

Sweeps γ over {0.1, 0.3, 0.5, 0.7, 0.9} with α = 8 and β = 20% and reports
classification accuracy and utilization efficiency.  Expected shape, as in
the paper: utilization rises sharply from γ = 0.1 to γ = 0.5 and then
saturates, while accuracy changes only slightly because each
column-combine pruning round is followed by retraining.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.experiments.common import (
    FAST_RUN,
    combine_config,
    format_table,
    run_column_combining,
)
from repro.utils.config import RunConfig

DEFAULT_GAMMAS: tuple[float, ...] = (0.1, 0.3, 0.5, 0.7, 0.9)


def run(run_config: RunConfig | None = None, model_name: str = "resnet20",
        gammas: Sequence[float] = DEFAULT_GAMMAS, alpha: int = 8,
        beta: float = 0.20) -> dict[str, Any]:
    """Run the γ sweep and return accuracy / utilization per γ."""
    run_config = run_config if run_config is not None else FAST_RUN
    points: list[dict[str, Any]] = []
    for gamma in gammas:
        cc_config = combine_config(run_config, alpha=alpha, beta=beta, gamma=gamma)
        result = run_column_combining(model_name, run_config, cc_config)
        points.append({
            "gamma": gamma,
            "accuracy": result["final_accuracy"],
            "utilization": result["utilization"],
            "nonzeros": result["final_nonzeros"],
        })
    return {
        "experiment": "fig13c",
        "model": model_name,
        "alpha": alpha,
        "beta": beta,
        "points": points,
    }


def main() -> dict[str, Any]:
    result = run()
    rows = [(p["gamma"], p["accuracy"], p["utilization"], p["nonzeros"])
            for p in result["points"]]
    print(f"Figure 13c — impact of gamma ({result['model']}, alpha={result['alpha']})")
    print(format_table(["gamma", "accuracy", "utilization", "nonzeros"], rows))
    return result


if __name__ == "__main__":
    main()
