"""Full-size filter-matrix workloads for the structural / hardware experiments.

The tile-count, energy, and latency experiments (Figures 14b-16, Tables 1-3)
depend only on the *shapes* and *sparsity patterns* of each layer's filter
matrix, not on trained weight values.  This module defines the full-size
layer shapes of the three networks the paper evaluates and generates sparse
filter matrices at the paper's reported density so those experiments run at
the paper's scale even though training runs on scaled-down models.

* LeNet-5 uses the classical layer shapes in N x (M*K*K) matrix form
  (Figure 1b), since the paper deploys its fully connected layers on the
  same arrays.
* The ResNet-20 shift-convolution variant uses a width multiplier of 6, so
  that its first-stage layers are 96-channel filter matrices — matching the
  96 x 94 third-layer example of Figure 14b — and 20 packable layers exist.
* The VGG variant uses the paper's CIFAR-scale stage widths.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LayerShape:
    """Shape of one layer's filter matrix (rows = filters, cols = inputs)."""

    name: str
    rows: int
    cols: int
    #: linear spatial size of the layer's output activation map.
    spatial: int


def lenet5_layer_shapes(image_size: int = 32) -> list[LayerShape]:
    """Classic LeNet-5 layers in filter-matrix form (conv as N x M*K*K).

    With the default 32x32 input (28x28 MNIST digits padded to 32, as in
    the original LeNet-5), the layer sizes are the classic ones: conv1
    6x25, conv2 16x150, fc1 120x400, fc2 84x120, fc3 10x84 — about 61.5K
    weights in total.
    """
    conv1_out = image_size - 4
    pooled1 = conv1_out // 2
    conv2_out = pooled1 - 4
    pooled2 = conv2_out // 2
    return [
        LayerShape("conv1", 6, 1 * 5 * 5, conv1_out),
        LayerShape("conv2", 16, 6 * 5 * 5, conv2_out),
        LayerShape("fc1", 120, 16 * pooled2 * pooled2, 1),
        LayerShape("fc2", 84, 120, 1),
        LayerShape("fc3", 10, 84, 1),
    ]


def resnet20_layer_shapes(width_multiplier: int = 6, image_size: int = 32
                          ) -> list[LayerShape]:
    """Shift + pointwise ResNet-20 layer shapes (20 weight layers).

    Stage widths are (16, 32, 64) x ``width_multiplier``; with the default
    multiplier the first-stage filter matrices are 96 x 96, matching the
    96-row third-layer example in Figure 14b of the paper.  As in the
    standard ResNet-20 layer count, the 20 layers are the stem, the 18
    block convolutions, and the final classifier matrix.
    """
    widths = [16 * width_multiplier, 32 * width_multiplier, 64 * width_multiplier]
    spatials = [image_size, image_size // 2, image_size // 4]
    shapes: list[LayerShape] = [LayerShape("stem", widths[0], 3, image_size)]
    in_channels = widths[0]
    for stage, (width, spatial) in enumerate(zip(widths, spatials)):
        for block in range(3):
            shapes.append(LayerShape(f"s{stage}b{block}c1", width, in_channels, spatial))
            shapes.append(LayerShape(f"s{stage}b{block}c2", width, width, spatial))
            in_channels = width
    shapes.append(LayerShape("fc", 10, widths[-1], 1))
    return shapes


def vgg_layer_shapes(image_size: int = 32) -> list[LayerShape]:
    """VGG-style CIFAR network in shift + pointwise form (8 conv layers)."""
    widths = [(64, 2), (128, 2), (256, 2), (512, 2)]
    shapes: list[LayerShape] = []
    in_channels = 3
    spatial = image_size
    for stage, (width, repeats) in enumerate(widths):
        for conv in range(repeats):
            shapes.append(LayerShape(f"s{stage}c{conv}", width, in_channels, spatial))
            in_channels = width
        spatial = max(1, spatial // 2)
    return shapes


NETWORK_SHAPES = {
    "lenet5": lenet5_layer_shapes,
    "resnet20": resnet20_layer_shapes,
    "vgg": vgg_layer_shapes,
}


def sparse_filter_matrix(rows: int, cols: int, density: float,
                         rng: np.random.Generator) -> np.ndarray:
    """Random sparse filter matrix with the given fraction of nonzeros.

    Nonzero values are drawn from a normal distribution (as trained CNN
    weights approximately are); at least one nonzero is placed per row so
    every filter does some work, matching trained pruned networks where a
    completely dead filter would have been removed.
    """
    if not 0.0 < density <= 1.0:
        raise ValueError("density must be in (0, 1]")
    values = rng.normal(0.0, 1.0, size=(rows, cols))
    mask = rng.random((rows, cols)) < density
    # Guarantee one nonzero per row.
    empty_rows = np.flatnonzero(~mask.any(axis=1))
    if empty_rows.size:
        mask[empty_rows, rng.integers(0, cols, size=empty_rows.size)] = True
    return values * mask


def sparse_network(network: str, density: float = 0.12, seed: int = 0,
                   **shape_kwargs) -> list[tuple[LayerShape, np.ndarray]]:
    """Full-size sparse filter matrices for every layer of a network."""
    if network not in NETWORK_SHAPES:
        raise KeyError(f"unknown network {network!r}; known: {sorted(NETWORK_SHAPES)}")
    rng = np.random.default_rng(seed)
    shapes = NETWORK_SHAPES[network](**shape_kwargs)
    return [(shape, sparse_filter_matrix(shape.rows, shape.cols, density, rng))
            for shape in shapes]


def spatial_sizes(layers: list[tuple[LayerShape, np.ndarray]]) -> list[int]:
    """Per-layer linear activation-map sizes for the systolic planners.

    Fully connected layers carry ``spatial=0`` in some shape tables but
    stream one vector per sample, so sizes are clamped to at least 1 —
    the single place that convention lives (the CLI, fig16, table3, and
    the golden harness all plan with these sizes).
    """
    return [max(1, shape.spatial) for shape, _ in layers]


#: Approximate per-layer nonzero density of the paper's pruned networks
#: ("as low as 10% nonzero in each convolution layer"; the Figure 14b layer
#: has 16% nonzeros).
PAPER_DENSITY = {
    "lenet5": 0.13,
    "resnet20": 0.16,
    "vgg": 0.10,
}
