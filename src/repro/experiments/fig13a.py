"""Figure 13a — iterative training with column combining.

Trains ResNet-20 (scaled) with Algorithm 1 at the paper's parameters
(α = 8, β = 20%, γ = 0.5) and reports classification accuracy and nonzero
weight count per epoch, with the epochs at which pruning occurred.  The
expected shape matches the paper: the first pruning round removes the most
weights, accuracy dips after each pruning round and recovers with
retraining, and the final fine-tuning phase adds a last accuracy bump.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import (
    FAST_RUN,
    combine_config,
    format_table,
    history_series,
    run_column_combining,
)
from repro.utils.config import RunConfig


def run(run_config: RunConfig | None = None, model_name: str = "resnet20",
        alpha: int = 8, beta: float = 0.20, gamma: float = 0.5) -> dict[str, Any]:
    """Run the Figure 13a experiment and return its series."""
    run_config = run_config if run_config is not None else FAST_RUN
    cc_config = combine_config(run_config, alpha=alpha, beta=beta, gamma=gamma)
    result = run_column_combining(model_name, run_config, cc_config)
    series = history_series(result["history"])
    first_round_drop = 0
    nonzeros = series["nonzeros"]
    if len(nonzeros) >= 2:
        first_round_drop = nonzeros[0] - nonzeros[1]
    return {
        "experiment": "fig13a",
        "model": model_name,
        "alpha": alpha,
        "beta": beta,
        "gamma": gamma,
        "series": series,
        "initial_nonzeros": result["trainer"].initial_nonzeros,
        "final_nonzeros": result["final_nonzeros"],
        "final_accuracy": result["final_accuracy"],
        "utilization": result["utilization"],
        "first_round_weight_drop": first_round_drop,
    }


def main() -> dict[str, Any]:
    result = run()
    series = result["series"]
    rows = list(zip(series["epoch"], series["test_accuracy"], series["nonzeros"]))
    print("Figure 13a — iterative training with column combining "
          f"({result['model']}, alpha={result['alpha']}, gamma={result['gamma']})")
    print(format_table(["epoch", "test accuracy", "nonzero weights"], rows))
    print(f"pruning at epochs: {series['pruning_epochs']}")
    print(f"final utilization efficiency: {result['utilization']:.1%}")
    return result


if __name__ == "__main__":
    main()
