"""Table 1 — ASIC implementations of LeNet-5 on MNIST.

The paper builds two LeNet-5 design points by running Algorithm 1 to two
different nonzero-weight targets (design 1: ρ = 8K, design 2: ρ = 5K),
deploys them with 16-bit accumulation (each layer fits its own array, no
tiling), and compares accuracy, area efficiency, and energy efficiency
against SC-DCNN, CPU, GPU, SpiNNaker, and TrueNorth.

This reproduction evaluates the same two design points on the analytical
ASIC model using the full-size LeNet-5 layer shapes at the corresponding
densities, and reports the paper's prior-art rows alongside.  Accuracy
comes from running Algorithm 1 on the scaled MNIST-like substrate at the
matching sparsity targets.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import (
    FAST_RUN,
    combine_config,
    format_table,
    packing_pipeline,
    run_column_combining,
)
from repro.experiments.workloads import lenet5_layer_shapes, sparse_filter_matrix
from repro.hardware.asic import ASICDesign, ASICReport, evaluate_asic
from repro.hardware.reference import TABLE1_ROWS
from repro.systolic.array import ArrayConfig
from repro.systolic.system import SystolicSystem
from repro.utils.config import RunConfig

import numpy as np

#: The two design points: name -> target fraction of nonzero weights kept.
#: LeNet-5 has ~61.5K weights, so 8K and 5K correspond to ~13% and ~8%.
DESIGNS: dict[str, float] = {"design 1": 0.13, "design 2": 0.081}


def _plan_lenet(density: float, alpha: int, gamma: float, accumulation_bits: int,
                seed: int = 0, workers: int = 1):
    """Pack the full-size LeNet-5 layers and plan per-layer (untiled) arrays."""
    shapes = lenet5_layer_shapes(image_size=32)
    rng = np.random.default_rng(seed)
    layers = [(shape, sparse_filter_matrix(shape.rows, shape.cols, density, rng))
              for shape in shapes]
    pipeline = packing_pipeline(alpha=alpha, gamma=gamma, workers=workers)
    result = pipeline.run(layers)
    packed_layers = result.packed_layers()
    spatial_sizes = [max(1, shape.spatial) for shape in shapes]
    max_rows = max(1, max(layer.rows for layer in result.layers))
    max_groups = max(1, max(layer.columns_after for layer in result.layers))
    # Each layer fits entirely into its systolic array (Section 7.1.2), so
    # size the array to the largest packed layer.
    config = ArrayConfig(rows=max_rows, cols=max_groups, alpha=alpha,
                         accumulation_bits=accumulation_bits)
    system = SystolicSystem(config)
    return system.plan_model(packed_layers, spatial_sizes)


def run(run_config: RunConfig | None = None, alpha: int = 8, gamma: float = 0.5,
        accumulation_bits: int = 16, include_accuracy: bool = True,
        seed: int = 0, workers: int = 1) -> dict[str, Any]:
    """Evaluate the two LeNet-5 ASIC design points and collect Table 1."""
    run_config = run_config if run_config is not None else FAST_RUN
    measured: dict[str, ASICReport] = {}
    accuracies: dict[str, float] = {}
    for name, density in DESIGNS.items():
        plan = _plan_lenet(density, alpha, gamma, accumulation_bits, seed=seed,
                           workers=workers)
        accuracy = float("nan")
        if include_accuracy:
            cc_config = combine_config(run_config, alpha=alpha, gamma=gamma,
                                       target_fraction=density)
            trained = run_column_combining("lenet5", run_config, cc_config)
            accuracy = trained["final_accuracy"]
        design = ASICDesign(name=f"ours ({name})", accumulation_bits=accumulation_bits,
                            array_rows=128, array_cols=32, alpha=alpha,
                            sram_kilobytes=16.0)
        measured[name] = evaluate_asic(design, plan, "lenet5", accuracy)
        accuracies[name] = accuracy
    return {
        "experiment": "table1",
        "measured": measured,
        "accuracies": accuracies,
        "paper_rows": TABLE1_ROWS,
    }


def main(include_accuracy: bool = True, workers: int = 1) -> dict[str, Any]:
    result = run(include_accuracy=include_accuracy, workers=workers)
    rows = []
    for name, report in result["measured"].items():
        rows.append((f"Ours ({name}) [measured]", f"{report.accuracy:.3f}",
                     f"{report.area_efficiency:.0f}", f"{report.energy_efficiency_fpj:.0f}"))
    for row in result["paper_rows"]:
        rows.append((f"{row.platform} [paper]", f"{row.accuracy_percent:.2f}%",
                     "N/A" if row.area_efficiency is None else f"{row.area_efficiency:.1f}",
                     f"{row.energy_efficiency:.1f}"))
    print("Table 1 — ASIC implementations of LeNet-5 (measured vs paper-reported)")
    print(format_table(["platform", "accuracy", "area efficiency", "energy efficiency"], rows))
    return result


if __name__ == "__main__":
    main()
