"""Table 3 and Section 7.4 — end-to-end latency with cross-layer pipelining.

Deploys every layer of the column-combined network in its own systolic
array and compares the end-to-end single-sample latency with and without
cross-layer pipelining, then places the pipelined latency next to the
paper's CPU / GPU / FPGA comparison rows.  The paper reports pipelining
reductions of 3.5x for LeNet-5 and 9.3x for ResNet-20, and an end-to-end
ResNet-20 latency of 55.68 microseconds — over 12x better than the next
best prior implementation.
"""

from __future__ import annotations

from typing import Any

from repro.experiments.common import format_table, packing_pipeline, shared_packing_pool
from repro.experiments.workloads import PAPER_DENSITY, sparse_network, spatial_sizes
from repro.hardware.reference import TABLE3_ROWS
from repro.systolic.pipeline import (
    LayerLatency,
    layer_latency,
    pipeline_latency,
    pipeline_speedup,
    sequential_latency,
)
from repro.systolic.timing import CellTiming


def network_latencies(network: str, alpha: int = 8, gamma: float = 0.5,
                      accumulation_bits: int = 32, seed: int = 0,
                      workers: int = 1, pool=None,
                      **shape_kwargs) -> list[LayerLatency]:
    """Per-layer latencies of the packed network on per-layer arrays.

    ``pool`` lends a shared executor to the packing pipeline (see
    :func:`repro.experiments.common.shared_packing_pool`).
    """
    density = PAPER_DENSITY[network]
    layers = sparse_network(network, density=density, seed=seed, **shape_kwargs)
    timing = CellTiming(accumulation_bits=accumulation_bits)
    with packing_pipeline(alpha=alpha, gamma=gamma, workers=workers,
                          pool=pool) as pipeline:
        packed = pipeline.run(layers)
    return [layer_latency(shape.name, layer.rows, layer.columns_after,
                          spatial, timing)
            for (shape, _), layer, spatial
            in zip(layers, packed.layers, spatial_sizes(layers))]


def run(frequency_hz: float = 1.5e8, alpha: int = 8, gamma: float = 0.5,
        seed: int = 0, workers: int = 1) -> dict[str, Any]:
    """Compute pipelined / sequential latencies for LeNet-5 and ResNet-20."""
    results: dict[str, Any] = {}
    with shared_packing_pool(workers) as pool:
        for network, kwargs, accumulation in (
            ("lenet5", {"image_size": 32}, 16),
            ("resnet20", {"width_multiplier": 6, "image_size": 32}, 32),
        ):
            latencies = network_latencies(network, alpha=alpha, gamma=gamma,
                                          accumulation_bits=accumulation, seed=seed,
                                          workers=workers, pool=pool, **kwargs)
            sequential = sequential_latency(latencies)
            pipelined = pipeline_latency(latencies)
            results[network] = {
                "sequential_cycles": sequential,
                "pipelined_cycles": pipelined,
                "speedup": pipeline_speedup(latencies),
                "sequential_us": sequential / frequency_hz * 1e6,
                "pipelined_us": pipelined / frequency_hz * 1e6,
            }
    return {
        "experiment": "table3",
        "frequency_hz": frequency_hz,
        "networks": results,
        "paper_rows": TABLE3_ROWS,
        "paper_speedups": {"lenet5": 3.5, "resnet20": 9.3},
    }


def main(workers: int = 1) -> dict[str, Any]:
    result = run(workers=workers)
    rows = []
    for network, values in result["networks"].items():
        rows.append((network, f"{values['sequential_us']:.1f}",
                     f"{values['pipelined_us']:.1f}", f"{values['speedup']:.1f}x",
                     f"{result['paper_speedups'][network]:.1f}x"))
    print("Section 7.4 — cross-layer pipelining latency (per-layer systolic arrays)")
    print(format_table(["network", "sequential (us)", "pipelined (us)",
                        "measured speedup", "paper speedup"], rows))

    latency_rows = [("Ours (ResNet-20, pipelined) [measured]", "",
                     f"{result['networks']['resnet20']['pipelined_us']:.1f}")]
    for row in result["paper_rows"]:
        latency = f"{row.latency_microseconds:.2f}"
        if row.latency_is_lower_bound:
            latency = ">" + latency
        latency_rows.append((f"{row.platform} [paper]", f"{row.accuracy_percent:.2f}%",
                             latency))
    print("Table 3 — end-to-end single-sample latency for CIFAR-10")
    print(format_table(["platform", "accuracy", "latency (us/frame)"], latency_rows))
    return result


if __name__ == "__main__":
    main()
