"""Accuracy-vs-bits sweep for quantized packed inference (the serving path).

The paper's end-to-end deployment story is quantized execution: packed
filter matrices run on the systolic array with 8-bit bit-serial MACs,
32-bit accumulation, and ReLU + re-quantization between layers
(Sections 2.5 and 7).  This experiment sweeps the cell bit width of that
path over the LeNet-5 / VGG / ResNet-20 substrates and reports, per
width:

* **agreement** — fraction of top-1 predictions matching the exact
  (float, conflict-pruned) packed forward, i.e. how much classification
  behaviour the integer pipeline preserves;
* **accuracy** — top-1 accuracy against the synthetic test labels;
* **output RMSE** — logit divergence from the exact forward;
* **quantized cycles** — the bit-serial cycle cost actually incurred by
  the forward (lower widths stream fewer cycles per word), which is the
  accuracy side of the paper's accuracy-vs-hardware-cost trade.

Expected shape: 8 bits is indistinguishable from the float packed
forward (>= 95% agreement, the documented serving tolerance), agreement
decays monotonically-ish as bits shrink, and cycles fall roughly
linearly with the width — the 2-4 bit points are where the percentile
calibration option earns its keep.

Each network's layers pack through one :class:`PackingPipeline`
(``workers`` fans the per-layer packing over the shared process pool;
results are identical to a serial run), and one :class:`PackedModel` per
network is shared by every bit width, so the sweep re-quantizes but
never re-packs.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.combining import PackedModel, QuantizedPackedModel
from repro.experiments.common import (
    DATASET_FOR_MODEL,
    FAST_RUN,
    format_table,
    packing_pipeline,
    prepare_data,
    prepare_model,
    shared_packing_pool,
)
from repro.utils.config import RunConfig

#: Cell bit widths swept (the paper's arrays are 8-bit; 2-6 probe the floor).
BITS_SWEEP: tuple[int, ...] = (2, 3, 4, 6, 8)

NETWORKS: tuple[str, ...] = ("lenet5", "vgg", "resnet20")

#: Forward chunk size — bounds the (rows x groups x words) gather buffers
#: the tiled MX execution allocates per tile.
FORWARD_BATCH_SIZE = 32


def sparsified_model(network: str, run_config: RunConfig, density: float = 0.5,
                     seed: int = 0):
    """A scaled network whose packable weights are randomly sparsified.

    Stands in for a magnitude-pruned checkpoint: the packable filter
    matrices keep ``density`` of their weights (seeded mask), the regime
    where column combining + quantized packed execution is evaluated.
    """
    model = prepare_model(network, run_config)
    mask_rng = np.random.default_rng((seed, 17))
    for _, layer in model.packable_layers():
        weights = layer.weight.data
        weights *= mask_rng.random(weights.shape) < density
    return model


def sweep_packed(packed: PackedModel, calibration_images: np.ndarray,
                 eval_images: np.ndarray,
                 eval_labels: np.ndarray | None = None,
                 bits_values: Sequence[int] = BITS_SWEEP,
                 calibration: str = "max", percentile: float = 99.5,
                 batch_size: int = FORWARD_BATCH_SIZE,
                 exact_outputs: np.ndarray | None = None) -> dict[str, Any]:
    """Sweep bit widths over one packed model; the sweep's measurement core.

    Calibrates a fresh :class:`QuantizedPackedModel` per width on
    ``calibration_images`` (all widths share ``packed``, so packing work
    and the realized-matrix caches are reused) and evaluates it on
    ``eval_images`` against the exact packed forward — pass
    ``exact_outputs`` if the caller already ran it.
    """
    if exact_outputs is None:
        exact_outputs = packed.forward(eval_images, batch_size=batch_size)
    exact_predictions = np.argmax(exact_outputs, axis=1)
    result: dict[str, Any] = {"points": []}
    if eval_labels is not None:
        result["exact_accuracy"] = float(np.mean(exact_predictions == eval_labels))
    for bits in bits_values:
        quantized = QuantizedPackedModel(packed, bits=bits,
                                         calibration=calibration,
                                         percentile=percentile)
        quantized.calibrate(calibration_images)
        outputs = quantized.forward(eval_images, batch_size=batch_size)
        predictions = np.argmax(outputs, axis=1)
        summary = quantized.summary()
        reports = quantized.layer_report()
        point: dict[str, Any] = {
            "bits": bits,
            "agreement": float(np.mean(predictions == exact_predictions)),
            "output_rmse": float(np.sqrt(np.mean((outputs - exact_outputs) ** 2))),
            "quantized_cycles": summary["quantized_cycles"],
            "quantized_tiles": summary["quantized_tiles"],
            "divergence_rmse": summary["divergence_rmse"],
            "max_input_saturation": max(r.input_saturation for r in reports),
        }
        if eval_labels is not None:
            point["accuracy"] = float(np.mean(predictions == eval_labels))
        result["points"].append(point)
    return result


def run(networks: Sequence[str] = NETWORKS,
        bits_values: Sequence[int] = BITS_SWEEP,
        run_config: RunConfig | None = None, density: float = 0.5,
        calibration: str = "max", percentile: float = 99.5,
        calibration_samples: int = 64, eval_samples: int | None = None,
        alpha: int = 8, gamma: float = 0.5, workers: int = 1,
        grouping_engine: str = "fast", prune_engine: str = "fast",
        seed: int = 0) -> dict[str, Any]:
    """Run the accuracy-vs-bits sweep for every requested network."""
    run_config = run_config if run_config is not None else FAST_RUN
    results: dict[str, Any] = {}
    with shared_packing_pool(workers) as pool:
        with packing_pipeline(alpha=alpha, gamma=gamma,
                              grouping_engine=grouping_engine,
                              prune_engine=prune_engine,
                              workers=workers, seed=seed,
                              pool=pool) as pipeline:
            for network in networks:
                model = sparsified_model(network, run_config,
                                         density=density, seed=seed)
                train, test = prepare_data(DATASET_FOR_MODEL[network],
                                           run_config)
                packed = PackedModel.from_model(model, pipeline=pipeline)
                eval_images, eval_labels = test.images, test.labels
                if eval_samples is not None:
                    eval_images = eval_images[:eval_samples]
                    eval_labels = eval_labels[:eval_samples]
                results[network] = sweep_packed(
                    packed,
                    calibration_images=train.images[:calibration_samples],
                    eval_images=eval_images, eval_labels=eval_labels,
                    bits_values=bits_values, calibration=calibration,
                    percentile=percentile)
    return {
        "experiment": "quant_sweep",
        "density": density,
        "calibration": calibration,
        "bits": list(bits_values),
        "results": results,
    }


def main(workers: int = 1, networks: Sequence[str] = NETWORKS,
         **kwargs: Any) -> dict[str, Any]:
    result = run(networks=networks, workers=workers, **kwargs)
    rows = []
    for network, sweep in result["results"].items():
        for point in sweep["points"]:
            rows.append((network, point["bits"],
                         f"{point['agreement']:.1%}",
                         f"{point.get('accuracy', float('nan')):.3f}",
                         f"{point['output_rmse']:.2e}",
                         point["quantized_cycles"]))
    print("Quantized packed inference — accuracy vs bits "
          f"(calibration={result['calibration']}, density={result['density']:.0%})")
    print(format_table(
        ["network", "bits", "agreement", "accuracy", "output rmse",
         "quantized cycles"], rows))
    return result


if __name__ == "__main__":
    main()
