"""Figure 15b — column combining with limited training data (Section 6).

Compares two ways of producing a column-combined ResNet-20 when only a
fraction of the training data is available to the vendor:

* *new model* — train from random initialization with Algorithm 1 on the
  data fraction;
* *pretrained model* — start from a dense model trained on the full
  dataset (the customer's model), then run Algorithm 1 on the fraction.

Expected shape: at very small fractions the pretrained model is far ahead
(the paper reports a 15-point gap at 1%); the gap closes as the fraction
grows, and the pretrained model reaches high accuracy with a much smaller
fraction than the newly trained one.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.combining.trainer import ColumnCombineTrainer, train_dense
from repro.experiments.common import (
    FAST_RUN,
    combine_config,
    format_table,
    prepare_data,
    prepare_model,
)
from repro.nn.serialization import load_state_dict, state_dict
from repro.utils.config import RunConfig
from repro.utils.seeding import seed_everything

DEFAULT_FRACTIONS: tuple[float, ...] = (0.05, 0.1, 0.25, 0.5, 1.0)


def run(run_config: RunConfig | None = None, model_name: str = "resnet20",
        fractions: Sequence[float] = DEFAULT_FRACTIONS,
        pretrain_epochs: int = 4) -> dict[str, Any]:
    """Compare new-model vs pretrained-model column combining across data fractions."""
    run_config = run_config if run_config is not None else FAST_RUN
    seed_everything(run_config.seed)
    train, test = prepare_data("cifar10", run_config)

    # The customer's dense model, trained once on the full training set.
    pretrained = prepare_model(model_name, run_config)
    train_dense(pretrained, train, test, epochs=pretrain_epochs, lr=0.1,
                seed=run_config.seed)
    pretrained_state = state_dict(pretrained)

    points: list[dict[str, Any]] = []
    for fraction in fractions:
        subset = train.fraction(fraction, rng=np.random.default_rng(run_config.seed))
        results: dict[str, float] = {}
        for variant in ("new", "pretrained"):
            model = prepare_model(model_name, run_config)
            if variant == "pretrained":
                load_state_dict(model, pretrained_state)
            cc_config = combine_config(run_config)
            trainer = ColumnCombineTrainer(model, subset, test, cc_config)
            history = trainer.run()
            results[variant] = history.final_accuracy
        points.append({
            "fraction": fraction,
            "new_model_accuracy": results["new"],
            "pretrained_model_accuracy": results["pretrained"],
        })
    return {
        "experiment": "fig15b",
        "model": model_name,
        "points": points,
    }


def main() -> dict[str, Any]:
    result = run()
    rows = [(f"{p['fraction']:.0%}", p["new_model_accuracy"], p["pretrained_model_accuracy"])
            for p in result["points"]]
    print("Figure 15b — column combining with limited training data")
    print(format_table(["data fraction", "new model accuracy", "pretrained model accuracy"],
                       rows))
    return result


if __name__ == "__main__":
    main()
