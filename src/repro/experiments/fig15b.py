"""Figure 15b — column combining with limited training data (Section 6).

Compares two ways of producing a column-combined ResNet-20 when only a
fraction of the training data is available to the vendor:

* *new model* — train from random initialization with Algorithm 1 on the
  data fraction;
* *pretrained model* — start from a dense model trained on the full
  dataset (the customer's model), then run Algorithm 1 on the fraction.

Expected shape: at very small fractions the pretrained model is far ahead
(the paper reports a 15-point gap at 1%); the gap closes as the fraction
grows, and the pretrained model reaches high accuracy with a much smaller
fraction than the newly trained one.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.combining.pipeline import ordered_pool_map
from repro.combining.trainer import ColumnCombineTrainer, train_dense
from repro.experiments.common import (
    FAST_RUN,
    combine_config,
    format_table,
    prepare_data,
    prepare_model,
)
from repro.nn.serialization import load_state_dict, state_dict
from repro.utils.config import RunConfig
from repro.utils.seeding import seed_everything

DEFAULT_FRACTIONS: tuple[float, ...] = (0.05, 0.1, 0.25, 0.5, 1.0)


#: Shared read-only context of one sweep: installed once per worker process
#: by :func:`_install_sweep_context` (via ``ordered_pool_map``'s
#: initializer) instead of being pickled into every task.
_SWEEP_CONTEXT: dict = {}


def _install_sweep_context(train, test, pretrained_state) -> None:
    _SWEEP_CONTEXT["train"] = train
    _SWEEP_CONTEXT["test"] = test
    _SWEEP_CONTEXT["pretrained_state"] = pretrained_state


def _train_point(task: tuple[RunConfig, str, float, str]) -> float:
    """Train one (fraction, variant) cell of the sweep and return its accuracy.

    Module-level and fully seeded from its arguments plus the installed
    sweep context, so the sweep can fan the grid out over a process pool
    and every cell computes the same number no matter which worker (or
    the serial path) runs it.
    """
    run_config, model_name, fraction, variant = task
    train, test = _SWEEP_CONTEXT["train"], _SWEEP_CONTEXT["test"]
    seed_everything(run_config.seed)
    subset = train.fraction(fraction, rng=np.random.default_rng(run_config.seed))
    model = prepare_model(model_name, run_config)
    if variant == "pretrained":
        load_state_dict(model, _SWEEP_CONTEXT["pretrained_state"])
    trainer = ColumnCombineTrainer(model, subset, test, combine_config(run_config))
    return trainer.run().final_accuracy


def run(run_config: RunConfig | None = None, model_name: str = "resnet20",
        fractions: Sequence[float] = DEFAULT_FRACTIONS,
        pretrain_epochs: int = 4, workers: int = 1) -> dict[str, Any]:
    """Compare new-model vs pretrained-model column combining across data fractions."""
    run_config = run_config if run_config is not None else FAST_RUN
    seed_everything(run_config.seed)
    train, test = prepare_data("cifar10", run_config)

    # The customer's dense model, trained once on the full training set.
    pretrained = prepare_model(model_name, run_config)
    train_dense(pretrained, train, test, epochs=pretrain_epochs, lr=0.1,
                seed=run_config.seed)
    pretrained_state = state_dict(pretrained)

    tasks = [(run_config, model_name, fraction, variant)
             for fraction in fractions
             for variant in ("new", "pretrained")]
    accuracies = ordered_pool_map(_train_point, tasks, workers,
                                  initializer=_install_sweep_context,
                                  initargs=(train, test, pretrained_state))
    points = [{
        "fraction": fraction,
        "new_model_accuracy": accuracies[2 * index],
        "pretrained_model_accuracy": accuracies[2 * index + 1],
    } for index, fraction in enumerate(fractions)]
    return {
        "experiment": "fig15b",
        "model": model_name,
        "points": points,
    }


def main(workers: int = 1) -> dict[str, Any]:
    result = run(workers=workers)
    rows = [(f"{p['fraction']:.0%}", p["new_model_accuracy"], p["pretrained_model_accuracy"])
            for p in result["points"]]
    print("Figure 15b — column combining with limited training data")
    print(format_table(["data fraction", "new model accuracy", "pretrained model accuracy"],
                       rows))
    return result


if __name__ == "__main__":
    main()
