"""Section 7.2 — optimality in energy efficiency.

Reproduces the paper's analysis that the ratio of achieved to optimal
energy efficiency is ``(1/c + r) / (1 + r)``, which approaches the packing
efficiency ``1/c`` when the memory-to-compute energy ratio ``r`` is small
(r = 0.06 for LeNet-5 and r = 0.1 for ResNet-20 in the paper), and checks
the paper's example: a 94.5% packing efficiency puts the design at ~94.5%
of the optimal energy efficiency.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.experiments.common import format_table
from repro.hardware.optimality import energy_efficiency_ratio, ratio_from_packing_efficiency

DEFAULT_PACKING: tuple[float, ...] = (0.25, 0.5, 0.75, 0.9, 0.945, 1.0)
DEFAULT_R: tuple[float, ...] = (0.0, 0.06, 0.1, 0.5, 1.0)


def run(packing_efficiencies: Sequence[float] = DEFAULT_PACKING,
        memory_ratios: Sequence[float] = DEFAULT_R) -> dict[str, Any]:
    """Tabulate the efficiency ratio over packing efficiency and r."""
    grid: list[dict[str, float]] = []
    for packing in packing_efficiencies:
        for r in memory_ratios:
            grid.append({
                "packing_efficiency": packing,
                "r": r,
                "efficiency_ratio": ratio_from_packing_efficiency(packing, r),
            })
    paper_example = {
        "lenet5": energy_efficiency_ratio(1.0 / 0.945, 0.06),
        "resnet20": energy_efficiency_ratio(1.0 / 0.945, 0.1),
    }
    return {
        "experiment": "sec7.2",
        "grid": grid,
        "paper_example": paper_example,
    }


def main() -> dict[str, Any]:
    result = run()
    rows = [(f"{g['packing_efficiency']:.1%}", g["r"], f"{g['efficiency_ratio']:.1%}")
            for g in result["grid"]]
    print("Section 7.2 — achieved / optimal energy efficiency")
    print(format_table(["packing efficiency (1/c)", "r = Emem/Ecomp", "efficiency ratio"],
                       rows))
    example = result["paper_example"]
    print(f"paper example (94.5% packing): LeNet-5 r=0.06 -> {example['lenet5']:.1%}, "
          f"ResNet-20 r=0.1 -> {example['resnet20']:.1%} (paper: ~94.5% of optimal)")
    return result


if __name__ == "__main__":
    main()
