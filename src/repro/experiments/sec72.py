"""Section 7.2 — optimality in energy efficiency.

Reproduces the paper's analysis that the ratio of achieved to optimal
energy efficiency is ``(1/c + r) / (1 + r)``, which approaches the packing
efficiency ``1/c`` when the memory-to-compute energy ratio ``r`` is small
(r = 0.06 for LeNet-5 and r = 0.1 for ResNet-20 in the paper), and checks
the paper's example: a 94.5% packing efficiency puts the design at ~94.5%
of the optimal energy efficiency.

Beyond the analytic grid, the runner *measures* ``1/c`` instead of only
tabulating assumed values: the full-size LeNet-5 and ResNet-20 workloads
run through the :class:`~repro.combining.pipeline.PackingPipeline` (α=8,
γ=0.5, the paper's setting) and are assembled into a
:class:`~repro.combining.inference.PackedModel`, whose cell-weighted
packing efficiency feeds the same ratio formula.  ``workers`` fans the
per-layer packing out over the pipeline's persistent process pool;
``grouping_engine`` / ``prune_engine`` pick the Algorithm 2 / 3
implementations.  Results are identical for any ``workers`` value.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.combining import PackedModel
from repro.experiments.common import format_table, packing_pipeline
from repro.experiments.workloads import PAPER_DENSITY, sparse_network
from repro.hardware.optimality import energy_efficiency_ratio, ratio_from_packing_efficiency

DEFAULT_PACKING: tuple[float, ...] = (0.25, 0.5, 0.75, 0.9, 0.945, 1.0)
DEFAULT_R: tuple[float, ...] = (0.0, 0.06, 0.1, 0.5, 1.0)

#: Memory-to-compute energy ratio the paper reports per measured network.
PAPER_MEMORY_RATIO: dict[str, float] = {
    "lenet5": 0.06,
    "resnet20": 0.1,
}


def measure_packed_networks(networks: Sequence[str] = ("lenet5", "resnet20"),
                            alpha: int = 8, gamma: float = 0.5, seed: int = 0,
                            workers: int = 1, grouping_engine: str = "fast",
                            prune_engine: str = "fast") -> dict[str, dict[str, float]]:
    """Measured packing efficiency -> efficiency ratio per network.

    Packs each network's full-size sparse workload through one (pool-
    reusing) pipeline and reads the model-level packing efficiency off the
    assembled :class:`PackedModel`.  Every requested network must have a
    paper-reported memory ratio in :data:`PAPER_MEMORY_RATIO` — the ratio
    is a measured quantity, not something to guess for other networks.
    """
    missing = [network for network in networks
               if network not in PAPER_MEMORY_RATIO]
    if missing:
        raise KeyError(
            f"no paper-reported memory ratio for {missing}; known networks: "
            f"{sorted(PAPER_MEMORY_RATIO)}")
    measured: dict[str, dict[str, float]] = {}
    with packing_pipeline(alpha=alpha, gamma=gamma, workers=workers, seed=seed,
                          grouping_engine=grouping_engine,
                          prune_engine=prune_engine) as pipeline:
        for network in networks:
            layers = sparse_network(network, density=PAPER_DENSITY[network],
                                    seed=seed)
            packed_model = PackedModel.from_pipeline_result(pipeline.run(layers))
            efficiency = packed_model.packing_efficiency()
            r = PAPER_MEMORY_RATIO[network]
            measured[network] = {
                "packing_efficiency": efficiency,
                "r": r,
                "efficiency_ratio": ratio_from_packing_efficiency(efficiency, r),
                "total_nonzeros": packed_model.total_nonzeros(),
            }
    return measured


def run(packing_efficiencies: Sequence[float] = DEFAULT_PACKING,
        memory_ratios: Sequence[float] = DEFAULT_R,
        include_measured: bool = True, seed: int = 0, workers: int = 1,
        grouping_engine: str = "fast", prune_engine: str = "fast"
        ) -> dict[str, Any]:
    """Tabulate the efficiency ratio over packing efficiency and r."""
    grid: list[dict[str, float]] = []
    for packing in packing_efficiencies:
        for r in memory_ratios:
            grid.append({
                "packing_efficiency": packing,
                "r": r,
                "efficiency_ratio": ratio_from_packing_efficiency(packing, r),
            })
    paper_example = {
        "lenet5": energy_efficiency_ratio(1.0 / 0.945, 0.06),
        "resnet20": energy_efficiency_ratio(1.0 / 0.945, 0.1),
    }
    measured: dict[str, dict[str, float]] = {}
    if include_measured:
        measured = measure_packed_networks(seed=seed, workers=workers,
                                           grouping_engine=grouping_engine,
                                           prune_engine=prune_engine)
    return {
        "experiment": "sec7.2",
        "grid": grid,
        "paper_example": paper_example,
        "measured": measured,
    }


def main(workers: int = 1) -> dict[str, Any]:
    result = run(workers=workers)
    rows = [(f"{g['packing_efficiency']:.1%}", g["r"], f"{g['efficiency_ratio']:.1%}")
            for g in result["grid"]]
    print("Section 7.2 — achieved / optimal energy efficiency")
    print(format_table(["packing efficiency (1/c)", "r = Emem/Ecomp", "efficiency ratio"],
                       rows))
    example = result["paper_example"]
    print(f"paper example (94.5% packing): LeNet-5 r=0.06 -> {example['lenet5']:.1%}, "
          f"ResNet-20 r=0.1 -> {example['resnet20']:.1%} (paper: ~94.5% of optimal)")
    if result["measured"]:
        measured_rows = [(network, f"{m['packing_efficiency']:.1%}", m["r"],
                          f"{m['efficiency_ratio']:.1%}")
                         for network, m in result["measured"].items()]
        print("measured packed models (alpha=8, gamma=0.5 at paper density):")
        print(format_table(["network", "measured packing eff.", "r",
                            "efficiency ratio"], measured_rows))
    return result


if __name__ == "__main__":
    main()
