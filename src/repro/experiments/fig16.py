"""Figure 16 — throughput, tiles, energy, and accuracy for three CNNs.

For LeNet-5, VGG, and ResNet-20 under the three parameter settings of
Section 5.4 (baseline α=1/γ=0, column-combine α=8/γ=0, column-combine
pruning α=8/γ=0.5), report:

* throughput (samples per second on a 32 x 32 array at the ASIC clock),
* number of tiles across all layers,
* energy per input sample,
* classification accuracy.

The structural quantities use the full-size layer shapes at the paper's
sparsity; accuracy comes from running Algorithm 1 on the scaled training
substrate.  Expected shape: column-combine pruning reduces tiles and
energy by ~4-6x and raises throughput ~3-4x over both other settings, at
a small accuracy cost relative to the baseline.
"""

from __future__ import annotations

from typing import Any

from repro.combining import group_columns, pack_filter_matrix
from repro.experiments.common import (
    FAST_RUN,
    combine_config,
    format_table,
    run_column_combining,
)
from repro.experiments.workloads import PAPER_DENSITY, sparse_network
from repro.hardware.asic import ASICDesign, evaluate_asic
from repro.systolic.array import ArrayConfig
from repro.systolic.system import SystolicSystem
from repro.utils.config import RunConfig

SETTINGS: tuple[tuple[str, int, float], ...] = (
    ("baseline", 1, 0.0),
    ("column-combine", 8, 0.0),
    ("column-combine-pruning", 8, 0.5),
)

NETWORKS: tuple[str, ...] = ("lenet5", "vgg", "resnet20")

#: Shape keyword arguments for the full-size workloads.
SHAPE_KWARGS: dict[str, dict[str, Any]] = {
    "lenet5": {"image_size": 32},
    "vgg": {"image_size": 32},
    "resnet20": {"width_multiplier": 6, "image_size": 32},
}


def plan_setting(network: str, alpha: int, gamma: float, array_rows: int = 32,
                 array_cols: int = 32, seed: int = 0) -> dict[str, Any]:
    """Plan a full-size network execution under one parameter setting."""
    density = PAPER_DENSITY[network]
    layers = sparse_network(network, density=density, seed=seed, **SHAPE_KWARGS[network])
    config = ArrayConfig(rows=array_rows, cols=array_cols, alpha=max(alpha, 1))
    system = SystolicSystem(config)
    packed_layers = []
    spatial_sizes = []
    for shape, matrix in layers:
        grouping = group_columns(matrix, alpha=alpha, gamma=gamma)
        packed_layers.append((shape.name, pack_filter_matrix(matrix, grouping)))
        spatial_sizes.append(max(1, shape.spatial))
    plan = system.plan_model(packed_layers, spatial_sizes)
    return {"plan": plan, "tiles": plan.total_tiles, "cycles": plan.total_cycles,
            "utilization": plan.utilization}


def run(run_config: RunConfig | None = None, include_accuracy: bool = True,
        frequency_hz: float = 4.0e8, seed: int = 0) -> dict[str, Any]:
    """Run Figure 16 for all networks and settings."""
    run_config = run_config if run_config is not None else FAST_RUN
    results: dict[str, dict[str, Any]] = {}
    for network in NETWORKS:
        per_setting: dict[str, Any] = {}
        for setting, alpha, gamma in SETTINGS:
            planned = plan_setting(network, alpha, gamma, seed=seed)
            design = ASICDesign(name=setting, frequency_hz=frequency_hz)
            accuracy = float("nan")
            if include_accuracy:
                cc_config = combine_config(
                    run_config, alpha=alpha,
                    gamma=gamma if alpha > 1 else 0.0)
                trained = run_column_combining(network, run_config, cc_config)
                accuracy = trained["final_accuracy"]
            report = evaluate_asic(design, planned["plan"], network, accuracy)
            per_setting[setting] = {
                "tiles": planned["tiles"],
                "cycles": planned["cycles"],
                "utilization": planned["utilization"],
                "throughput_fps": report.throughput_fps,
                "energy_per_sample_j": report.energy_per_sample_joules,
                "accuracy": accuracy,
            }
        results[network] = per_setting
    # Relative factors of the full method vs the baseline (the paper's claims).
    factors: dict[str, dict[str, float]] = {}
    for network, per_setting in results.items():
        base = per_setting["baseline"]
        best = per_setting["column-combine-pruning"]
        factors[network] = {
            "tile_reduction": base["tiles"] / max(1, best["tiles"]),
            "energy_reduction": base["energy_per_sample_j"] / best["energy_per_sample_j"],
            "throughput_gain": best["throughput_fps"] / base["throughput_fps"],
        }
    return {"experiment": "fig16", "results": results, "factors": factors}


def main(include_accuracy: bool = True) -> dict[str, Any]:
    result = run(include_accuracy=include_accuracy)
    rows = []
    for network, per_setting in result["results"].items():
        for setting, values in per_setting.items():
            rows.append((network, setting, values["tiles"],
                         f"{values['throughput_fps']:.1f}",
                         f"{values['energy_per_sample_j'] * 1e6:.2f}",
                         f"{values['accuracy']:.3f}"))
    print("Figure 16 — ASIC comparison of the three parameter settings")
    print(format_table(["network", "setting", "tiles", "throughput (fps)",
                        "energy (uJ/sample)", "accuracy"], rows))
    factor_rows = [(network, f"{f['tile_reduction']:.1f}x", f"{f['energy_reduction']:.1f}x",
                    f"{f['throughput_gain']:.1f}x")
                   for network, f in result["factors"].items()]
    print(format_table(["network", "tile reduction", "energy reduction",
                        "throughput gain"], factor_rows))
    return result


if __name__ == "__main__":
    main()
