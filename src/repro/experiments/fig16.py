"""Figure 16 — throughput, tiles, energy, and accuracy for three CNNs.

For LeNet-5, VGG, and ResNet-20 under the three parameter settings of
Section 5.4 (baseline α=1/γ=0, column-combine α=8/γ=0, column-combine
pruning α=8/γ=0.5), report:

* throughput (samples per second on a 32 x 32 array at the ASIC clock),
* number of tiles across all layers,
* energy per input sample,
* classification accuracy.

The structural quantities use the full-size layer shapes at the paper's
sparsity; accuracy comes from running Algorithm 1 on the scaled training
substrate.  Expected shape: column-combine pruning reduces tiles and
energy by ~4-6x and raises throughput ~3-4x over both other settings, at
a small accuracy cost relative to the baseline.

Each setting's layers run through one :class:`PackingPipeline` (reused
across the three networks, so its persistent worker pool is forked once)
and are assembled into a :class:`~repro.combining.inference.PackedModel`,
whose :meth:`~repro.combining.inference.PackedModel.plan` provides the
model-level tile / cycle accounting.  ``workers`` fans the per-layer
packing out over processes; ``grouping_engine`` / ``prune_engine`` select
the Algorithm 2 / 3 implementations.  Results are identical for any
``workers`` value.
"""

from __future__ import annotations

from contextlib import ExitStack
from typing import Any

from repro.combining import PackedModel, PackingPipeline
from repro.experiments.common import (
    FAST_RUN,
    combine_config,
    format_table,
    packing_pipeline,
    run_column_combining,
    shared_packing_pool,
)
from repro.experiments.workloads import PAPER_DENSITY, sparse_network, spatial_sizes
from repro.hardware.asic import ASICDesign, evaluate_asic
from repro.systolic.array import ArrayConfig
from repro.utils.config import RunConfig

SETTINGS: tuple[tuple[str, int, float], ...] = (
    ("baseline", 1, 0.0),
    ("column-combine", 8, 0.0),
    ("column-combine-pruning", 8, 0.5),
)

NETWORKS: tuple[str, ...] = ("lenet5", "vgg", "resnet20")

#: Shape keyword arguments for the full-size workloads.
SHAPE_KWARGS: dict[str, dict[str, Any]] = {
    "lenet5": {"image_size": 32},
    "vgg": {"image_size": 32},
    "resnet20": {"width_multiplier": 6, "image_size": 32},
}


def plan_setting(network: str, alpha: int, gamma: float, array_rows: int = 32,
                 array_cols: int = 32, seed: int = 0,
                 pipeline: PackingPipeline | None = None,
                 grouping_engine: str = "fast", prune_engine: str = "fast",
                 workers: int = 1) -> dict[str, Any]:
    """Plan a full-size network execution under one parameter setting.

    Pass a ``pipeline`` (configured for the setting's α / γ) to reuse its
    persistent worker pool across networks; otherwise a temporary one is
    built from the keyword knobs and closed after the run.  A passed
    pipeline must agree with the keyword knobs — its frozen config is what
    actually packs, so a mismatch would report one setting's numbers under
    another setting's label.
    """
    density = PAPER_DENSITY[network]
    layers = sparse_network(network, density=density, seed=seed, **SHAPE_KWARGS[network])
    owns_pipeline = pipeline is None
    if pipeline is None:
        pipeline = packing_pipeline(alpha=alpha, gamma=gamma,
                                    grouping_engine=grouping_engine,
                                    prune_engine=prune_engine,
                                    array_rows=array_rows, array_cols=array_cols,
                                    workers=workers, seed=seed)
    else:
        config = pipeline.config
        mismatches = [
            f"{knob}={wanted!r} vs pipeline {getattr(config, knob)!r}"
            for knob, wanted in (("alpha", alpha), ("gamma", gamma),
                                 ("grouping_engine", grouping_engine),
                                 ("prune_engine", prune_engine),
                                 ("array_rows", array_rows),
                                 ("array_cols", array_cols),
                                 ("seed", seed),
                                 ("policy", "dense-first"))
            if getattr(config, knob) != wanted
        ]
        if mismatches:
            raise ValueError(
                "pipeline config disagrees with the requested setting: "
                + ", ".join(mismatches))
    try:
        packed_model = PackedModel.from_pipeline_result(pipeline.run(layers))
    finally:
        if owns_pipeline:
            pipeline.close()
    config = ArrayConfig(rows=array_rows, cols=array_cols, alpha=max(alpha, 1))
    plan = packed_model.plan(spatial_sizes(layers), array_config=config)
    return {"plan": plan, "tiles": plan.total_tiles, "cycles": plan.total_cycles,
            "utilization": plan.utilization, "packed_model": packed_model}


def run(run_config: RunConfig | None = None, include_accuracy: bool = True,
        frequency_hz: float = 4.0e8, seed: int = 0, workers: int = 1,
        grouping_engine: str = "fast", prune_engine: str = "fast"
        ) -> dict[str, Any]:
    """Run Figure 16 for all networks and settings."""
    run_config = run_config if run_config is not None else FAST_RUN
    results: dict[str, dict[str, Any]] = {}
    with ExitStack() as stack:
        # One worker pool lent to all three per-setting pipelines, each of
        # which is then reused across the three networks.
        pool = stack.enter_context(shared_packing_pool(workers))
        pipelines = {
            setting: stack.enter_context(packing_pipeline(
                alpha=alpha, gamma=gamma, grouping_engine=grouping_engine,
                prune_engine=prune_engine, workers=workers, seed=seed,
                pool=pool))
            for setting, alpha, gamma in SETTINGS
        }
        for network in NETWORKS:
            per_setting: dict[str, Any] = {}
            for setting, alpha, gamma in SETTINGS:
                planned = plan_setting(network, alpha, gamma, seed=seed,
                                       grouping_engine=grouping_engine,
                                       prune_engine=prune_engine,
                                       pipeline=pipelines[setting])
                design = ASICDesign(name=setting, frequency_hz=frequency_hz)
                accuracy = float("nan")
                if include_accuracy:
                    cc_config = combine_config(
                        run_config, alpha=alpha,
                        gamma=gamma if alpha > 1 else 0.0,
                        grouping_engine=grouping_engine,
                        prune_engine=prune_engine)
                    trained = run_column_combining(network, run_config, cc_config)
                    accuracy = trained["final_accuracy"]
                report = evaluate_asic(design, planned["plan"], network, accuracy)
                per_setting[setting] = {
                    "tiles": planned["tiles"],
                    "cycles": planned["cycles"],
                    "utilization": planned["utilization"],
                    "packing_efficiency": planned["packed_model"].packing_efficiency(),
                    "throughput_fps": report.throughput_fps,
                    "energy_per_sample_j": report.energy_per_sample_joules,
                    "accuracy": accuracy,
                }
            results[network] = per_setting
    # Relative factors of the full method vs the baseline (the paper's claims).
    factors: dict[str, dict[str, float]] = {}
    for network, per_setting in results.items():
        base = per_setting["baseline"]
        best = per_setting["column-combine-pruning"]
        factors[network] = {
            "tile_reduction": base["tiles"] / max(1, best["tiles"]),
            "energy_reduction": base["energy_per_sample_j"] / best["energy_per_sample_j"],
            "throughput_gain": best["throughput_fps"] / base["throughput_fps"],
        }
    return {"experiment": "fig16", "results": results, "factors": factors}


def main(include_accuracy: bool = True, workers: int = 1) -> dict[str, Any]:
    result = run(include_accuracy=include_accuracy, workers=workers)
    rows = []
    for network, per_setting in result["results"].items():
        for setting, values in per_setting.items():
            rows.append((network, setting, values["tiles"],
                         f"{values['throughput_fps']:.1f}",
                         f"{values['energy_per_sample_j'] * 1e6:.2f}",
                         f"{values['accuracy']:.3f}"))
    print("Figure 16 — ASIC comparison of the three parameter settings")
    print(format_table(["network", "setting", "tiles", "throughput (fps)",
                        "energy (uJ/sample)", "accuracy"], rows))
    factor_rows = [(network, f"{f['tile_reduction']:.1f}x", f"{f['energy_reduction']:.1f}x",
                    f"{f['throughput_gain']:.1f}x")
                   for network, f in result["factors"].items()]
    print(format_table(["network", "tile reduction", "energy reduction",
                        "throughput gain"], factor_rows))
    return result


if __name__ == "__main__":
    main()
