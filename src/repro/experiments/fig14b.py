"""Figure 14b — tile reduction for one layer through column combining.

The paper's example: the third layer of its ResNet-20 variant is a
96 x 94 sparse filter matrix with 16% nonzeros; for a 32 x 32 systolic
array it needs 9 tiles unpacked, and column combining packs its 94 columns
into 17 combined columns (89% nonzeros), reducing the tile count to 3
(a 3x reduction).  This experiment reproduces the same quantities on a
sparse matrix of the same shape and density.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.experiments.common import format_table, packing_pipeline
from repro.experiments.workloads import sparse_filter_matrix


def run(rows: int = 96, cols: int = 94, density: float = 0.16, alpha: int = 8,
        gamma: float = 0.5, array_rows: int = 32, array_cols: int = 32,
        seed: int = 0, grouping_engine: str = "fast",
        prune_engine: str = "fast", workers: int = 1) -> dict[str, Any]:
    """Pack one sparse layer and report columns / density / tiles before and after."""
    rng = np.random.default_rng(seed)
    matrix = sparse_filter_matrix(rows, cols, density, rng)
    pipeline = packing_pipeline(alpha=alpha, gamma=gamma,
                                grouping_engine=grouping_engine,
                                prune_engine=prune_engine,
                                array_rows=array_rows, array_cols=array_cols,
                                workers=workers)
    layer = pipeline.run([("fig14b-layer", matrix)]).layers[0]
    return {
        "experiment": "fig14b",
        "rows": rows,
        "columns_before": layer.columns_before,
        "columns_after": layer.columns_after,
        "density_before": layer.density_before,
        "density_after": layer.packing_efficiency,
        "tiles_before": layer.tiles_before,
        "tiles_after": layer.tiles_after,
        "tile_reduction": layer.tile_reduction,
        "alpha": alpha,
        "gamma": gamma,
    }


def main(workers: int = 1) -> dict[str, Any]:
    result = run(workers=workers)
    rows = [
        ("columns", result["columns_before"], result["columns_after"]),
        ("density", f"{result['density_before']:.0%}", f"{result['density_after']:.0%}"),
        ("tiles (32x32 array)", result["tiles_before"], result["tiles_after"]),
    ]
    print("Figure 14b — tile reduction through column combining (96x94 layer)")
    print(format_table(["quantity", "sparse filter matrix", "packed filter matrix"], rows))
    print(f"tile reduction: {result['tile_reduction']:.1f}x (paper: 3x)")
    return result


if __name__ == "__main__":
    main()
