"""Shared plumbing for the experiment runners."""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from typing import Any, Iterator, Sequence

import numpy as np

from repro.combining.pipeline import PackingPipeline, PipelineConfig
from repro.combining.trainer import (
    ColumnCombineConfig,
    ColumnCombineTrainer,
    TrainingHistory,
    train_dense,
)
from repro.data import Dataset, synthetic_cifar10, synthetic_mnist
from repro.models import build_model
from repro.nn import Module
from repro.utils.config import RunConfig
from repro.utils.seeding import seed_everything

#: Scaled-down defaults that let every training experiment finish in tens of
#: seconds on a CPU while exercising the full Algorithm 1 code path and
#: reaching accuracies well above chance (so the accuracy-vs-utilization
#: trends of Figures 13 and 15b are visible).
FAST_RUN = RunConfig(train_samples=512, test_samples=256, image_size=12,
                     epochs_per_round=2, final_epochs=3, batch_size=64,
                     model_scale=1.0)

#: Dataset each network family is evaluated on in the paper.
DATASET_FOR_MODEL = {
    "lenet5": "mnist",
    "vgg": "cifar10",
    "resnet20": "cifar10",
}


def prepare_data(kind: str, config: RunConfig) -> tuple[Dataset, Dataset]:
    """Build the synthetic train / test splits for ``kind`` ('mnist'/'cifar10')."""
    if kind == "mnist":
        train = synthetic_mnist(config.train_samples, image_size=config.image_size,
                                seed=config.seed, split_seed=0)
        test = synthetic_mnist(config.test_samples, image_size=config.image_size,
                               seed=config.seed, split_seed=1)
    elif kind == "cifar10":
        train = synthetic_cifar10(config.train_samples, image_size=config.image_size,
                                  seed=config.seed, split_seed=0)
        test = synthetic_cifar10(config.test_samples, image_size=config.image_size,
                                 seed=config.seed, split_seed=1)
    else:
        raise ValueError(f"unknown dataset kind {kind!r}")
    return train, test


def prepare_model(name: str, config: RunConfig) -> Module:
    """Build a scaled model matching the dataset's channel count."""
    kind = DATASET_FOR_MODEL[name]
    in_channels = 1 if kind == "mnist" else 3
    kwargs: dict[str, Any] = dict(in_channels=in_channels, num_classes=10,
                                  scale=config.model_scale,
                                  rng=np.random.default_rng(config.seed))
    if name == "lenet5":
        kwargs["image_size"] = config.image_size
    kwargs.update(config.model_kwargs)
    return build_model(name, **kwargs)


def combine_config(run: RunConfig, *, alpha: int = 8, beta: float = 0.20,
                   gamma: float = 0.5, target_fraction: float = 0.2,
                   max_rounds: int = 6, lr: float = 0.05,
                   grouping_policy: str = "dense-first",
                   grouping_engine: str = "fast",
                   prune_engine: str = "fast") -> ColumnCombineConfig:
    """Algorithm 1 configuration derived from a :class:`RunConfig`."""
    return ColumnCombineConfig(
        alpha=alpha, beta=beta, gamma=gamma, target_fraction=target_fraction,
        epochs_per_round=run.epochs_per_round, final_epochs=run.final_epochs,
        batch_size=run.batch_size, max_rounds=max_rounds, lr=lr, seed=run.seed,
        grouping_policy=grouping_policy, grouping_engine=grouping_engine,
        prune_engine=prune_engine,
    )


def packing_pipeline(*, alpha: int = 8, gamma: float = 0.5,
                     policy: str = "dense-first",
                     grouping_engine: str = "fast",
                     prune_engine: str = "fast",
                     array_rows: int = 32, array_cols: int = 32,
                     workers: int = 1, seed: int = 0,
                     pool: ProcessPoolExecutor | None = None) -> PackingPipeline:
    """A :class:`PackingPipeline` for the structural experiment sweeps.

    Thin keyword wrapper around :class:`PipelineConfig` so every runner
    builds its pipeline the same way and gains the ``workers`` /
    ``grouping_engine`` / ``prune_engine`` knobs uniformly.  ``pool``
    lends a shared executor to the pipeline (see
    :class:`~repro.combining.pipeline.PackingPipeline`), letting sweeps
    that plan several (α, γ) settings fork one pool for all of them.
    """
    return PackingPipeline(PipelineConfig(
        alpha=alpha, gamma=gamma, policy=policy,
        grouping_engine=grouping_engine, prune_engine=prune_engine,
        array_rows=array_rows, array_cols=array_cols,
        workers=workers, seed=seed,
    ), pool=pool)


@contextmanager
def shared_packing_pool(workers: int) -> Iterator[ProcessPoolExecutor | None]:
    """One worker pool lent to every pipeline of a multi-setting sweep.

    Sweeps that plan several (α, γ) settings build one pipeline per
    setting (the config is frozen per pipeline); lending them all the
    same executor forks the workers once per sweep instead of once per
    setting.  Yields ``None`` for serial sweeps (``workers <= 1``), which
    pipelines accept as "no borrowed pool".
    """
    if workers <= 1:
        yield None
        return
    pool = ProcessPoolExecutor(max_workers=workers)
    try:
        yield pool
    finally:
        pool.shutdown(wait=True)


def run_column_combining(model_name: str, run: RunConfig | None = None,
                         cc_config: ColumnCombineConfig | None = None,
                         pretrain_epochs: int = 0,
                         data: tuple[Dataset, Dataset] | None = None
                         ) -> dict[str, Any]:
    """Train a model with Algorithm 1 and return the trainer plus its history."""
    run = run if run is not None else FAST_RUN
    seed_everything(run.seed)
    kind = DATASET_FOR_MODEL[model_name]
    train, test = data if data is not None else prepare_data(kind, run)
    model = prepare_model(model_name, run)
    if pretrain_epochs > 0:
        train_dense(model, train, test, epochs=pretrain_epochs, lr=0.1, seed=run.seed)
    config = cc_config if cc_config is not None else combine_config(run)
    trainer = ColumnCombineTrainer(model, train, test, config)
    history = trainer.run()
    return {
        "model_name": model_name,
        "trainer": trainer,
        "history": history,
        "final_accuracy": history.final_accuracy,
        "final_nonzeros": history.final_nonzeros,
        "utilization": trainer.utilization(),
    }


def history_series(history: TrainingHistory) -> dict[str, list]:
    """Flatten a training history into plottable series (Figure 13a's data)."""
    return {
        "epoch": history.epochs(),
        "test_accuracy": history.test_accuracies(),
        "nonzeros": history.nonzero_counts(),
        "pruning_epochs": list(history.pruning_epochs),
    }


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Render a plain-text table (used by every experiment's ``main``)."""
    columns = [str(h) for h in headers]
    text_rows = [[_fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in columns]
    for row in text_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(columns, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in text_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}"
    return str(value)
