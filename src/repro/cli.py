"""Command-line interface.

Three subcommands cover the library's main workflows:

``pack``
    Pack a single sparse filter matrix (random, or loaded from a ``.npy``
    file) and print the packing / tiling report — the quickest way to see
    what column combining does to a layer.
``pack-model``
    Pack every layer of a full-size network workload through the
    :class:`~repro.combining.pipeline.PackingPipeline`, assemble the
    :class:`~repro.combining.inference.PackedModel`, and print the
    packed-model report: per-layer columns / packing efficiency / pruned
    weights / tiles / cycles plus the model-level totals from the
    systolic timing plan.
``quantize-model``
    Pack a sparsified network, calibrate per-layer quantizers on
    synthetic training batches, run the quantized integer forward on the
    systolic system at ``--bits``, and print the per-layer quantization
    report plus the accuracy-vs-bits sweep table.
``save-packed``
    Pack a sparsified network (optionally quantize + calibrate it) and
    persist the result as a versioned packed artifact
    (:mod:`repro.combining.serialization`) that servers cold-start from
    without re-running the packing pipeline.
``load-packed``
    Load a packed artifact and print its report: format version, kind,
    pipeline config, per-layer packing summary with integrity
    fingerprints, and the frozen calibration scales of quantized
    artifacts.
``serve-bench``
    Run the serving benchmark on a packed artifact: artifact-load vs
    re-pack cold start, then dynamic batching vs one-request-at-a-time
    throughput through the :class:`~repro.serving.server.InferenceServer`
    (``--kernel`` picks the batch-invariant kernel; the accounting
    plan-cache hit/miss totals are reported alongside), with the batched
    run's queued / service latency p50/p90/p99 and flush-reason split.
    ``--profile`` adds per-layer wall-time accounting (top-3 slowest
    layers; responses stay bit-identical), ``--trace`` prints the last
    request traces.  ``--slo P99_MS`` evaluates the stock SLO rule set
    (p99 service latency / error rate / queue depth) over the rolling
    windows and prints the window quantiles and per-rule verdicts;
    ``--export-port`` attaches the live HTTP observability exporter for
    the batched run and scrapes ``/metrics`` + ``/health`` once.
    ``--swaps N`` additionally exercises live hot swap:
    the model is cut over between the artifact and a perturbed copy N
    times while requests are in flight, and every response must be
    bit-identical to one of the two artifacts' direct forwards.
``serve-export``
    Serve a short traced stream against a packed artifact and write the
    request traces as Chrome-trace-event JSON
    (:mod:`repro.obs.export`) — open the file in Perfetto / chrome
    tracing to see every request's enqueue → coalesce → forward →
    respond timeline on the wall clock.  ``pack-model --trace-out``
    writes the same format for the packing pipeline's per-layer
    group/prune/pack/tile stage spans.
``serve-stats``
    Serve a short profiled, traced stream against a packed artifact and
    print the observability report: request totals, queued / service
    latency digests, flush reasons, the slowest layers, and recent
    request traces — or the same state as a JSON metrics snapshot /
    Prometheus text exposition (``--format``).
``train``
    Run Algorithm 1 (iterative pruning + column combining + retraining) on
    one of the built-in shift + pointwise networks over the synthetic
    dataset, then print the training history and the per-layer packing
    report.
``experiment``
    Run one of the paper's experiment runners (fig13a ... table3, sec72,
    ablation-grouping, quant-sweep) and print the same rows / series the
    paper reports.

Examples::

    python -m repro pack --rows 96 --cols 94 --density 0.16
    python -m repro pack-model --network resnet20 --workers 4
    python -m repro quantize-model --bits 8 --calibration-batches 2
    python -m repro save-packed --model lenet5 --out lenet5.npz --quantize
    python -m repro load-packed --path lenet5.npz
    python -m repro serve-bench --path lenet5.npz --max-batch 16 \
        --backend process --workers 4 --slo 50 --export-port 0
    python -m repro serve-stats --path lenet5.npz --format text
    python -m repro serve-export --path lenet5.npz --out trace.json
    python -m repro train --model lenet5 --alpha 8 --gamma 0.5
    python -m repro experiment fig15a
"""

from __future__ import annotations

import argparse
import inspect
import sys
from typing import Sequence

import numpy as np

from repro.combining import (
    GROUPING_ENGINES,
    MAX_BITS,
    MIN_BITS,
    PRUNE_ENGINES,
    PackedArtifactError,
    PackedModel,
    QuantizedPackedModel,
    artifact_info,
    group_columns,
    pack_filter_matrix,
    packing_report,
    save_packed,
)
from repro.experiments import (
    ablation_grouping,
    fig13a,
    fig13b,
    fig13c,
    fig14b,
    fig15a,
    fig15b,
    fig16,
    quant_sweep,
    sec72,
    table1,
    table2,
    table3,
)
from repro.experiments.common import (
    DATASET_FOR_MODEL,
    FAST_RUN,
    combine_config,
    format_table,
    packing_pipeline,
    prepare_data,
    run_column_combining,
)
from repro.quant import CALIBRATIONS
from repro.experiments.workloads import (
    NETWORK_SHAPES,
    PAPER_DENSITY,
    sparse_filter_matrix,
    sparse_network,
    spatial_sizes,
)

EXPERIMENTS = {
    "fig13a": fig13a.main,
    "fig13b": fig13b.main,
    "fig13c": fig13c.main,
    "fig14b": fig14b.main,
    "fig15a": fig15a.main,
    "fig15b": fig15b.main,
    "fig16": fig16.main,
    "table1": table1.main,
    "table2": table2.main,
    "table3": table3.main,
    "sec72": sec72.main,
    "ablation-grouping": ablation_grouping.main,
    "quant-sweep": quant_sweep.main,
}


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Column combining for sparse CNNs on systolic arrays "
                    "(ASPLOS 2019 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    pack = subparsers.add_parser("pack", help="pack one sparse filter matrix")
    pack.add_argument("--matrix", type=str, default=None,
                      help=".npy file holding the filter matrix (rows x cols)")
    pack.add_argument("--rows", type=int, default=96)
    pack.add_argument("--cols", type=int, default=94)
    pack.add_argument("--density", type=float, default=0.16)
    pack.add_argument("--alpha", type=int, default=8)
    pack.add_argument("--gamma", type=float, default=0.5)
    pack.add_argument("--array-rows", type=int, default=32)
    pack.add_argument("--array-cols", type=int, default=32)
    pack.add_argument("--engine", choices=list(GROUPING_ENGINES), default="fast",
                      help="column-grouping engine (vectorized fast path or the "
                           "reference Python loop)")
    pack.add_argument("--prune-engine", choices=list(PRUNE_ENGINES), default="fast",
                      help="conflict-pruning engine for Algorithm 3")
    pack.add_argument("--seed", type=int, default=0)

    pack_model = subparsers.add_parser(
        "pack-model",
        help="pack a whole network workload and print the packed-model report")
    pack_model.add_argument("--network", choices=sorted(NETWORK_SHAPES),
                            default="lenet5")
    pack_model.add_argument("--density", type=float, default=None,
                            help="nonzero density of the sparse workload "
                                 "(default: the paper's density for the network)")
    pack_model.add_argument("--alpha", type=int, default=8)
    pack_model.add_argument("--gamma", type=float, default=0.5)
    pack_model.add_argument("--array-rows", type=int, default=32)
    pack_model.add_argument("--array-cols", type=int, default=32)
    pack_model.add_argument("--workers", type=_positive_int, default=1,
                            help="fan the per-layer packing out over N processes "
                                 "(results are identical to a serial run)")
    pack_model.add_argument("--engine", choices=list(GROUPING_ENGINES), default="fast",
                            help="column-grouping engine (Algorithm 2)")
    pack_model.add_argument("--prune-engine", choices=list(PRUNE_ENGINES),
                            default="fast",
                            help="conflict-pruning engine (Algorithm 3)")
    pack_model.add_argument("--trace-out", type=str, default=None,
                            help="write the pipeline's per-layer "
                                 "group/prune/pack/tile stage spans as "
                                 "Chrome-trace-event JSON to this path "
                                 "(open in Perfetto)")
    pack_model.add_argument("--seed", type=int, default=0)

    quantize = subparsers.add_parser(
        "quantize-model",
        help="run calibrated quantized packed inference and the "
             "accuracy-vs-bits sweep")
    quantize.add_argument("--model", choices=["lenet5", "vgg", "resnet20"],
                          default="lenet5")
    quantize.add_argument("--bits", type=int, default=8,
                          help=f"cell bit width for the per-layer report "
                               f"({MIN_BITS}-{MAX_BITS})")
    quantize.add_argument("--calibration-batches", type=_positive_int, default=1,
                          help="number of training batches the per-layer "
                               "quantizers are calibrated on (frozen afterwards)")
    quantize.add_argument("--batch-size", type=_positive_int, default=64)
    quantize.add_argument("--calibration", choices=list(CALIBRATIONS),
                          default="max",
                          help="activation-scale calibration strategy")
    quantize.add_argument("--percentile", type=float, default=99.5,
                          help="percentile for --calibration percentile")
    quantize.add_argument("--density", type=float, default=0.5,
                          help="fraction of packable weights kept when "
                               "sparsifying the synthetic checkpoint")
    quantize.add_argument("--alpha", type=int, default=8)
    quantize.add_argument("--gamma", type=float, default=0.5)
    quantize.add_argument("--image-size", type=int, default=FAST_RUN.image_size)
    quantize.add_argument("--model-scale", type=float, default=FAST_RUN.model_scale)
    quantize.add_argument("--workers", type=_positive_int, default=1,
                          help="fan the per-layer packing out over N processes "
                               "(results are identical to a serial run)")
    quantize.add_argument("--engine", choices=list(GROUPING_ENGINES),
                          default="fast",
                          help="column-grouping engine (Algorithm 2)")
    quantize.add_argument("--prune-engine", choices=list(PRUNE_ENGINES),
                          default="fast",
                          help="conflict-pruning engine (Algorithm 3)")
    quantize.add_argument("--seed", type=int, default=0)

    save = subparsers.add_parser(
        "save-packed",
        help="pack a sparsified network and persist it as a packed artifact")
    save.add_argument("--model", choices=["lenet5", "vgg", "resnet20"],
                      default="lenet5")
    save.add_argument("--out", type=str, required=True,
                      help="path the .npz packed artifact is written to")
    save.add_argument("--quantize", action="store_true",
                      help="save a calibrated quantized artifact instead of "
                           "a float packed one")
    save.add_argument("--bits", type=int, default=8,
                      help=f"cell bit width for --quantize "
                           f"({MIN_BITS}-{MAX_BITS})")
    save.add_argument("--calibration", choices=list(CALIBRATIONS),
                      default="max",
                      help="activation-scale calibration strategy for "
                           "--quantize")
    save.add_argument("--percentile", type=float, default=99.5,
                      help="percentile for --calibration percentile")
    save.add_argument("--calibration-batches", type=_positive_int, default=1,
                      help="training batches the quantizers are calibrated on")
    save.add_argument("--batch-size", type=_positive_int, default=64)
    save.add_argument("--density", type=float, default=0.5,
                      help="fraction of packable weights kept when "
                           "sparsifying the synthetic checkpoint")
    save.add_argument("--alpha", type=int, default=8)
    save.add_argument("--gamma", type=float, default=0.5)
    save.add_argument("--image-size", type=int, default=FAST_RUN.image_size)
    save.add_argument("--model-scale", type=float, default=FAST_RUN.model_scale)
    save.add_argument("--workers", type=_positive_int, default=1,
                      help="fan the per-layer packing out over N processes")
    save.add_argument("--engine", choices=list(GROUPING_ENGINES),
                      default="fast", help="column-grouping engine (Algorithm 2)")
    save.add_argument("--prune-engine", choices=list(PRUNE_ENGINES),
                      default="fast",
                      help="conflict-pruning engine (Algorithm 3)")
    save.add_argument("--no-compress", action="store_true",
                      help="write the artifact uncompressed (faster loads, "
                           "bigger file)")
    save.add_argument("--seed", type=int, default=0)

    load = subparsers.add_parser(
        "load-packed", help="load a packed artifact and print its report")
    load.add_argument("--path", type=str, required=True,
                      help="the .npz packed artifact to inspect")

    serve = subparsers.add_parser(
        "serve-bench",
        help="benchmark dynamic-batching serving on a packed artifact")
    serve.add_argument("--path", type=str, required=True,
                       help="model-backed packed artifact to serve")
    serve.add_argument("--requests", type=_positive_int, default=96,
                       help="number of single-sample requests per serving run")
    serve.add_argument("--max-batch", type=_positive_int, default=16,
                       help="dynamic batcher's sample budget per batch")
    serve.add_argument("--max-wait", type=float, default=0.002,
                       help="dynamic batcher's coalescing window in seconds")
    serve.add_argument("--image-size", type=int, default=FAST_RUN.image_size,
                       help="request spatial size (overridden by the "
                            "artifact's model_spec when it records one)")
    serve.add_argument("--backend", choices=["thread", "process"],
                       default="thread",
                       help="where batch forwards run: in-process threads "
                            "or a persistent mmap-sharing worker-process pool")
    serve.add_argument("--workers", type=_positive_int, default=1,
                       help="batch-draining threads (and, with "
                            "--backend process, worker processes)")
    serve.add_argument("--kernel", choices=["blocked", "loops"],
                       default="blocked",
                       help="batch-invariant kernel every forward runs: "
                            "'blocked' (fixed-schedule BLAS dispatch) or "
                            "'loops' (the einsum reference)")
    serve.add_argument("--swaps", type=int, default=0,
                       help="additionally exercise live hot swap: cut the "
                            "model over between the artifact and a perturbed "
                            "copy this many times while requests are in "
                            "flight (0 = skip; float artifacts only)")
    serve.add_argument("--profile", action="store_true",
                       help="per-layer wall-time accounting for the batched "
                            "run (reports the top-3 slowest layers; "
                            "responses stay bit-identical)")
    serve.add_argument("--trace", action="store_true",
                       help="retain request traces for the batched run and "
                            "print the last few span timelines")
    serve.add_argument("--slo", type=float, default=None, metavar="P99_MS",
                       help="evaluate the stock SLO rule set over the "
                            "batched run's rolling windows with this p99 "
                            "service-latency target in milliseconds; prints "
                            "window quantiles and per-rule verdicts")
    serve.add_argument("--export-port", type=int, default=None,
                       help="attach the live HTTP observability exporter on "
                            "this port for the batched run (0 = ephemeral) "
                            "and scrape /metrics + /health once")
    serve.add_argument("--seed", type=int, default=0)

    export = subparsers.add_parser(
        "serve-export",
        help="serve a short traced stream and write Chrome-trace-event JSON")
    export.add_argument("--path", type=str, required=True,
                        help="model-backed packed artifact to serve")
    export.add_argument("--out", type=str, required=True,
                        help="path the trace-event JSON is written to")
    export.add_argument("--requests", type=_positive_int, default=32,
                        help="number of single-sample requests to serve")
    export.add_argument("--traces", type=_positive_int, default=32,
                        help="how many recent request traces to export")
    export.add_argument("--max-batch", type=_positive_int, default=8,
                        help="dynamic batcher's sample budget per batch")
    export.add_argument("--max-wait", type=float, default=0.001,
                        help="dynamic batcher's coalescing window in seconds")
    export.add_argument("--image-size", type=int, default=FAST_RUN.image_size,
                        help="request spatial size (overridden by the "
                             "artifact's model_spec when it records one)")
    export.add_argument("--backend", choices=["thread", "process"],
                        default="thread",
                        help="where batch forwards run")
    export.add_argument("--workers", type=_positive_int, default=1,
                        help="batch-draining threads (and worker processes "
                             "with --backend process)")
    export.add_argument("--kernel", choices=["blocked", "loops"],
                        default="blocked",
                        help="batch-invariant kernel every forward runs")
    export.add_argument("--seed", type=int, default=0)

    stats = subparsers.add_parser(
        "serve-stats",
        help="serve a short profiled stream and print the observability "
             "report")
    stats.add_argument("--path", type=str, required=True,
                       help="model-backed packed artifact to serve")
    stats.add_argument("--requests", type=_positive_int, default=32,
                       help="number of single-sample requests to serve")
    stats.add_argument("--max-batch", type=_positive_int, default=8,
                       help="dynamic batcher's sample budget per batch")
    stats.add_argument("--max-wait", type=float, default=0.001,
                       help="dynamic batcher's coalescing window in seconds")
    stats.add_argument("--image-size", type=int, default=FAST_RUN.image_size,
                       help="request spatial size (overridden by the "
                            "artifact's model_spec when it records one)")
    stats.add_argument("--backend", choices=["thread", "process"],
                       default="thread",
                       help="where batch forwards run")
    stats.add_argument("--workers", type=_positive_int, default=1,
                       help="batch-draining threads (and worker processes "
                            "with --backend process)")
    stats.add_argument("--kernel", choices=["blocked", "loops"],
                       default="blocked",
                       help="batch-invariant kernel every forward runs")
    stats.add_argument("--traces", type=_positive_int, default=5,
                       help="how many recent request traces to keep/print")
    stats.add_argument("--format", choices=["text", "json", "prometheus"],
                       default="text",
                       help="report rendering: human tables, the JSON "
                            "metrics snapshot, or Prometheus text "
                            "exposition")
    stats.add_argument("--seed", type=int, default=0)

    train = subparsers.add_parser("train", help="run Algorithm 1 on a built-in model")
    train.add_argument("--model", choices=["lenet5", "vgg", "resnet20"], default="resnet20")
    train.add_argument("--alpha", type=int, default=8)
    train.add_argument("--beta", type=float, default=0.20)
    train.add_argument("--gamma", type=float, default=0.5)
    train.add_argument("--target-fraction", type=float, default=0.2)
    train.add_argument("--epochs-per-round", type=int, default=FAST_RUN.epochs_per_round)
    train.add_argument("--final-epochs", type=int, default=FAST_RUN.final_epochs)
    train.add_argument("--train-samples", type=int, default=FAST_RUN.train_samples)
    train.add_argument("--image-size", type=int, default=FAST_RUN.image_size)
    train.add_argument("--model-scale", type=float, default=FAST_RUN.model_scale)
    train.add_argument("--lr", type=float, default=0.05)
    train.add_argument("--engine", choices=list(GROUPING_ENGINES), default="fast",
                      help="column-grouping engine used by every grouping step")
    train.add_argument("--prune-engine", choices=list(PRUNE_ENGINES), default="fast",
                      help="conflict-pruning engine used by every prune round")
    train.add_argument("--seed", type=int, default=0)

    experiment = subparsers.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument("name", choices=sorted(EXPERIMENTS))
    experiment.add_argument("--workers", type=_positive_int, default=1,
                            help="fan the experiment's per-layer / per-point "
                                 "sweeps out over N processes (results are "
                                 "identical to a serial run)")

    return parser


def _command_pack(args: argparse.Namespace) -> int:
    if args.matrix is not None:
        matrix = np.load(args.matrix)
        if matrix.ndim != 2:
            print(f"error: {args.matrix} does not contain a 2-D matrix", file=sys.stderr)
            return 2
    else:
        rng = np.random.default_rng(args.seed)
        matrix = sparse_filter_matrix(args.rows, args.cols, args.density, rng)
    grouping = group_columns(matrix, alpha=args.alpha, gamma=args.gamma,
                             engine=args.engine)
    packed = pack_filter_matrix(matrix, grouping, engine=args.prune_engine)
    report = packing_report([("matrix", packed)], array_rows=args.array_rows,
                            array_cols=args.array_cols)
    layer = report.layers[0]
    print(format_table(
        ["quantity", "before", "after"],
        [
            ("columns", layer.columns_before, layer.columns_after),
            ("density", f"{np.count_nonzero(matrix) / matrix.size:.1%}",
             f"{layer.packing_efficiency:.1%}"),
            ("tiles", layer.tiles_before, layer.tiles_after),
        ]))
    print(f"multiplexing degree (MX fan-in needed): {layer.multiplexing_degree}")
    return 0


def _command_pack_model(args: argparse.Namespace) -> int:
    density = args.density if args.density is not None else PAPER_DENSITY[args.network]
    layers = sparse_network(args.network, density=density, seed=args.seed)
    with packing_pipeline(alpha=args.alpha, gamma=args.gamma,
                          grouping_engine=args.engine,
                          prune_engine=args.prune_engine,
                          array_rows=args.array_rows, array_cols=args.array_cols,
                          workers=args.workers, seed=args.seed) as pipeline:
        result = pipeline.run(layers)
    model = PackedModel.from_pipeline_result(result)
    plan = model.plan(spatial_sizes(layers))
    rows = [
        (layer.name, f"{layer.rows}x{layer.columns_before}", layer.columns_after,
         f"{layer.packing_efficiency:.1%}", layer.pruned_weights,
         execution.num_tiles, execution.cycles)
        for layer, execution in zip(result.layers, plan.layers)
    ]
    print(f"packed model: {args.network} at {density:.0%} density, "
          f"alpha={args.alpha}, gamma={args.gamma}, "
          f"{args.array_rows}x{args.array_cols} array")
    print(format_table(
        ["layer", "shape", "combined cols", "packing eff.", "pruned weights",
         "tiles", "cycles"], rows))
    summary = model.summary(plan)
    pruned_total = sum(layer.pruned_weights for layer in result.layers)
    print(f"model totals: {summary['num_layers']} layers, "
          f"{summary['total_tiles']} tiles, {summary['total_cycles']} cycles, "
          f"utilization {summary['utilization']:.1%}, "
          f"packing efficiency {summary['packing_efficiency']:.1%}, "
          f"{summary['total_nonzeros']} nonzeros "
          f"({pruned_total} pruned by Algorithm 3), "
          f"MX fan-in {summary['multiplexing_degree']}")
    if args.trace_out is not None:
        from repro.obs.export import chrome_trace_from_pipeline, \
            write_chrome_trace

        events = chrome_trace_from_pipeline(result)
        written = write_chrome_trace(args.trace_out, events)
        print(f"pipeline trace: {len(events)} events -> {written} "
              "(open in Perfetto / chrome://tracing)")
    return 0


def _command_quantize_model(args: argparse.Namespace) -> int:
    if not MIN_BITS <= args.bits <= MAX_BITS:
        print(f"error: --bits must be in [{MIN_BITS}, {MAX_BITS}], "
              f"got {args.bits}", file=sys.stderr)
        return 2
    if not 0.0 < args.percentile <= 100.0:
        print(f"error: --percentile must be in (0, 100], got {args.percentile}",
              file=sys.stderr)
        return 2
    run_cfg = FAST_RUN.scaled(seed=args.seed, image_size=args.image_size,
                              model_scale=args.model_scale)
    model = quant_sweep.sparsified_model(args.model, run_cfg,
                                         density=args.density, seed=args.seed)
    train, test = prepare_data(DATASET_FOR_MODEL[args.model], run_cfg)
    calibration_images = train.images[:args.calibration_batches * args.batch_size]
    with packing_pipeline(alpha=args.alpha, gamma=args.gamma,
                          grouping_engine=args.engine,
                          prune_engine=args.prune_engine,
                          workers=args.workers, seed=args.seed) as pipeline:
        packed = PackedModel.from_model(model, pipeline=pipeline)

    quantized = QuantizedPackedModel(packed, bits=args.bits,
                                     calibration=args.calibration,
                                     percentile=args.percentile)
    quantized.calibrate(calibration_images)
    outputs = quantized.forward(test.images, batch_size=args.batch_size)
    predictions = np.argmax(outputs, axis=1)
    # One exact forward serves both the report and the bits sweep below.
    exact_outputs = packed.forward(test.images, batch_size=args.batch_size)
    exact_predictions = np.argmax(exact_outputs, axis=1)
    agreement = float(np.mean(predictions == exact_predictions))
    accuracy = float(np.mean(predictions == test.labels))

    print(f"quantized packed model: {args.model} at {args.bits} bits, "
          f"density {args.density:.0%}, alpha={args.alpha}, gamma={args.gamma}, "
          f"calibration={args.calibration} on "
          f"{len(calibration_images)} samples")
    print(format_table(
        ["layer", "weight rmse", "input rmse", "input saturation",
         "divergence rmse", "tiles", "cycles"],
        [(r.name, f"{r.weight_rmse:.2e}", f"{r.input_rmse:.2e}",
          f"{r.input_saturation:.2%}", f"{r.divergence_rmse:.2e}",
          r.num_tiles, r.cycles) for r in quantized.layer_report()]))
    summary = quantized.summary()
    print(f"model totals at {args.bits} bits: "
          f"{summary['quantized_tiles']} tiles, "
          f"{summary['quantized_cycles']} cycles, "
          f"output divergence rmse {summary['divergence_rmse']:.2e}, "
          f"exact-prediction agreement {agreement:.1%}, "
          f"test accuracy {accuracy:.3f}")

    # The requested width is already fully evaluated above — seed its sweep
    # row from those numbers instead of re-calibrating and re-forwarding.
    report_point = {
        "bits": args.bits,
        "agreement": agreement,
        "accuracy": accuracy,
        "output_rmse": float(np.sqrt(np.mean((outputs - exact_outputs) ** 2))),
        "quantized_cycles": summary["quantized_cycles"],
    }
    sweep = quant_sweep.sweep_packed(
        packed, calibration_images=calibration_images,
        eval_images=test.images, eval_labels=test.labels,
        bits_values=[bits for bits in quant_sweep.BITS_SWEEP
                     if bits != args.bits],
        calibration=args.calibration, percentile=args.percentile,
        batch_size=args.batch_size, exact_outputs=exact_outputs)
    points = sorted(sweep["points"] + [report_point],
                    key=lambda point: point["bits"])
    print("accuracy vs bits:")
    print(format_table(
        ["bits", "agreement", "accuracy", "output rmse", "quantized cycles"],
        [(point["bits"], f"{point['agreement']:.1%}",
          f"{point['accuracy']:.3f}", f"{point['output_rmse']:.2e}",
          point["quantized_cycles"]) for point in points]))
    return 0


def _model_spec_for(args: argparse.Namespace) -> dict:
    """The build_model spec a packed artifact embeds for self-contained loads."""
    kwargs = {
        "in_channels": 1 if DATASET_FOR_MODEL[args.model] == "mnist" else 3,
        "num_classes": 10,
        "scale": args.model_scale,
    }
    if args.model == "lenet5":
        kwargs["image_size"] = args.image_size
    return {"name": args.model, "kwargs": kwargs}


def _command_save_packed(args: argparse.Namespace) -> int:
    if args.quantize and not MIN_BITS <= args.bits <= MAX_BITS:
        print(f"error: --bits must be in [{MIN_BITS}, {MAX_BITS}], "
              f"got {args.bits}", file=sys.stderr)
        return 2
    run_cfg = FAST_RUN.scaled(seed=args.seed, image_size=args.image_size,
                              model_scale=args.model_scale)
    model = quant_sweep.sparsified_model(args.model, run_cfg,
                                         density=args.density, seed=args.seed)
    with packing_pipeline(alpha=args.alpha, gamma=args.gamma,
                          grouping_engine=args.engine,
                          prune_engine=args.prune_engine,
                          workers=args.workers, seed=args.seed) as pipeline:
        packed = PackedModel.from_model(model, pipeline=pipeline)
    artifact: PackedModel | QuantizedPackedModel = packed
    if args.quantize:
        train, _ = prepare_data(DATASET_FOR_MODEL[args.model], run_cfg)
        calibration_images = train.images[:args.calibration_batches
                                          * args.batch_size]
        artifact = QuantizedPackedModel(packed, bits=args.bits,
                                        calibration=args.calibration,
                                        percentile=args.percentile)
        artifact.calibrate(calibration_images)
    path = save_packed(artifact, args.out, model_spec=_model_spec_for(args),
                       compress=not args.no_compress)
    info = artifact_info(path)
    kind = info["kind"]
    print(f"saved {kind} artifact: {path} ({info['file_bytes'] / 1024:.0f} KiB, "
          f"format v{info['format_version']})")
    print(f"  {args.model} at density {args.density:.0%}, alpha={args.alpha}, "
          f"gamma={args.gamma}, {len(info['layers'])} packed layers"
          + (f", {args.bits}-bit calibrated ({args.calibration})"
         if args.quantize else ""))
    return 0


def _command_load_packed(args: argparse.Namespace) -> int:
    from repro.combining.serialization import verify_artifact

    try:
        verified = verify_artifact(args.path)
    except FileNotFoundError:
        print(f"error: {args.path} does not exist", file=sys.stderr)
        return 2
    except PackedArtifactError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    info = verified["info"]
    layers = verified["layers"]
    config = info["pipeline_config"]
    config_text = (f"alpha={config['alpha']}, gamma={config['gamma']}, "
                   f"engines {config['grouping_engine']}/"
                   f"{config['prune_engine']}" if config else "unrecorded")
    if not info["has_model_state"]:
        model_text = "absent (matrix-only)"
    elif info["model_spec"] is not None:
        model_text = f"embedded ({info['model_spec']['name']})"
    else:
        model_text = "state only (load with model=...)"
    print(f"packed artifact: {info['path']} "
          f"({info['file_bytes'] / 1024:.0f} KiB, format "
          f"v{info['format_version']}, kind {info['kind']})")
    print(f"  pipeline: {config_text}; array "
          f"{info['array_rows']}x{info['array_cols']}; nn model {model_text}")
    rows = [
        (meta["name"], f"{packed.num_rows}x{packed.original_shape[1]}",
         packed.num_groups, f"{packed.packing_efficiency():.1%}",
         meta["fingerprint"][:12])
        for meta, packed in zip(info["layers"], layers)
    ]
    print(format_table(
        ["layer", "shape", "combined cols", "packing eff.", "fingerprint"],
        rows))
    if info["kind"] == "quantized":
        quantized_meta = info["quantized"]
        print(f"  quantized at {quantized_meta['bits']} bits "
              f"({quantized_meta['calibration']} calibration); frozen scales:")
        print(format_table(
            ["layer", "input scale", "weight scale"],
            [(meta["name"], f"{input_scale:.3e}", f"{weight_scale:.3e}")
             for meta, input_scale, weight_scale
             in zip(quantized_meta["layers"], verified["input_scales"],
                    verified["weight_scales"])]))
    print(f"integrity: all {len(layers)} layer fingerprints verified")
    return 0


def _format_latency(seconds: float) -> str:
    return f"{seconds * 1e3:.3f}ms"


def _latency_rows(label: str, digest: dict[str, float]) -> tuple:
    return (label, _format_latency(digest["p50"]),
            _format_latency(digest["p90"]), _format_latency(digest["p99"]),
            _format_latency(digest["mean"]), _format_latency(digest["max"]))


def _print_slowest_layers(slowest: list[dict]) -> None:
    if not slowest:
        print("no layer timings recorded")
        return
    print(format_table(
        ["slowest layers", "total", "batches", "mean/batch"],
        [(row["layer"], f"{row['total_seconds'] * 1e3:.3f}ms",
          f"{row['batches']}", _format_latency(row["mean_seconds"]))
         for row in slowest]))


def _print_traces(traces: list[dict]) -> None:
    for trace in traces:
        spans = " -> ".join(
            f"{span['name']} {_format_latency(span['seconds'])}"
            for span in trace["spans"])
        coalesce = next((span for span in trace["spans"]
                         if span["name"] == "coalesce"), None)
        flush = (coalesce["attributes"].get("flush_reason", "?")
                 if coalesce else "?")
        print(f"  {trace['trace_id']} model={trace['model']} "
              f"total={_format_latency(trace['seconds'])} "
              f"flush={flush}: {spans}")


def _print_operational(operational: dict) -> None:
    """Rolling-window quantiles, SLO verdicts, and exporter scrape results."""
    windows = operational["windows"]
    window_rows = [_latency_rows(kind, windows[kind])
                   for kind in ("queued", "service", "total")
                   if windows.get(kind, {}).get("count")]
    if window_rows:
        print(format_table(
            ["rolling window", "p50", "p90", "p99", "mean", "max"],
            window_rows))
    print(f"rolling window: {windows['requests']} requests, "
          f"{windows['failures']} failures")
    slo = operational["slo"]
    if slo["rules"]:
        print(format_table(
            ["slo rule", "kind", "value", "target", "verdict"],
            [(rule["name"], rule["kind"],
              (_format_latency(rule["value"])
               if rule["kind"] == "latency_quantile"
               else f"{rule['value']:.4g}"),
              (_format_latency(rule["target"])
               if rule["kind"] == "latency_quantile"
               else f"{rule['target']:.4g}"),
              rule["verdict"]) for rule in slo["rules"]]))
        print(f"slo verdict: {slo['overall']}")
    exporter = operational.get("exporter")
    if exporter is not None:
        print(f"exporter: {exporter['url']} — /health "
              f"{exporter['health_status']}, /metrics "
              f"{exporter['metrics_status']} "
              f"({exporter['metrics_lines']} lines)")
    events = operational.get("events", [])
    if events:
        kinds = {}
        for event in events:
            kinds[event["kind"]] = kinds.get(event["kind"], 0) + 1
        print("lifecycle events: " + ", ".join(
            f"{kind}={count}" for kind, count in sorted(kinds.items())))


def _command_serve_bench(args: argparse.Namespace) -> int:
    from repro.serving.bench import default_slo_rules, run_serving_benchmark

    if not 0.0 <= args.max_wait <= 1.0:
        print(f"error: --max-wait must be in [0, 1] seconds, "
              f"got {args.max_wait}", file=sys.stderr)
        return 2
    if args.slo is not None and args.slo <= 0.0:
        print(f"error: --slo must be a positive latency target in "
              f"milliseconds, got {args.slo}", file=sys.stderr)
        return 2
    slo_rules = (default_slo_rules(latency_target=args.slo / 1e3)
                 if args.slo is not None else None)
    try:
        results = run_serving_benchmark(
            args.path, requests=args.requests, max_batch=args.max_batch,
            max_wait=args.max_wait, image_size=args.image_size,
            seed=args.seed, workers=args.workers, backend=args.backend,
            kernel=args.kernel, profile=args.profile, trace=args.trace,
            slo_rules=slo_rules, export_port=args.export_port)
    except FileNotFoundError:
        print(f"error: {args.path} does not exist", file=sys.stderr)
        return 2
    except (PackedArtifactError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    cold = results["cold_start"]
    throughput = results["throughput"]
    shape = "x".join(str(side) for side in results["sample_shape"])
    print(f"serving benchmark: {args.path} ({results['kind']}, "
          f"requests of shape {shape}, backend={args.backend}, "
          f"workers={args.workers}, kernel={args.kernel})")
    print(format_table(
        ["cold start", "seconds"],
        [("load artifact", f"{cold['load_seconds']:.4f}"),
         ("re-pack pipeline", f"{cold['repack_seconds']:.4f}"),
         ("load speedup", f"{cold['speedup']:.1f}x")]))
    print(format_table(
        ["serving", "requests/s", "seconds", "mean batch"],
        [("one-at-a-time", f"{throughput['sequential_throughput']:.0f}",
          f"{throughput['sequential_seconds']:.4f}",
          f"{throughput['sequential_mean_batch']:.1f}"),
         (f"batched (max {args.max_batch})",
          f"{throughput['batched_throughput']:.0f}",
          f"{throughput['batched_seconds']:.4f}",
          f"{throughput['batched_mean_batch']:.1f}")]))
    plan_cache = throughput["batched_plan_cache"]
    print(f"batching speedup {throughput['speedup']:.1f}x over "
          f"{throughput['requests']} single-sample requests; responses "
          f"bit-identical to direct forward: "
          f"{throughput['bit_identical_to_direct']}")
    print(f"accounting plan cache (batched run): {plan_cache['hits']} hits, "
          f"{plan_cache['misses']} misses"
          + (" (per-process caches each pay their own misses)"
             if args.backend == "process" else ""))
    print(format_table(
        ["latency (batched run)", "p50", "p90", "p99", "mean", "max"],
        [_latency_rows("queued", throughput["queued_seconds"]),
         _latency_rows("service", throughput["service_seconds"])]))
    flush = throughput["flush_reasons"]
    print("flush reasons: " + ", ".join(f"{reason}={flush[reason]}"
                                        for reason in sorted(flush)))
    if "operational" in throughput:
        _print_operational(throughput["operational"])
    if args.profile:
        _print_slowest_layers(throughput.get("slowest_layers", []))
    if args.trace:
        trace_stats = throughput["trace_stats"]
        print(f"traces: {trace_stats['recorded']} recorded, "
              f"{trace_stats['retained']} retained "
              f"(capacity {trace_stats['capacity']}); last 3:")
        _print_traces(throughput["traces"][-3:])
    if args.swaps > 0:
        from repro.serving.bench import hot_swap_benchmark

        try:
            swap = hot_swap_benchmark(
                args.path, swaps=args.swaps, max_batch=args.max_batch,
                max_wait=args.max_wait, workers=args.workers,
                backend=args.backend, image_size=args.image_size,
                seed=args.seed, kernel=args.kernel)
        except (PackedArtifactError, ValueError) as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(format_table(
            ["hot swap", "value"],
            [("cutovers", f"{swap['swaps']}"),
             ("requests under swap", f"{swap['requests']}"),
             ("swap seconds (mean)", f"{swap['swap_seconds']['mean']:.4f}"),
             ("swap seconds (max)", f"{swap['swap_seconds']['max']:.4f}"),
             ("old-artifact responses", f"{swap['old_bits']}"),
             ("new-artifact responses", f"{swap['new_bits']}"),
             ("final generation", f"{swap['final_generation']}")]))
        print(f"hot swap under traffic: every response bit-identical to one "
              f"artifact's direct forward: {swap['bit_exact']} "
              f"({swap['failures']} failed, {swap['mismatched']} ambiguous)")
    return 0


def _command_serve_export(args: argparse.Namespace) -> int:
    from repro.obs.export import chrome_trace_from_traces, write_chrome_trace
    from repro.serving.bench import observability_report

    if not 0.0 <= args.max_wait <= 1.0:
        print(f"error: --max-wait must be in [0, 1] seconds, "
              f"got {args.max_wait}", file=sys.stderr)
        return 2
    try:
        report = observability_report(
            args.path, requests=args.requests, max_batch=args.max_batch,
            max_wait=args.max_wait, image_size=args.image_size,
            seed=args.seed, workers=args.workers, backend=args.backend,
            kernel=args.kernel, trace_limit=args.traces)
    except FileNotFoundError:
        print(f"error: {args.path} does not exist", file=sys.stderr)
        return 2
    except (PackedArtifactError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    events = chrome_trace_from_traces(report["traces"])
    written = write_chrome_trace(args.out, events)
    print(f"served {report['requests']} requests "
          f"({report['throughput']:.0f} req/s, backend={args.backend}, "
          f"workers={args.workers}, kernel={args.kernel})")
    print(f"serving trace: {len(report['traces'])} traces, "
          f"{len(events)} events -> {written} "
          "(open in Perfetto / chrome://tracing)")
    return 0


def _command_serve_stats(args: argparse.Namespace) -> int:
    from repro.serving.bench import observability_report

    if not 0.0 <= args.max_wait <= 1.0:
        print(f"error: --max-wait must be in [0, 1] seconds, "
              f"got {args.max_wait}", file=sys.stderr)
        return 2
    try:
        report = observability_report(
            args.path, requests=args.requests, max_batch=args.max_batch,
            max_wait=args.max_wait, image_size=args.image_size,
            seed=args.seed, workers=args.workers, backend=args.backend,
            kernel=args.kernel, trace_limit=args.traces)
    except FileNotFoundError:
        print(f"error: {args.path} does not exist", file=sys.stderr)
        return 2
    except (PackedArtifactError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    if args.format == "json":
        import json

        print(json.dumps(report["metrics_snapshot"], indent=2))
        return 0
    if args.format == "prometheus":
        from repro.obs import prometheus_from_snapshot

        print(prometheus_from_snapshot(report["metrics_snapshot"]), end="")
        return 0
    stats = report["stats"]
    totals = stats["totals"]
    print(f"serving stats: {args.path} ({report['kind']}, "
          f"backend={args.backend}, workers={args.workers}, "
          f"kernel={args.kernel})")
    print(format_table(
        ["totals", "value"],
        [("requests", f"{totals['requests']}"),
         ("batches", f"{totals['batches']}"),
         ("failures", f"{totals['failures']}"),
         ("mean batch size", f"{totals['mean_batch_size']:.1f}"),
         ("throughput (req/s)", f"{report['throughput']:.0f}")]))
    print(format_table(
        ["latency", "p50", "p90", "p99", "mean", "max"],
        [_latency_rows("queued", totals["queued_seconds"]),
         _latency_rows("service", totals["service_seconds"])]))
    flush = totals["flush_reasons"]
    print("flush reasons: " + ", ".join(f"{reason}={flush[reason]}"
                                        for reason in sorted(flush)))
    _print_slowest_layers(report["slowest_layers"])
    print(f"recent traces (last {len(report['traces'])}):")
    _print_traces(report["traces"])
    return 0


def _command_train(args: argparse.Namespace) -> int:
    run = FAST_RUN.scaled(train_samples=args.train_samples, image_size=args.image_size,
                          epochs_per_round=args.epochs_per_round,
                          final_epochs=args.final_epochs, model_scale=args.model_scale,
                          seed=args.seed)
    config = combine_config(run, alpha=args.alpha, beta=args.beta, gamma=args.gamma,
                            target_fraction=args.target_fraction, lr=args.lr,
                            grouping_engine=args.engine,
                            prune_engine=args.prune_engine)
    result = run_column_combining(args.model, run, config)
    trainer = result["trainer"]
    history = result["history"]
    print(format_table(
        ["epoch", "phase", "test accuracy", "nonzeros"],
        [(r.epoch, r.phase, r.test_accuracy, r.nonzeros) for r in history.records]))
    report = packing_report(trainer.packed_layers())
    print(format_table(
        ["layer", "shape", "combined cols", "packing eff.", "mux", "tiles before",
         "tiles after"],
        report.to_rows()))
    print(f"final accuracy {history.final_accuracy:.3f}, "
          f"utilization {result['utilization']:.1%}, "
          f"nonzeros {trainer.initial_nonzeros} -> {history.final_nonzeros}")
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    runner = EXPERIMENTS[args.name]
    kwargs = {}
    if "workers" in inspect.signature(runner).parameters:
        kwargs["workers"] = args.workers
    elif args.workers != 1:
        print(f"note: experiment {args.name!r} has no parallel sweep; "
              "running serially", file=sys.stderr)
    runner(**kwargs)
    return 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point for ``python -m repro``."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "pack":
        return _command_pack(args)
    if args.command == "pack-model":
        return _command_pack_model(args)
    if args.command == "quantize-model":
        return _command_quantize_model(args)
    if args.command == "save-packed":
        return _command_save_packed(args)
    if args.command == "load-packed":
        return _command_load_packed(args)
    if args.command == "serve-bench":
        return _command_serve_bench(args)
    if args.command == "serve-export":
        return _command_serve_export(args)
    if args.command == "serve-stats":
        return _command_serve_stats(args)
    if args.command == "train":
        return _command_train(args)
    if args.command == "experiment":
        return _command_experiment(args)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    sys.exit(main())
