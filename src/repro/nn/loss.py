"""Loss functions and classification metrics."""

from __future__ import annotations

import numpy as np


class SoftmaxCrossEntropy:
    """Softmax followed by cross-entropy against integer class labels."""

    def __init__(self) -> None:
        self._cache: tuple[np.ndarray, np.ndarray] | None = None

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        """Return the mean cross-entropy loss over the batch."""
        if logits.ndim != 2:
            raise ValueError(f"logits must be (batch, classes), got {logits.shape}")
        labels = np.asarray(labels)
        if labels.shape[0] != logits.shape[0]:
            raise ValueError("labels batch size does not match logits")
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        self._cache = (probs, labels)
        batch = logits.shape[0]
        eps = 1e-12
        return float(-np.log(probs[np.arange(batch), labels] + eps).mean())

    def backward(self) -> np.ndarray:
        """Gradient of the mean loss with respect to the logits."""
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        probs, labels = self._cache
        batch = probs.shape[0]
        grad = probs.copy()
        grad[np.arange(batch), labels] -= 1.0
        return grad / batch

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


def accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Top-1 classification accuracy in [0, 1]."""
    predictions = np.argmax(logits, axis=1)
    return float(np.mean(predictions == np.asarray(labels)))
