"""Optimizers.

The paper trains all networks with SGD, Nesterov momentum of 0.9, and a
cosine learning-rate schedule (Section 5).  The optimizer here respects
pruning masks: after every step, masked weights are forced back to zero so
that retraining never resurrects a pruned weight.
"""

from __future__ import annotations

import numpy as np

from repro.nn.parameter import Parameter


class SGD:
    """Stochastic gradient descent with (Nesterov) momentum and weight decay.

    ``clip_norm`` optionally rescales the global gradient norm before every
    step.  Heavily pruned networks can produce occasional large gradients
    during retraining (few surviving weights carry all the signal), and
    clipping keeps the joint optimization stable without changing its
    steady-state behaviour.
    """

    def __init__(self, parameters: list[Parameter], lr: float = 0.05,
                 momentum: float = 0.9, nesterov: bool = True,
                 weight_decay: float = 0.0, clip_norm: float | None = None):
        if lr <= 0:
            raise ValueError("learning rate must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        if clip_norm is not None and clip_norm <= 0:
            raise ValueError("clip_norm must be positive when given")
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self.nesterov = nesterov
        self.weight_decay = weight_decay
        self.clip_norm = clip_norm
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def zero_grad(self) -> None:
        for param in self.parameters:
            param.zero_grad()

    def global_grad_norm(self) -> float:
        """L2 norm of all parameter gradients concatenated."""
        total = 0.0
        for param in self.parameters:
            total += float(np.sum(param.grad ** 2))
        return float(np.sqrt(total))

    def _clip_gradients(self) -> None:
        if self.clip_norm is None:
            return
        norm = self.global_grad_norm()
        if norm > self.clip_norm and norm > 0:
            scale = self.clip_norm / norm
            for param in self.parameters:
                param.grad *= scale

    def step(self) -> None:
        """Apply one update to every parameter, then re-apply pruning masks."""
        self._clip_gradients()
        for param, velocity in zip(self.parameters, self._velocity):
            if not param.requires_grad:
                continue
            grad = param.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * param.data
            if self.momentum:
                velocity *= self.momentum
                velocity += grad
                if self.nesterov:
                    update = grad + self.momentum * velocity
                else:
                    update = velocity
            else:
                update = grad
            param.data -= self.lr * update
            param.apply_mask()

    def set_lr(self, lr: float) -> None:
        """Update the learning rate; zero is allowed (a schedule may decay to 0)."""
        if lr < 0:
            raise ValueError("learning rate must be non-negative")
        self.lr = lr
