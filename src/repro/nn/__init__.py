"""A compact NumPy neural-network framework with manual backpropagation.

The framework provides exactly what the paper's training procedure needs:

* parameterised modules with explicit ``forward`` / ``backward`` passes,
* pointwise (1x1) convolution and the parameter-free shift operation used
  by shift convolution (Wu et al., 2017), which the paper adopts so that
  every convolutional layer becomes a plain filter *matrix*,
* batch normalization, ReLU, pooling, and dense layers,
* softmax cross-entropy loss,
* SGD with Nesterov momentum and a cosine learning-rate schedule
  (the optimizer setup described in Section 5 of the paper),
* pruning-mask support on every weight matrix so that retraining keeps
  pruned weights at zero.
"""

from repro.nn.parameter import Parameter
from repro.nn.module import Module, Sequential
from repro.nn.layers import (
    Dense,
    PointwiseConv2d,
    Shift2d,
    ShiftConv2d,
    BatchNorm2d,
    ReLU,
    Flatten,
    AvgPool2d,
    MaxPool2d,
    GlobalAvgPool2d,
    Identity,
    Dropout,
)
from repro.nn.loss import SoftmaxCrossEntropy, accuracy
from repro.nn.optim import SGD
from repro.nn.schedule import CosineSchedule, ConstantSchedule, StepSchedule
from repro.nn import init
from repro.nn.serialization import state_dict, load_state_dict

__all__ = [
    "Parameter",
    "Module",
    "Sequential",
    "Dense",
    "PointwiseConv2d",
    "Shift2d",
    "ShiftConv2d",
    "BatchNorm2d",
    "ReLU",
    "Flatten",
    "AvgPool2d",
    "MaxPool2d",
    "GlobalAvgPool2d",
    "Identity",
    "Dropout",
    "SoftmaxCrossEntropy",
    "accuracy",
    "SGD",
    "CosineSchedule",
    "ConstantSchedule",
    "StepSchedule",
    "init",
    "state_dict",
    "load_state_dict",
]
