"""Neural-network layers used by the paper's shift + pointwise CNNs.

All 2-D activations use NCHW layout: ``(batch, channels, height, width)``.
The only learned convolution is the pointwise (1x1) convolution; spatial
mixing happens through the parameter-free :class:`Shift2d` operation, so
every convolutional layer reduces to a filter *matrix* of shape
``(out_channels, in_channels)`` — exactly the matrix that column combining
packs.
"""

from __future__ import annotations

import numpy as np

from repro.nn import init
from repro.nn.module import Module
from repro.nn.parameter import Parameter


class Dense(Module):
    """Fully connected layer: ``y = x @ W.T + b`` with ``W`` of shape (out, in)."""

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None, name: str = "dense"):
        super().__init__()
        if in_features <= 0 or out_features <= 0:
            raise ValueError("in_features and out_features must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(
            init.kaiming_normal((out_features, in_features), in_features, rng),
            name=f"{name}.weight",
        )
        self.bias = Parameter(init.zeros((out_features,)), name=f"{name}.bias") if bias else None
        self._cache_x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expected input of shape (batch, {self.in_features}), got {x.shape}"
            )
        self._cache_x = x
        out = x @ self.weight.data.T
        if self.bias is not None:
            out = out + self.bias.data
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x = self._cache_x
        if x is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += grad_output.T @ x
        if self.weight.mask is not None:
            self.weight.grad *= self.weight.mask
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=0)
        return grad_output @ self.weight.data


class PointwiseConv2d(Module):
    """1x1 convolution over NCHW input; weight is the (N, M) filter matrix.

    This is the layer the column-combining algorithm operates on: its
    ``weight`` parameter *is* the filter matrix of Figure 1b (each output
    channel is a row, each input channel a column).
    """

    def __init__(self, in_channels: int, out_channels: int, bias: bool = False,
                 rng: np.random.Generator | None = None, name: str = "pointwise"):
        super().__init__()
        if in_channels <= 0 or out_channels <= 0:
            raise ValueError("in_channels and out_channels must be positive")
        rng = rng if rng is not None else np.random.default_rng(0)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.weight = Parameter(
            init.kaiming_normal((out_channels, in_channels), in_channels, rng),
            name=f"{name}.weight",
        )
        self.bias = Parameter(init.zeros((out_channels,)), name=f"{name}.bias") if bias else None
        self._cache_x: np.ndarray | None = None

    def check_input(self, x: np.ndarray) -> None:
        """Validate an NCHW activation batch for this layer.

        Shared by :meth:`forward` and the packed-inference substitutes
        (:mod:`repro.combining.inference`), so every path that stands in
        for this layer rejects malformed inputs identically.
        """
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"PointwiseConv2d expected (batch, {self.in_channels}, H, W), got {x.shape}"
            )

    def forward(self, x: np.ndarray) -> np.ndarray:
        self.check_input(x)
        self._cache_x = x
        # (B, C, H, W) -> einsum over channel dimension.
        out = np.einsum("nc,bchw->bnhw", self.weight.data, x, optimize=True)
        if self.bias is not None:
            out = out + self.bias.data[None, :, None, None]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        x = self._cache_x
        if x is None:
            raise RuntimeError("backward called before forward")
        self.weight.grad += np.einsum("bnhw,bchw->nc", grad_output, x, optimize=True)
        if self.weight.mask is not None:
            self.weight.grad *= self.weight.mask
        if self.bias is not None:
            self.bias.grad += grad_output.sum(axis=(0, 2, 3))
        return np.einsum("nc,bnhw->bchw", self.weight.data, grad_output, optimize=True)


#: The nine shift directions of shift convolution (dy, dx), centre included.
SHIFT_DIRECTIONS: tuple[tuple[int, int], ...] = (
    (0, 0),
    (-1, 0), (1, 0), (0, -1), (0, 1),
    (-1, -1), (-1, 1), (1, -1), (1, 1),
)


class Shift2d(Module):
    """Parameter-free per-channel spatial shift (Wu et al., 2017).

    Channels are divided as evenly as possible among the nine directions in
    :data:`SHIFT_DIRECTIONS`.  Pixels shifted in from outside the image are
    zero.  The backward pass applies the inverse shift to the gradient.
    """

    def __init__(self, channels: int):
        super().__init__()
        if channels <= 0:
            raise ValueError("channels must be positive")
        self.channels = channels
        self.assignment = self._assign_directions(channels)

    @staticmethod
    def _assign_directions(channels: int) -> np.ndarray:
        """Return an array of direction indices, one per channel."""
        reps = int(np.ceil(channels / len(SHIFT_DIRECTIONS)))
        assignment = np.tile(np.arange(len(SHIFT_DIRECTIONS)), reps)[:channels]
        return assignment

    @staticmethod
    def _shift_channel(plane: np.ndarray, dy: int, dx: int) -> np.ndarray:
        """Shift a (B, H, W) plane by (dy, dx) with zero fill."""
        out = np.zeros_like(plane)
        h, w = plane.shape[-2], plane.shape[-1]
        src_y = slice(max(0, -dy), min(h, h - dy))
        dst_y = slice(max(0, dy), min(h, h + dy))
        src_x = slice(max(0, -dx), min(w, w - dx))
        dst_x = slice(max(0, dx), min(w, w + dx))
        out[..., dst_y, dst_x] = plane[..., src_y, src_x]
        return out

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ValueError(
                f"Shift2d expected (batch, {self.channels}, H, W), got {x.shape}"
            )
        out = np.empty_like(x)
        for c in range(self.channels):
            dy, dx = SHIFT_DIRECTIONS[self.assignment[c]]
            out[:, c] = self._shift_channel(x[:, c], dy, dx)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_input = np.empty_like(grad_output)
        for c in range(self.channels):
            dy, dx = SHIFT_DIRECTIONS[self.assignment[c]]
            grad_input[:, c] = self._shift_channel(grad_output[:, c], -dy, -dx)
        return grad_input


class ShiftConv2d(Module):
    """Shift followed by pointwise convolution (Figure 2, "Shift Convolution").

    The learned weights live entirely in ``self.pointwise.weight``, which is
    the filter matrix that column combining packs.  ``stride`` > 1 subsamples
    the spatial grid after the pointwise convolution, matching how strided
    shift convolutions are realised in the paper's network variants.
    """

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 bias: bool = False, rng: np.random.Generator | None = None,
                 name: str = "shiftconv"):
        super().__init__()
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.shift = Shift2d(in_channels)
        self.pointwise = PointwiseConv2d(in_channels, out_channels, bias=bias,
                                         rng=rng, name=f"{name}.pointwise")
        self.stride = stride
        self._cache_shape: tuple[int, ...] | None = None

    @property
    def weight(self) -> Parameter:
        """The (out_channels, in_channels) filter matrix."""
        return self.pointwise.weight

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.pointwise.forward(self.shift.forward(x))
        self._cache_shape = out.shape
        if self.stride > 1:
            out = out[:, :, :: self.stride, :: self.stride]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self.stride > 1:
            if self._cache_shape is None:
                raise RuntimeError("backward called before forward")
            full = np.zeros(self._cache_shape, dtype=grad_output.dtype)
            full[:, :, :: self.stride, :: self.stride] = grad_output
            grad_output = full
        return self.shift.backward(self.pointwise.backward(grad_output))


class BatchNorm2d(Module):
    """Batch normalization over the channel dimension of NCHW tensors."""

    def __init__(self, channels: int, momentum: float = 0.1, eps: float = 1e-5,
                 name: str = "bn"):
        super().__init__()
        if channels <= 0:
            raise ValueError("channels must be positive")
        self.channels = channels
        self.momentum = momentum
        self.eps = eps
        self.gamma = Parameter(init.ones((channels,)), name=f"{name}.gamma")
        self.beta = Parameter(init.zeros((channels,)), name=f"{name}.beta")
        self.running_mean = np.zeros(channels)
        self.running_var = np.ones(channels)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ValueError(
                f"BatchNorm2d expected (batch, {self.channels}, H, W), got {x.shape}"
            )
        if self.training:
            mean = x.mean(axis=(0, 2, 3))
            var = x.var(axis=(0, 2, 3))
            self.running_mean = (1 - self.momentum) * self.running_mean + self.momentum * mean
            self.running_var = (1 - self.momentum) * self.running_var + self.momentum * var
        else:
            mean = self.running_mean
            var = self.running_var
        inv_std = 1.0 / np.sqrt(var + self.eps)
        x_hat = (x - mean[None, :, None, None]) * inv_std[None, :, None, None]
        self._cache = (x_hat, inv_std, x.shape)
        return self.gamma.data[None, :, None, None] * x_hat + self.beta.data[None, :, None, None]

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        x_hat, inv_std, shape = self._cache
        batch, _, height, width = shape
        count = batch * height * width
        self.gamma.grad += (grad_output * x_hat).sum(axis=(0, 2, 3))
        self.beta.grad += grad_output.sum(axis=(0, 2, 3))
        gamma = self.gamma.data[None, :, None, None]
        dxhat = grad_output * gamma
        if not self.training:
            return dxhat * inv_std[None, :, None, None]
        sum_dxhat = dxhat.sum(axis=(0, 2, 3), keepdims=True)
        sum_dxhat_xhat = (dxhat * x_hat).sum(axis=(0, 2, 3), keepdims=True)
        grad_input = (dxhat - sum_dxhat / count - x_hat * sum_dxhat_xhat / count)
        return grad_input * inv_std[None, :, None, None]


class ReLU(Module):
    """Rectified linear activation."""

    def __init__(self) -> None:
        super().__init__()
        self._cache_positive: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache_positive = x > 0
        return np.where(self._cache_positive, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_positive is None:
            raise RuntimeError("backward called before forward")
        return grad_output * self._cache_positive


class Identity(Module):
    """Pass-through module (used for residual shortcuts)."""

    def forward(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return grad_output


class Flatten(Module):
    """Flatten all dimensions except the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._cache_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_shape is None:
            raise RuntimeError("backward called before forward")
        return grad_output.reshape(self._cache_shape)


class AvgPool2d(Module):
    """Non-overlapping average pooling with ``kernel == stride``."""

    def __init__(self, kernel: int):
        super().__init__()
        if kernel < 1:
            raise ValueError("kernel must be >= 1")
        self.kernel = kernel
        self._cache_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel
        batch, channels, height, width = x.shape
        if height % k or width % k:
            raise ValueError(f"spatial dims {height}x{width} not divisible by kernel {k}")
        self._cache_shape = x.shape
        return x.reshape(batch, channels, height // k, k, width // k, k).mean(axis=(3, 5))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_shape is None:
            raise RuntimeError("backward called before forward")
        k = self.kernel
        grad = np.repeat(np.repeat(grad_output, k, axis=2), k, axis=3) / (k * k)
        return grad.reshape(self._cache_shape)


class MaxPool2d(Module):
    """Non-overlapping max pooling with ``kernel == stride``."""

    def __init__(self, kernel: int):
        super().__init__()
        if kernel < 1:
            raise ValueError("kernel must be >= 1")
        self.kernel = kernel
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        k = self.kernel
        batch, channels, height, width = x.shape
        if height % k or width % k:
            raise ValueError(f"spatial dims {height}x{width} not divisible by kernel {k}")
        windows = x.reshape(batch, channels, height // k, k, width // k, k)
        out = windows.max(axis=(3, 5))
        mask = windows == out[:, :, :, None, :, None]
        # Break ties so each window contributes gradient exactly once.  The
        # window axes (3 and 5) must be adjacent before flattening them.
        flat = mask.transpose(0, 1, 2, 4, 3, 5).reshape(
            batch, channels, height // k, width // k, k * k)
        first = np.argmax(flat, axis=-1)
        unique_flat = np.zeros_like(flat)
        np.put_along_axis(unique_flat, first[..., None], 1, axis=-1)
        unique_mask = unique_flat.reshape(
            batch, channels, height // k, width // k, k, k
        ).transpose(0, 1, 2, 4, 3, 5).astype(x.dtype)
        self._cache = (unique_mask, x.shape)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise RuntimeError("backward called before forward")
        mask, shape = self._cache
        grad = mask * grad_output[:, :, :, None, :, None]
        return grad.reshape(shape)


class GlobalAvgPool2d(Module):
    """Average over the full spatial extent, producing (batch, channels)."""

    def __init__(self) -> None:
        super().__init__()
        self._cache_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._cache_shape = x.shape
        return x.mean(axis=(2, 3))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_shape is None:
            raise RuntimeError("backward called before forward")
        _, _, height, width = self._cache_shape
        grad = grad_output[:, :, None, None] / (height * width)
        return np.broadcast_to(grad, self._cache_shape).copy()


class Dropout(Module):
    """Inverted dropout; a no-op in evaluation mode."""

    def __init__(self, rate: float = 0.5, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self._cache_mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._cache_mask = None
            return x
        keep = 1.0 - self.rate
        self._cache_mask = (self.rng.random(x.shape) < keep) / keep
        return x * self._cache_mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache_mask is None:
            return grad_output
        return grad_output * self._cache_mask
