"""Trainable parameters with optional pruning masks."""

from __future__ import annotations

import numpy as np


class Parameter:
    """A trainable tensor with gradient storage and an optional binary mask.

    The mask is how the pruning and column-combining machinery communicates
    with the optimizer: a weight whose mask entry is ``0`` is pruned, stays
    at exactly zero through retraining, and is excluded from the nonzero
    count used by Algorithm 1's stopping criterion.
    """

    def __init__(self, data: np.ndarray, name: str = "", requires_grad: bool = True):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad = np.zeros_like(self.data)
        self.name = name
        self.requires_grad = bool(requires_grad)
        #: binary mask with the same shape as ``data``; ``None`` means dense.
        self.mask: np.ndarray | None = None

    # -- shape helpers -----------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def size(self) -> int:
        return int(self.data.size)

    # -- pruning -----------------------------------------------------------
    def set_mask(self, mask: np.ndarray) -> None:
        """Install a binary mask and immediately apply it to the data."""
        mask = np.asarray(mask)
        if mask.shape != self.data.shape:
            raise ValueError(
                f"mask shape {mask.shape} does not match parameter shape {self.data.shape}"
            )
        self.mask = (mask != 0).astype(self.data.dtype)
        self.apply_mask()

    def clear_mask(self) -> None:
        """Remove the mask (the parameter becomes dense again)."""
        self.mask = None

    def apply_mask(self) -> None:
        """Zero out data and gradient entries where the mask is zero."""
        if self.mask is not None:
            self.data *= self.mask
            self.grad *= self.mask

    def nonzero_count(self) -> int:
        """Number of weights that survive the mask (or all weights if dense)."""
        if self.mask is not None:
            return int(np.count_nonzero(self.mask))
        return int(np.count_nonzero(self.data))

    # -- gradient management -------------------------------------------------
    def zero_grad(self) -> None:
        self.grad.fill(0.0)

    def __repr__(self) -> str:  # pragma: no cover - debug convenience
        nz = self.nonzero_count()
        return f"Parameter(name={self.name!r}, shape={self.shape}, nonzeros={nz})"
