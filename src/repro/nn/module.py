"""Module base class and Sequential container."""

from __future__ import annotations

from typing import Iterable, Iterator

import numpy as np

from repro.nn.parameter import Parameter


class Module:
    """Base class for all layers and models.

    Subclasses implement :meth:`forward` (caching whatever they need) and
    :meth:`backward` (consuming the cache, writing parameter gradients, and
    returning the gradient with respect to the input).  The design mirrors
    a classic define-by-run framework without autograd: explicit, easy to
    verify, and fast enough for the scaled-down experiments.
    """

    def __init__(self) -> None:
        self.training = True

    # -- forward / backward -------------------------------------------------
    def forward(self, x: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- parameter / submodule discovery -------------------------------------
    def parameters(self) -> list[Parameter]:
        """All trainable parameters of this module and its children."""
        params: list[Parameter] = []
        seen: set[int] = set()
        for value in self.__dict__.values():
            for param in _collect_parameters(value):
                if id(param) not in seen:
                    seen.add(id(param))
                    params.append(param)
        return params

    def named_parameters(self, prefix: str = "") -> list[tuple[str, Parameter]]:
        """(name, parameter) pairs; names follow attribute paths."""
        result: list[tuple[str, Parameter]] = []
        seen: set[int] = set()
        for attr, value in self.__dict__.items():
            path = f"{prefix}{attr}" if not prefix else f"{prefix}.{attr}"
            for name, param in _collect_named(value, path):
                if id(param) not in seen:
                    seen.add(id(param))
                    result.append((name, param))
        return result

    def modules(self) -> list["Module"]:
        """This module followed by all nested submodules (depth-first)."""
        found: list[Module] = [self]
        seen = {id(self)}
        for value in self.__dict__.values():
            for sub in _collect_modules(value):
                if id(sub) not in seen:
                    seen.add(id(sub))
                    found.append(sub)
                    for nested in sub.modules():
                        if id(nested) not in seen:
                            seen.add(id(nested))
                            found.append(nested)
        return found

    def named_modules(self, prefix: str = "") -> list[tuple[str, "Module"]]:
        """(path, module) pairs; paths follow attribute traversal.

        The module analogue of :meth:`named_parameters` (same traversal,
        so container members come out as e.g. ``features.layers.0``):
        the stable addressing serialization uses for non-parameter module
        state such as batch-norm running statistics.
        """
        result: list[tuple[str, Module]] = [(prefix, self)]
        seen = {id(self)}
        for attr, value in self.__dict__.items():
            path = f"{prefix}.{attr}" if prefix else attr
            for name, module in _collect_named_modules(value, path):
                if id(module) not in seen:
                    seen.add(id(module))
                    result.append((name, module))
        return result

    # -- training-mode toggles ------------------------------------------------
    def train(self) -> "Module":
        for module in self.modules():
            module.training = True
        return self

    def eval(self) -> "Module":
        for module in self.modules():
            module.training = False
        return self

    # -- gradient helpers -----------------------------------------------------
    def zero_grad(self) -> None:
        for param in self.parameters():
            param.zero_grad()

    def apply_masks(self) -> None:
        """Re-apply every pruning mask (used after optimizer steps)."""
        for param in self.parameters():
            param.apply_mask()

    def nonzero_count(self) -> int:
        """Total number of unpruned weights across all parameters."""
        return sum(p.nonzero_count() for p in self.parameters())


class Sequential(Module):
    """Run modules in order; backward runs them in reverse order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self.layers = list(modules)

    def add(self, module: Module) -> None:
        self.layers.append(module)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad_output = layer.backward(grad_output)
        return grad_output

    def __iter__(self) -> Iterator[Module]:
        return iter(self.layers)

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


# -- attribute traversal helpers ---------------------------------------------

def _collect_parameters(value) -> Iterable[Parameter]:
    if isinstance(value, Parameter):
        yield value
    elif isinstance(value, Module):
        yield from value.parameters()
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect_parameters(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _collect_parameters(item)


def _collect_named(value, path: str) -> Iterable[tuple[str, Parameter]]:
    if isinstance(value, Parameter):
        yield path, value
    elif isinstance(value, Module):
        yield from value.named_parameters(prefix=path)
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            yield from _collect_named(item, f"{path}.{i}")
    elif isinstance(value, dict):
        for key, item in value.items():
            yield from _collect_named(item, f"{path}.{key}")


def _collect_named_modules(value, path: str) -> Iterable[tuple[str, Module]]:
    if isinstance(value, Module):
        yield path, value
        for name, module in value.named_modules(prefix=path):
            if module is not value:
                yield name, module
    elif isinstance(value, (list, tuple)):
        for i, item in enumerate(value):
            yield from _collect_named_modules(item, f"{path}.{i}")
    elif isinstance(value, dict):
        for key, item in value.items():
            yield from _collect_named_modules(item, f"{path}.{key}")


def _collect_modules(value) -> Iterable[Module]:
    if isinstance(value, Module):
        yield value
    elif isinstance(value, (list, tuple)):
        for item in value:
            yield from _collect_modules(item)
    elif isinstance(value, dict):
        for item in value.values():
            yield from _collect_modules(item)
