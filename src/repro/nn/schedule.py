"""Learning-rate schedules.

The paper uses a cosine-shaped schedule over each iteration of Algorithm 1
that ends at 20% of the initial learning rate, and decays to 0 during the
final 100 epochs of fine-tuning.
"""

from __future__ import annotations

import math


class ConstantSchedule:
    """Always return the same learning rate."""

    def __init__(self, lr: float):
        if lr <= 0:
            raise ValueError("lr must be positive")
        self.lr = lr

    def __call__(self, step: int, total_steps: int) -> float:
        return self.lr


class CosineSchedule:
    """Cosine decay from ``lr`` to ``lr * final_fraction`` over ``total_steps``.

    With ``final_fraction=0.2`` this matches the per-iteration schedule of
    Section 5; with ``final_fraction=0.0`` it matches the final fine-tuning
    phase.
    """

    def __init__(self, lr: float, final_fraction: float = 0.2):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= final_fraction <= 1.0:
            raise ValueError("final_fraction must be in [0, 1]")
        self.lr = lr
        self.final_fraction = final_fraction

    def __call__(self, step: int, total_steps: int) -> float:
        if total_steps <= 1:
            return self.lr
        step = min(max(step, 0), total_steps - 1)
        progress = step / (total_steps - 1)
        floor = self.lr * self.final_fraction
        return floor + 0.5 * (self.lr - floor) * (1.0 + math.cos(math.pi * progress))


class StepSchedule:
    """Multiply the learning rate by ``gamma`` every ``step_size`` steps."""

    def __init__(self, lr: float, step_size: int, gamma: float = 0.1):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if step_size < 1:
            raise ValueError("step_size must be >= 1")
        if gamma <= 0:
            raise ValueError("gamma must be positive")
        self.lr = lr
        self.step_size = step_size
        self.gamma = gamma

    def __call__(self, step: int, total_steps: int) -> float:
        drops = max(step, 0) // self.step_size
        return self.lr * (self.gamma ** drops)
