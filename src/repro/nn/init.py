"""Weight initialization schemes."""

from __future__ import annotations

import numpy as np


def kaiming_normal(shape: tuple[int, ...], fan_in: int, rng: np.random.Generator) -> np.ndarray:
    """He-normal initialization appropriate for ReLU networks."""
    if fan_in <= 0:
        raise ValueError(f"fan_in must be positive, got {fan_in}")
    std = np.sqrt(2.0 / fan_in)
    return rng.normal(0.0, std, size=shape)


def xavier_uniform(shape: tuple[int, ...], fan_in: int, fan_out: int,
                   rng: np.random.Generator) -> np.ndarray:
    """Glorot-uniform initialization for linear / softmax layers."""
    if fan_in <= 0 or fan_out <= 0:
        raise ValueError("fan_in and fan_out must be positive")
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape)
