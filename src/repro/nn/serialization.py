"""Parameter snapshotting (state dictionaries).

Used by the limited-data experiment (Section 6), which starts from a
pretrained dense model, and by tests that need to clone models.
"""

from __future__ import annotations

import numpy as np

from repro.nn.module import Module


def state_dict(model: Module) -> dict[str, np.ndarray]:
    """Copy all parameter data (and masks) keyed by parameter path.

    Masks are stored under the key ``<name>::mask`` so that a pruned model
    round-trips exactly.
    """
    state: dict[str, np.ndarray] = {}
    for name, param in model.named_parameters():
        state[name] = param.data.copy()
        if param.mask is not None:
            state[f"{name}::mask"] = param.mask.copy()
    return state


def load_state_dict(model: Module, state: dict[str, np.ndarray],
                    strict: bool = True) -> None:
    """Load parameter data (and masks) produced by :func:`state_dict`."""
    named = dict(model.named_parameters())
    missing = [k for k in state if not k.endswith("::mask") and k not in named]
    if strict and missing:
        raise KeyError(f"state contains unknown parameters: {missing}")
    for name, param in named.items():
        if name not in state:
            if strict:
                raise KeyError(f"state is missing parameter {name!r}")
            continue
        data = state[name]
        if data.shape != param.data.shape:
            raise ValueError(
                f"shape mismatch for {name!r}: state {data.shape} vs model {param.data.shape}"
            )
        param.data = data.copy()
        mask_key = f"{name}::mask"
        if mask_key in state:
            param.set_mask(state[mask_key])
        else:
            param.clear_mask()
