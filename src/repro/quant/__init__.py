"""Linear fixed-point quantization (Section 2.5).

Inputs and weights are quantized to 8-bit fixed point; accumulations inside
a layer are kept at 32 bits (16 bits for the small LeNet-5 ASIC designs).
"""

from repro.quant.linear import (
    CALIBRATIONS,
    LinearQuantizer,
    quantize_tensor,
    dequantize_tensor,
    quantization_error,
)

__all__ = [
    "CALIBRATIONS",
    "LinearQuantizer",
    "quantize_tensor",
    "dequantize_tensor",
    "quantization_error",
]
