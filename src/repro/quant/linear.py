"""Symmetric linear fixed-point quantization."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class LinearQuantizer:
    """Symmetric linear quantizer mapping floats to signed ``bits``-bit integers.

    ``scale`` is chosen so that the largest observed magnitude maps to the
    largest representable integer; zero always maps to zero (symmetric,
    zero-point-free), which keeps the bit-serial MAC design simple.
    """

    bits: int = 8
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.bits < 2:
            raise ValueError("bits must be >= 2")
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    @property
    def qmax(self) -> int:
        """Largest representable positive integer."""
        return 2 ** (self.bits - 1) - 1

    @property
    def qmin(self) -> int:
        return -(2 ** (self.bits - 1))

    @classmethod
    def fit(cls, tensor: np.ndarray, bits: int = 8) -> "LinearQuantizer":
        """Calibrate the scale from the largest magnitude in ``tensor``."""
        tensor = np.asarray(tensor)
        max_abs = float(np.max(np.abs(tensor))) if tensor.size else 0.0
        qmax = 2 ** (bits - 1) - 1
        scale = max_abs / qmax if max_abs > 0 else 1.0
        return cls(bits=bits, scale=scale)

    def quantize(self, tensor: np.ndarray) -> np.ndarray:
        """Round to integers and clip to the representable range."""
        tensor = np.asarray(tensor, dtype=np.float64)
        q = np.round(tensor / self.scale)
        return np.clip(q, self.qmin, self.qmax).astype(np.int64)

    def dequantize(self, quantized: np.ndarray) -> np.ndarray:
        """Map integers back to floats."""
        return np.asarray(quantized, dtype=np.float64) * self.scale

    def roundtrip(self, tensor: np.ndarray) -> np.ndarray:
        """Quantize then dequantize (the simulated-quantization value)."""
        return self.dequantize(self.quantize(tensor))


def quantize_tensor(tensor: np.ndarray, bits: int = 8) -> tuple[np.ndarray, LinearQuantizer]:
    """Calibrate a quantizer on ``tensor`` and return (integers, quantizer)."""
    quantizer = LinearQuantizer.fit(tensor, bits=bits)
    return quantizer.quantize(tensor), quantizer


def dequantize_tensor(quantized: np.ndarray, quantizer: LinearQuantizer) -> np.ndarray:
    """Inverse of :func:`quantize_tensor`."""
    return quantizer.dequantize(quantized)


def quantization_error(tensor: np.ndarray, bits: int = 8) -> float:
    """Root-mean-square error introduced by ``bits``-bit quantization."""
    tensor = np.asarray(tensor, dtype=np.float64)
    if tensor.size == 0:
        return 0.0
    quantizer = LinearQuantizer.fit(tensor, bits=bits)
    return float(np.sqrt(np.mean((quantizer.roundtrip(tensor) - tensor) ** 2)))
