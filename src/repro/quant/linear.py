"""Symmetric linear fixed-point quantization."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

#: Scale-calibration strategies of :meth:`LinearQuantizer.fit`.
CALIBRATIONS: tuple[str, ...] = ("max", "percentile")


@dataclass
class LinearQuantizer:
    """Symmetric linear quantizer mapping floats to signed ``bits``-bit integers.

    ``scale`` is chosen so that the largest observed magnitude maps to the
    largest representable integer; zero always maps to zero (symmetric,
    zero-point-free), which keeps the bit-serial MAC design simple.
    """

    bits: int = 8
    scale: float = 1.0

    def __post_init__(self) -> None:
        if self.bits < 2:
            raise ValueError("bits must be >= 2")
        if self.scale <= 0:
            raise ValueError("scale must be positive")

    @property
    def qmax(self) -> int:
        """Largest representable positive integer."""
        return 2 ** (self.bits - 1) - 1

    @property
    def qmin(self) -> int:
        return -(2 ** (self.bits - 1))

    @classmethod
    def fit(cls, tensor: np.ndarray, bits: int = 8, calibration: str = "max",
            percentile: float = 99.5) -> "LinearQuantizer":
        """Calibrate the scale from the magnitudes observed in ``tensor``.

        ``calibration`` selects the statistic mapped to the largest
        representable integer:

        * ``"max"`` — the largest magnitude.  Nothing saturates, but a
          single outlier stretches the scale and wastes resolution on the
          bulk of the distribution (which hurts hard at 2-4 bits).
        * ``"percentile"`` — the ``percentile``-th percentile of the
          magnitudes.  Values beyond it saturate (clip) at ``qmax``, in
          exchange for finer resolution where the mass of the values
          lives; this is what keeps low-bit sweeps stable on activation
          distributions with heavy tails.  When the chosen percentile
          lands on 0 (mostly-zero tensors) the fit falls back to the
          max-magnitude scale rather than producing a degenerate scale.

        All-zero (or empty) tensors take an explicit fast path: no
        magnitude statistics exist, so the unit scale is returned directly
        and every representable input quantizes to 0.
        """
        if calibration not in CALIBRATIONS:
            raise ValueError(f"unknown calibration {calibration!r}; "
                             f"expected one of {CALIBRATIONS}")
        tensor = np.asarray(tensor)
        if tensor.size == 0 or not np.any(tensor):
            # Zero-tensor fast path: there is nothing to calibrate on.
            return cls(bits=bits, scale=1.0)
        magnitudes = np.abs(tensor)
        max_abs = float(np.max(magnitudes))
        if calibration == "percentile":
            if not 0.0 < percentile <= 100.0:
                raise ValueError("percentile must be in (0, 100]")
            clipped = float(np.percentile(magnitudes, percentile))
            if clipped > 0.0:
                max_abs = clipped
        if not max_abs > 0.0:
            # NaN magnitudes (a diverged model) give max_abs=nan, which
            # fails every comparison; fall back to the unit scale rather
            # than poisoning quantize() with scale=nan.
            return cls(bits=bits, scale=1.0)
        qmax = 2 ** (bits - 1) - 1
        return cls(bits=bits, scale=max_abs / qmax)

    def quantize(self, tensor: np.ndarray) -> np.ndarray:
        """Round to integers and clip to the representable range."""
        tensor = np.asarray(tensor, dtype=np.float64)
        q = np.round(tensor / self.scale)
        return np.clip(q, self.qmin, self.qmax).astype(np.int64)

    def quantize_with_saturation(self, tensor: np.ndarray
                                 ) -> tuple[np.ndarray, float]:
        """:meth:`quantize` plus the saturation rate, in a single pass.

        Counts the clipped values on the rounded integers the quantization
        itself computes, so callers that need both (the systolic execution
        path) do not pay a second full round over the data.
        """
        tensor = np.asarray(tensor, dtype=np.float64)
        if tensor.size == 0:
            return np.zeros(tensor.shape, dtype=np.int64), 0.0
        q = np.round(tensor / self.scale)
        clipped = np.count_nonzero((q < self.qmin) | (q > self.qmax))
        quantized = np.clip(q, self.qmin, self.qmax).astype(np.int64)
        return quantized, float(clipped / tensor.size)

    def dequantize(self, quantized: np.ndarray) -> np.ndarray:
        """Map integers back to floats."""
        return np.asarray(quantized, dtype=np.float64) * self.scale

    def roundtrip(self, tensor: np.ndarray) -> np.ndarray:
        """Quantize then dequantize (the simulated-quantization value)."""
        return self.dequantize(self.quantize(tensor))

    def saturation_rate(self, tensor: np.ndarray) -> float:
        """Fraction of values that clip at the representable range.

        A value saturates when its rounded integer image falls outside
        ``[qmin, qmax]`` — with a max-magnitude fit this is 0.0; with
        percentile calibration it is roughly the tail mass beyond the
        calibration percentile.
        """
        return self.quantize_with_saturation(tensor)[1]

    def rmse(self, tensor: np.ndarray) -> float:
        """Root-mean-square error of quantizing ``tensor`` with this scale."""
        tensor = np.asarray(tensor, dtype=np.float64)
        if tensor.size == 0:
            return 0.0
        return float(np.sqrt(np.mean((self.roundtrip(tensor) - tensor) ** 2)))


def quantize_tensor(tensor: np.ndarray, bits: int = 8) -> tuple[np.ndarray, LinearQuantizer]:
    """Calibrate a quantizer on ``tensor`` and return (integers, quantizer)."""
    quantizer = LinearQuantizer.fit(tensor, bits=bits)
    return quantizer.quantize(tensor), quantizer


def dequantize_tensor(quantized: np.ndarray, quantizer: LinearQuantizer) -> np.ndarray:
    """Inverse of :func:`quantize_tensor`."""
    return quantizer.dequantize(quantized)


def quantization_error(tensor: np.ndarray, bits: int = 8) -> float:
    """Root-mean-square error introduced by ``bits``-bit quantization."""
    tensor = np.asarray(tensor, dtype=np.float64)
    if tensor.size == 0:
        return 0.0
    quantizer = LinearQuantizer.fit(tensor, bits=bits)
    return float(np.sqrt(np.mean((quantizer.roundtrip(tensor) - tensor) ** 2)))
