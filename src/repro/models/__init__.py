"""CNN model definitions in shift + pointwise-convolution form.

Following Section 5 of the paper, every convolutional layer of LeNet-5,
VGG, and ResNet-20 is replaced by a shift operation followed by a pointwise
(1x1) convolution, so each layer's learned weights form a filter matrix of
shape (out_channels, in_channels) — the object column combining packs.
"""

from repro.models.lenet import LeNet5
from repro.models.vgg import VGG
from repro.models.resnet import ResNet20, BasicBlock
from repro.models.registry import build_model, packable_layers, MODEL_REGISTRY

__all__ = [
    "LeNet5",
    "VGG",
    "ResNet20",
    "BasicBlock",
    "build_model",
    "packable_layers",
    "MODEL_REGISTRY",
]
