"""ResNet-20 in shift + pointwise form (the paper's main CIFAR-10 network)."""

from __future__ import annotations

import numpy as np

from repro.nn import (
    BatchNorm2d,
    Dense,
    GlobalAvgPool2d,
    Module,
    PointwiseConv2d,
    ReLU,
    Sequential,
    ShiftConv2d,
)


def _scaled(width: int, scale: float, minimum: int = 4) -> int:
    return max(minimum, int(round(width * scale)))


class _StridedPointwiseShortcut(Module):
    """1x1 projection shortcut with spatial subsampling (for stage changes)."""

    def __init__(self, in_channels: int, out_channels: int, stride: int,
                 rng: np.random.Generator | None, name: str):
        super().__init__()
        self.pointwise = PointwiseConv2d(in_channels, out_channels, rng=rng,
                                         name=f"{name}.pointwise")
        self.stride = stride
        self._cache_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.pointwise.forward(x)
        self._cache_shape = out.shape
        if self.stride > 1:
            out = out[:, :, :: self.stride, :: self.stride]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self.stride > 1:
            if self._cache_shape is None:
                raise RuntimeError("backward called before forward")
            full = np.zeros(self._cache_shape, dtype=grad_output.dtype)
            full[:, :, :: self.stride, :: self.stride] = grad_output
            grad_output = full
        return self.pointwise.backward(grad_output)


class BasicBlock(Module):
    """Residual block: two shift-convolutions with a (possibly projected) shortcut."""

    def __init__(self, in_channels: int, out_channels: int, stride: int = 1,
                 rng: np.random.Generator | None = None, name: str = "block"):
        super().__init__()
        rng = rng if rng is not None else np.random.default_rng(0)
        self.conv1 = ShiftConv2d(in_channels, out_channels, stride=stride, rng=rng,
                                 name=f"{name}.conv1")
        self.bn1 = BatchNorm2d(out_channels, name=f"{name}.bn1")
        self.relu1 = ReLU()
        self.conv2 = ShiftConv2d(out_channels, out_channels, rng=rng, name=f"{name}.conv2")
        self.bn2 = BatchNorm2d(out_channels, name=f"{name}.bn2")
        self.relu_out = ReLU()
        if stride != 1 or in_channels != out_channels:
            self.shortcut: Module = _StridedPointwiseShortcut(
                in_channels, out_channels, stride, rng, name=f"{name}.shortcut")
        else:
            self.shortcut = None  # identity shortcut

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.relu1.forward(self.bn1.forward(self.conv1.forward(x)))
        out = self.bn2.forward(self.conv2.forward(out))
        residual = self.shortcut.forward(x) if self.shortcut is not None else x
        return self.relu_out.forward(out + residual)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad_sum = self.relu_out.backward(grad_output)
        # Main branch.
        grad_main = self.conv1.backward(
            self.relu1.backward(
                self.bn1.backward(
                    self.conv2.backward(self.bn2.backward(grad_sum)))))
        # Shortcut branch.
        if self.shortcut is not None:
            grad_shortcut = self.shortcut.backward(grad_sum)
        else:
            grad_shortcut = grad_sum
        return grad_main + grad_shortcut

    def packable_layers(self, prefix: str) -> list[tuple[str, PointwiseConv2d]]:
        layers = [
            (f"{prefix}.conv1.pointwise", self.conv1.pointwise),
            (f"{prefix}.conv2.pointwise", self.conv2.pointwise),
        ]
        if self.shortcut is not None:
            layers.append((f"{prefix}.shortcut.pointwise", self.shortcut.pointwise))
        return layers


class ResNet20(Module):
    """ResNet-20: a stem plus three stages of three residual blocks.

    Stage widths are 16 / 32 / 64 before ``scale``; the second and third
    stages halve the spatial resolution.  Exactly the topology described by
    He et al. for CIFAR-10, with every convolution in shift + pointwise
    form as in Section 5 of the paper.
    """

    def __init__(self, in_channels: int = 3, num_classes: int = 10, scale: float = 1.0,
                 blocks_per_stage: int = 3, rng: np.random.Generator | None = None):
        super().__init__()
        if blocks_per_stage < 1:
            raise ValueError("blocks_per_stage must be >= 1")
        rng = rng if rng is not None else np.random.default_rng(0)
        widths = [_scaled(w, scale) for w in (16, 32, 64)]
        self.stem = ShiftConv2d(in_channels, widths[0], rng=rng, name="stem")
        self.stem_bn = BatchNorm2d(widths[0], name="stem_bn")
        self.stem_relu = ReLU()
        blocks: list[BasicBlock] = []
        channels = widths[0]
        for stage, width in enumerate(widths):
            for index in range(blocks_per_stage):
                stride = 2 if (stage > 0 and index == 0) else 1
                blocks.append(BasicBlock(channels, width, stride=stride, rng=rng,
                                         name=f"stage{stage}.block{index}"))
                channels = width
        self.blocks = Sequential(*blocks)
        self.pool = GlobalAvgPool2d()
        self.classifier = Dense(channels, num_classes, rng=rng, name="classifier")
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        out = self.stem_relu.forward(self.stem_bn.forward(self.stem.forward(x)))
        out = self.blocks.forward(out)
        return self.classifier.forward(self.pool.forward(out))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.pool.backward(self.classifier.backward(grad_output))
        grad = self.blocks.backward(grad)
        return self.stem.backward(self.stem_bn.backward(self.stem_relu.backward(grad)))

    def packable_layers(self) -> list[tuple[str, PointwiseConv2d]]:
        """All pointwise convolutional layers (stem, blocks, shortcuts) in order."""
        layers: list[tuple[str, PointwiseConv2d]] = [("stem.pointwise", self.stem.pointwise)]
        for i, block in enumerate(self.blocks):
            layers.extend(block.packable_layers(f"blocks.{i}"))
        return layers
