"""Model registry and helpers for discovering packable filter matrices."""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.nn import Module, PointwiseConv2d, ShiftConv2d
from repro.models.lenet import LeNet5
from repro.models.resnet import ResNet20
from repro.models.vgg import VGG

#: Map of model name -> constructor.  All constructors accept
#: ``in_channels``, ``num_classes``, ``scale``, and ``rng``.
MODEL_REGISTRY: dict[str, Callable[..., Module]] = {
    "lenet5": LeNet5,
    "vgg": VGG,
    "resnet20": ResNet20,
}


def build_model(name: str, **kwargs) -> Module:
    """Instantiate a registered model by name.

    Raises ``KeyError`` with the list of known names if ``name`` is unknown.
    """
    key = name.lower()
    if key not in MODEL_REGISTRY:
        raise KeyError(f"unknown model {name!r}; known models: {sorted(MODEL_REGISTRY)}")
    return MODEL_REGISTRY[key](**kwargs)


def packable_layers(model: Module) -> list[tuple[str, PointwiseConv2d]]:
    """Return the (name, pointwise layer) pairs whose weights can be packed.

    Models define their own ``packable_layers`` method to guarantee forward
    order (needed for row permutation across consecutive layers); for
    arbitrary modules we fall back to collecting every pointwise
    convolution found inside a shift convolution.
    """
    method = getattr(model, "packable_layers", None)
    if callable(method):
        return method()
    layers: list[tuple[str, PointwiseConv2d]] = []
    for index, module in enumerate(model.modules()):
        if isinstance(module, ShiftConv2d):
            layers.append((f"module.{index}.pointwise", module.pointwise))
    return layers


def filter_matrices(model: Module) -> list[np.ndarray]:
    """Convenience: the raw filter matrices of every packable layer."""
    return [layer.weight.data for _, layer in packable_layers(model)]
