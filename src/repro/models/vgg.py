"""A VGG-style network in shift + pointwise form (CIFAR-class workloads)."""

from __future__ import annotations

import numpy as np

from repro.nn import (
    BatchNorm2d,
    Dense,
    GlobalAvgPool2d,
    MaxPool2d,
    Module,
    PointwiseConv2d,
    ReLU,
    Sequential,
    ShiftConv2d,
)


def _scaled(width: int, scale: float, minimum: int = 4) -> int:
    return max(minimum, int(round(width * scale)))


class VGG(Module):
    """VGG-style shift-convolution network.

    ``stage_widths`` and ``convs_per_stage`` default to a compact VGG
    (three stages of two convolutions, 64/128/256 channels before scaling),
    mirroring the structure the paper uses for CIFAR-10 while keeping the
    reproduction CPU-trainable.  Max pooling follows every stage except the
    last, which feeds a global average pool and a dense classifier.
    """

    def __init__(self, in_channels: int = 3, num_classes: int = 10, scale: float = 1.0,
                 stage_widths: tuple[int, ...] = (64, 128, 256),
                 convs_per_stage: int = 2,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if convs_per_stage < 1:
            raise ValueError("convs_per_stage must be >= 1")
        if not stage_widths:
            raise ValueError("stage_widths must be non-empty")
        rng = rng if rng is not None else np.random.default_rng(0)
        layers: list[Module] = []
        channels = in_channels
        for stage, width in enumerate(stage_widths):
            width = _scaled(width, scale)
            for conv in range(convs_per_stage):
                layers.append(ShiftConv2d(channels, width, rng=rng,
                                          name=f"stage{stage}.conv{conv}"))
                layers.append(BatchNorm2d(width, name=f"stage{stage}.bn{conv}"))
                layers.append(ReLU())
                channels = width
            if stage != len(stage_widths) - 1:
                layers.append(MaxPool2d(2))
        self.features = Sequential(*layers)
        self.pool = GlobalAvgPool2d()
        self.classifier = Dense(channels, num_classes, rng=rng, name="classifier")
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.classifier.forward(self.pool.forward(self.features.forward(x)))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.features.backward(self.pool.backward(self.classifier.backward(grad_output)))

    def packable_layers(self) -> list[tuple[str, PointwiseConv2d]]:
        """The pointwise convolutional layers, in forward order."""
        layers: list[tuple[str, PointwiseConv2d]] = []
        for i, layer in enumerate(self.features):
            if isinstance(layer, ShiftConv2d):
                layers.append((f"features.{i}.pointwise", layer.pointwise))
        return layers
