"""LeNet-5 in shift + pointwise form (MNIST-class workloads)."""

from __future__ import annotations

import numpy as np

from repro.nn import (
    AvgPool2d,
    BatchNorm2d,
    Dense,
    Flatten,
    Module,
    PointwiseConv2d,
    ReLU,
    Sequential,
    ShiftConv2d,
)


def _scaled(width: int, scale: float, minimum: int = 4) -> int:
    """Scale a channel count, keeping at least ``minimum`` channels."""
    return max(minimum, int(round(width * scale)))


class LeNet5(Module):
    """Shift-convolution variant of LeNet-5.

    The two 5x5 convolutions of the original network become shift +
    pointwise layers; the three fully connected layers are retained.  The
    ``scale`` knob multiplies the channel widths so the reproduction can
    train quickly on CPU while keeping the layer topology.
    """

    def __init__(self, in_channels: int = 1, num_classes: int = 10, scale: float = 1.0,
                 image_size: int = 12, rng: np.random.Generator | None = None):
        super().__init__()
        if image_size % 4:
            raise ValueError("image_size must be divisible by 4 for LeNet-5 pooling")
        rng = rng if rng is not None else np.random.default_rng(0)
        c1 = _scaled(6, scale)
        c2 = _scaled(16, scale)
        f1 = _scaled(120, scale, minimum=16)
        f2 = _scaled(84, scale, minimum=16)
        spatial = image_size // 4
        self.features = Sequential(
            ShiftConv2d(in_channels, c1, rng=rng, name="conv1"),
            BatchNorm2d(c1, name="bn1"),
            ReLU(),
            AvgPool2d(2),
            ShiftConv2d(c1, c2, rng=rng, name="conv2"),
            BatchNorm2d(c2, name="bn2"),
            ReLU(),
            AvgPool2d(2),
        )
        self.classifier = Sequential(
            Flatten(),
            Dense(c2 * spatial * spatial, f1, rng=rng, name="fc1"),
            ReLU(),
            Dense(f1, f2, rng=rng, name="fc2"),
            ReLU(),
            Dense(f2, num_classes, rng=rng, name="fc3"),
        )
        self.num_classes = num_classes

    def forward(self, x: np.ndarray) -> np.ndarray:
        return self.classifier.forward(self.features.forward(x))

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        return self.features.backward(self.classifier.backward(grad_output))

    def packable_layers(self) -> list[tuple[str, PointwiseConv2d]]:
        """The pointwise convolutional layers, in forward order."""
        layers: list[tuple[str, PointwiseConv2d]] = []
        for i, layer in enumerate(self.features):
            if isinstance(layer, ShiftConv2d):
                layers.append((f"features.{i}.pointwise", layer.pointwise))
        return layers
