"""Simple training-time augmentation (random crop with padding, flips)."""

from __future__ import annotations

import numpy as np


def random_crop(images: np.ndarray, padding: int, rng: np.random.Generator) -> np.ndarray:
    """Zero-pad by ``padding`` pixels then crop back to the original size."""
    if padding < 0:
        raise ValueError("padding must be non-negative")
    if padding == 0:
        return images
    batch, channels, height, width = images.shape
    padded = np.pad(images, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    out = np.empty_like(images)
    offsets = rng.integers(0, 2 * padding + 1, size=(batch, 2))
    for i, (dy, dx) in enumerate(offsets):
        out[i] = padded[i, :, dy:dy + height, dx:dx + width]
    return out


def random_horizontal_flip(images: np.ndarray, probability: float,
                           rng: np.random.Generator) -> np.ndarray:
    """Flip each image left-right with the given probability."""
    if not 0.0 <= probability <= 1.0:
        raise ValueError("probability must be in [0, 1]")
    if probability == 0.0:
        return images
    flips = rng.random(len(images)) < probability
    out = images.copy()
    out[flips] = out[flips, :, :, ::-1]
    return out


def augment_batch(images: np.ndarray, rng: np.random.Generator,
                  crop_padding: int = 1, flip_probability: float = 0.5) -> np.ndarray:
    """Standard CIFAR-style augmentation: random crop then horizontal flip."""
    images = random_crop(images, crop_padding, rng)
    return random_horizontal_flip(images, flip_probability, rng)
