"""Mini-batch iteration over a :class:`~repro.data.dataset.Dataset`."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.data.dataset import Dataset


class DataLoader:
    """Iterate over a dataset in shuffled (or ordered) mini-batches."""

    def __init__(self, dataset: Dataset, batch_size: int = 64, shuffle: bool = True,
                 drop_last: bool = False, rng: np.random.Generator | None = None):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def __len__(self) -> int:
        full, rem = divmod(len(self.dataset), self.batch_size)
        if rem and not self.drop_last:
            return full + 1
        return full

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        count = len(self.dataset)
        order = self.rng.permutation(count) if self.shuffle else np.arange(count)
        for start in range(0, count, self.batch_size):
            idx = order[start:start + self.batch_size]
            if self.drop_last and len(idx) < self.batch_size:
                break
            yield self.dataset.images[idx], self.dataset.labels[idx]
