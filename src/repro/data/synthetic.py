"""Deterministic synthetic image-classification datasets.

Each class is defined by a smooth random prototype pattern; samples are the
prototype plus Gaussian noise, a random gain, and a small random
translation.  This provides a learnable but non-trivial classification
problem whose difficulty can be tuned through the noise level, which is
all the joint-optimization experiments need: accuracy drops when weights
are pruned and recovers with retraining, just as on MNIST / CIFAR-10.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.dataset import Dataset


@dataclass
class SyntheticImageConfig:
    """Parameters describing a synthetic dataset family."""

    num_classes: int = 10
    channels: int = 1
    image_size: int = 12
    noise_std: float = 0.35
    #: maximum absolute translation, in pixels, applied per sample.
    max_shift: int = 1
    #: spatial smoothing passes applied to the class prototypes.
    smoothing_passes: int = 2
    seed: int = 0
    name: str = "synthetic"

    def __post_init__(self) -> None:
        if self.num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        if self.channels < 1:
            raise ValueError("channels must be >= 1")
        if self.image_size < 4:
            raise ValueError("image_size must be >= 4")
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")
        if self.max_shift < 0:
            raise ValueError("max_shift must be non-negative")


def _smooth(image: np.ndarray, passes: int) -> np.ndarray:
    """Apply a simple box-blur ``passes`` times (per channel)."""
    out = image.copy()
    for _ in range(passes):
        padded = np.pad(out, ((0, 0), (1, 1), (1, 1)), mode="edge")
        out = (
            padded[:, :-2, 1:-1] + padded[:, 2:, 1:-1] + padded[:, 1:-1, :-2]
            + padded[:, 1:-1, 2:] + padded[:, 1:-1, 1:-1]
        ) / 5.0
    return out


def _class_prototypes(config: SyntheticImageConfig, rng: np.random.Generator) -> np.ndarray:
    """One smooth prototype image per class, shape (classes, C, H, W)."""
    shape = (config.num_classes, config.channels, config.image_size, config.image_size)
    prototypes = rng.normal(0.0, 1.0, size=shape)
    prototypes = np.stack([_smooth(p, config.smoothing_passes) for p in prototypes])
    # Normalise each prototype to unit standard deviation so that classes are
    # equally "loud" and the noise level controls difficulty uniformly.
    std = prototypes.reshape(config.num_classes, -1).std(axis=1)
    std = np.maximum(std, 1e-8)
    return prototypes / std[:, None, None, None]


def _translate(image: np.ndarray, dy: int, dx: int) -> np.ndarray:
    """Shift an image (C, H, W) by (dy, dx), filling with zeros."""
    out = np.zeros_like(image)
    height, width = image.shape[-2:]
    src_y = slice(max(0, -dy), min(height, height - dy))
    dst_y = slice(max(0, dy), min(height, height + dy))
    src_x = slice(max(0, -dx), min(width, width - dx))
    dst_x = slice(max(0, dx), min(width, width + dx))
    out[:, dst_y, dst_x] = image[:, src_y, src_x]
    return out


def make_synthetic_dataset(config: SyntheticImageConfig, num_samples: int,
                           split_seed: int = 0) -> Dataset:
    """Generate ``num_samples`` labelled images for the given configuration.

    The class prototypes depend only on ``config.seed``, so train and test
    splits generated with different ``split_seed`` values share the same
    underlying classification problem (as a real dataset's splits do).
    """
    if num_samples < config.num_classes:
        raise ValueError("num_samples must be at least num_classes")
    proto_rng = np.random.default_rng(config.seed)
    prototypes = _class_prototypes(config, proto_rng)

    sample_rng = np.random.default_rng((config.seed + 1) * 1_000_003 + split_seed)
    labels = sample_rng.integers(0, config.num_classes, size=num_samples)
    images = np.empty(
        (num_samples, config.channels, config.image_size, config.image_size), dtype=np.float64
    )
    for i, cls in enumerate(labels):
        gain = 1.0 + 0.1 * sample_rng.standard_normal()
        image = gain * prototypes[cls]
        if config.max_shift:
            dy, dx = sample_rng.integers(-config.max_shift, config.max_shift + 1, size=2)
            image = _translate(image, int(dy), int(dx))
        image = image + config.noise_std * sample_rng.standard_normal(image.shape)
        images[i] = image
    return Dataset(images, labels, config.num_classes, name=config.name)


def synthetic_mnist(num_samples: int, image_size: int = 12, seed: int = 0,
                    split_seed: int = 0) -> Dataset:
    """MNIST-like dataset: 10 classes, single channel greyscale."""
    config = SyntheticImageConfig(
        num_classes=10, channels=1, image_size=image_size, noise_std=0.35,
        seed=seed, name="synthetic-mnist",
    )
    return make_synthetic_dataset(config, num_samples, split_seed=split_seed)


def synthetic_cifar10(num_samples: int, image_size: int = 12, seed: int = 0,
                      split_seed: int = 0) -> Dataset:
    """CIFAR-10-like dataset: 10 classes, three channels, noisier than MNIST."""
    config = SyntheticImageConfig(
        num_classes=10, channels=3, image_size=image_size, noise_std=0.5,
        seed=seed, name="synthetic-cifar10",
    )
    return make_synthetic_dataset(config, num_samples, split_seed=split_seed)
