"""Synthetic datasets standing in for MNIST and CIFAR-10.

The original paper evaluates on MNIST (28x28 greyscale) and CIFAR-10
(32x32 RGB).  Neither dataset is available in this offline environment, so
this package synthesises deterministic class-conditional image datasets
with matching structure: a fixed number of classes, per-class prototype
patterns, additive noise, and small random translations.  The resulting
classification problems are learnable by the same shift + pointwise CNNs,
which is what the joint-optimization experiments require.
"""

from repro.data.dataset import Dataset
from repro.data.synthetic import (
    SyntheticImageConfig,
    make_synthetic_dataset,
    synthetic_mnist,
    synthetic_cifar10,
)
from repro.data.loader import DataLoader
from repro.data.augment import random_crop, random_horizontal_flip, augment_batch

__all__ = [
    "Dataset",
    "SyntheticImageConfig",
    "make_synthetic_dataset",
    "synthetic_mnist",
    "synthetic_cifar10",
    "DataLoader",
    "random_crop",
    "random_horizontal_flip",
    "augment_batch",
]
