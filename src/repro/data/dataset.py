"""In-memory dataset container with splitting and stratified subsetting."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class Dataset:
    """Images in NCHW float layout plus integer class labels.

    The ``fraction`` method implements the limited-data scenario of
    Section 6: a customer hands the vendor only a stratified fraction of
    the training data for column-combining retraining.
    """

    images: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        self.images = np.asarray(self.images, dtype=np.float64)
        self.labels = np.asarray(self.labels, dtype=np.int64)
        if self.images.ndim != 4:
            raise ValueError(f"images must be NCHW, got shape {self.images.shape}")
        if len(self.images) != len(self.labels):
            raise ValueError("images and labels must have the same length")
        if self.num_classes < 2:
            raise ValueError("num_classes must be >= 2")
        if len(self.labels) and (self.labels.min() < 0 or self.labels.max() >= self.num_classes):
            raise ValueError("labels out of range for num_classes")

    def __len__(self) -> int:
        return len(self.labels)

    @property
    def image_shape(self) -> tuple[int, int, int]:
        """(channels, height, width) of a single image."""
        return tuple(self.images.shape[1:])

    def split(self, first_size: int, rng: np.random.Generator | None = None
              ) -> tuple["Dataset", "Dataset"]:
        """Randomly split into two datasets with ``first_size`` samples first."""
        if not 0 < first_size < len(self):
            raise ValueError(f"first_size must be in (0, {len(self)}), got {first_size}")
        rng = rng if rng is not None else np.random.default_rng(0)
        order = rng.permutation(len(self))
        first, second = order[:first_size], order[first_size:]
        return (
            Dataset(self.images[first], self.labels[first], self.num_classes, f"{self.name}-a"),
            Dataset(self.images[second], self.labels[second], self.num_classes, f"{self.name}-b"),
        )

    def fraction(self, ratio: float, rng: np.random.Generator | None = None) -> "Dataset":
        """Return a stratified subset containing ``ratio`` of each class.

        Every class keeps at least one sample so that tiny fractions (the
        1% point of Figure 15b) still cover all classes.
        """
        if not 0.0 < ratio <= 1.0:
            raise ValueError(f"ratio must be in (0, 1], got {ratio}")
        if ratio == 1.0:
            return Dataset(self.images.copy(), self.labels.copy(), self.num_classes, self.name)
        rng = rng if rng is not None else np.random.default_rng(0)
        keep: list[np.ndarray] = []
        for cls in range(self.num_classes):
            idx = np.flatnonzero(self.labels == cls)
            if len(idx) == 0:
                continue
            count = max(1, int(round(ratio * len(idx))))
            keep.append(rng.choice(idx, size=count, replace=False))
        chosen = np.sort(np.concatenate(keep))
        return Dataset(self.images[chosen], self.labels[chosen], self.num_classes,
                       f"{self.name}-{ratio:.0%}")

    def subset(self, indices: np.ndarray) -> "Dataset":
        """Return the dataset restricted to ``indices``."""
        indices = np.asarray(indices)
        return Dataset(self.images[indices], self.labels[indices], self.num_classes, self.name)
