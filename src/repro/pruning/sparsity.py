"""Sparsity accounting helpers."""

from __future__ import annotations

import numpy as np

from repro.nn import Module, PointwiseConv2d


def nonzero_count(matrix: np.ndarray) -> int:
    """Number of nonzero entries in a matrix."""
    return int(np.count_nonzero(matrix))


def sparsity(matrix: np.ndarray) -> float:
    """Fraction of entries that are zero (0.0 for a dense matrix)."""
    matrix = np.asarray(matrix)
    if matrix.size == 0:
        return 0.0
    return 1.0 - nonzero_count(matrix) / matrix.size


def layer_sparsity_report(model: Module,
                          layers: list[tuple[str, PointwiseConv2d]] | None = None
                          ) -> list[dict]:
    """Per-layer sparsity summary for every packable layer of a model."""
    if layers is None:
        method = getattr(model, "packable_layers", None)
        if not callable(method):
            raise TypeError("model does not expose packable_layers(); pass layers explicitly")
        layers = method()
    report = []
    for name, layer in layers:
        weight = layer.weight.data
        report.append({
            "layer": name,
            "shape": weight.shape,
            "total": int(weight.size),
            "nonzeros": nonzero_count(weight),
            "sparsity": sparsity(weight),
        })
    return report
