"""Magnitude-based weight pruning (the "initial pruning" of Algorithm 1)."""

from repro.pruning.magnitude import (
    magnitude_prune_matrix,
    magnitude_prune_parameter,
    prune_model_layers,
)
from repro.pruning.schedule import BetaSchedule
from repro.pruning.sparsity import sparsity, nonzero_count, layer_sparsity_report

__all__ = [
    "magnitude_prune_matrix",
    "magnitude_prune_parameter",
    "prune_model_layers",
    "BetaSchedule",
    "sparsity",
    "nonzero_count",
    "layer_sparsity_report",
]
