"""β decay schedule used across iterations of Algorithm 1."""

from __future__ import annotations


class BetaSchedule:
    """Initial-pruning percentage that decays geometrically per iteration.

    Algorithm 1 line 14: ``β ← 0.9 · β`` after every prune/retrain round, so
    early rounds remove the bulk of the weights (Figure 13a) and later
    rounds make smaller adjustments.
    """

    def __init__(self, initial_beta: float = 0.20, decay: float = 0.9,
                 minimum: float = 0.0):
        if not 0.0 <= initial_beta <= 1.0:
            raise ValueError("initial_beta must be in [0, 1]")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        if not 0.0 <= minimum <= initial_beta:
            raise ValueError("minimum must be in [0, initial_beta]")
        self.initial_beta = initial_beta
        self.decay = decay
        self.minimum = minimum
        self._beta = initial_beta

    @property
    def value(self) -> float:
        """The β to use for the current iteration."""
        return self._beta

    def step(self) -> float:
        """Decay β and return the new value."""
        self._beta = max(self.minimum, self._beta * self.decay)
        return self._beta

    def reset(self) -> None:
        self._beta = self.initial_beta

    def at_iteration(self, iteration: int) -> float:
        """β that iteration ``iteration`` (0-based) would use, without mutating."""
        if iteration < 0:
            raise ValueError("iteration must be non-negative")
        return max(self.minimum, self.initial_beta * (self.decay ** iteration))
