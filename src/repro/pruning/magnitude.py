"""Magnitude pruning of filter matrices.

Algorithm 1 begins every iteration by "removing the smallest magnitude
weights up to a β percentage" of each layer before column grouping.  The
percentage applies to the weights that are still unpruned, so repeated
rounds with a decaying β produce the gradually sparsifying models of
Figure 13a.
"""

from __future__ import annotations

import numpy as np

from repro.nn import Module, PointwiseConv2d
from repro.nn.parameter import Parameter


def magnitude_prune_matrix(matrix: np.ndarray, fraction: float,
                           mask: np.ndarray | None = None) -> np.ndarray:
    """Return a binary mask that prunes ``fraction`` of the remaining weights.

    Parameters
    ----------
    matrix:
        The weight matrix (any shape).
    fraction:
        Fraction in [0, 1] of currently-unpruned weights to remove,
        selected by smallest absolute value.
    mask:
        Existing binary mask (1 = kept).  ``None`` means all weights are
        currently unpruned.

    Returns
    -------
    A new binary mask of the same shape; it is always a subset of ``mask``.
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    matrix = np.asarray(matrix)
    if mask is None:
        current = np.ones(matrix.shape, dtype=bool)
    else:
        current = np.asarray(mask) != 0
        if current.shape != matrix.shape:
            raise ValueError("mask shape does not match matrix shape")
    if fraction == 0.0:
        return current.astype(np.float64)
    kept_indices = np.flatnonzero(current)
    num_to_prune = int(np.floor(fraction * len(kept_indices)))
    if num_to_prune == 0:
        return current.astype(np.float64)
    magnitudes = np.abs(matrix.ravel()[kept_indices])
    # Stable selection of the smallest magnitudes among kept weights.
    order = np.argsort(magnitudes, kind="stable")
    prune_flat = kept_indices[order[:num_to_prune]]
    new_mask = current.copy()
    new_mask.ravel()[prune_flat] = False
    return new_mask.astype(np.float64)


def magnitude_prune_parameter(param: Parameter, fraction: float) -> int:
    """Prune a parameter in place; returns the number of weights removed."""
    before = param.nonzero_count()
    new_mask = magnitude_prune_matrix(param.data, fraction, param.mask)
    param.set_mask(new_mask)
    return before - param.nonzero_count()


def prune_model_layers(model: Module, fraction: float,
                       layers: list[tuple[str, PointwiseConv2d]] | None = None) -> int:
    """Apply magnitude pruning to every packable layer of ``model``.

    Returns the total number of weights pruned in this call.  If ``layers``
    is omitted, the model's ``packable_layers()`` method is used.
    """
    if layers is None:
        method = getattr(model, "packable_layers", None)
        if not callable(method):
            raise TypeError("model does not expose packable_layers(); pass layers explicitly")
        layers = method()
    removed = 0
    for _, layer in layers:
        removed += magnitude_prune_parameter(layer.weight, fraction)
    return removed
