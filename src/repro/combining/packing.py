"""Packed filter matrices: the data structure loaded into MX-cell arrays.

After column-combine pruning, every group of columns has at most one
nonzero per row, so the group collapses into a single *combined column*.
A packed filter matrix therefore has shape ``(N, num_groups)``; alongside
the weights, each cell records *which* original column (input channel) its
weight came from — exactly the per-cell channel-select information an MX
cell needs to pick the right multiplexed input stream.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.combining.grouping import ColumnGrouping
from repro.combining.pruning import column_combine_prune
from repro.combining.metrics import packing_efficiency


@dataclass
class PackedFilterMatrix:
    """A column-combined filter matrix plus its channel-routing metadata.

    Attributes
    ----------
    weights:
        ``(N, G)`` array of packed weights (``G`` = number of groups).
    channel_index:
        ``(N, G)`` integer array; ``channel_index[n, g]`` is the original
        column whose weight sits in cell ``(n, g)``, or ``-1`` if the cell
        is empty (stores a zero weight).
    grouping:
        The :class:`ColumnGrouping` the packing was built from.
    original_shape:
        Shape ``(N, M)`` of the unpacked filter matrix.
    """

    weights: np.ndarray
    channel_index: np.ndarray
    grouping: ColumnGrouping
    original_shape: tuple[int, int]

    def __post_init__(self) -> None:
        self.weights = np.asarray(self.weights, dtype=np.float64)
        self.channel_index = np.asarray(self.channel_index, dtype=np.int64)
        self.original_shape = tuple(int(side) for side in self.original_shape)
        if self.weights.shape != self.channel_index.shape:
            raise ValueError("weights and channel_index must have the same shape")
        if self.weights.shape[1] != self.grouping.num_groups:
            raise ValueError("packed width does not match the number of groups")
        if len(self.original_shape) != 2:
            raise ValueError("original_shape must be (rows, columns)")
        if self.weights.shape[0] != self.original_shape[0]:
            raise ValueError("packed height does not match original_shape")
        if self.grouping.num_columns != self.original_shape[1]:
            raise ValueError("grouping does not cover original_shape's columns")
        self._validate_channel_index()

    def _validate_channel_index(self) -> None:
        """Reject routing metadata that would silently corrupt the packing.

        Every non-empty cell must name an original column that exists
        (``0 <= channel < M``) and that belongs to the cell's own group —
        otherwise :meth:`to_sparse` scatters weights into the wrong columns
        and :meth:`multiply` routes the wrong input channels.
        """
        num_columns = self.original_shape[1]
        if np.any(self.channel_index < -1) or np.any(self.channel_index >= num_columns):
            bad = self.channel_index[(self.channel_index < -1)
                                     | (self.channel_index >= num_columns)]
            raise ValueError(
                f"channel_index contains out-of-range channels (e.g. {int(bad[0])}); "
                f"expected -1 or 0..{num_columns - 1}")
        rows, groups = np.nonzero(self.channel_index >= 0)
        if rows.size == 0:
            return
        assignment = self.grouping.as_assignment()
        channels = self.channel_index[rows, groups]
        misrouted = assignment[channels] != groups
        if np.any(misrouted):
            where = int(np.argmax(misrouted))
            raise ValueError(
                f"channel_index[{int(rows[where])}, {int(groups[where])}] routes "
                f"channel {int(channels[where])}, which belongs to group "
                f"{int(assignment[channels[where]])}, not group {int(groups[where])}")

    # -- shape / metric helpers ---------------------------------------------
    @property
    def num_rows(self) -> int:
        return self.weights.shape[0]

    @property
    def num_groups(self) -> int:
        return self.weights.shape[1]

    def packing_efficiency(self) -> float:
        """Fraction of packed cells that hold a nonzero weight."""
        return packing_efficiency(self.weights)

    def multiplexing_degree(self) -> int:
        """Largest group size (the MX fan-in the hardware must support)."""
        sizes = self.grouping.group_sizes()
        return max(sizes) if sizes else 0

    # -- functional semantics -------------------------------------------------
    def to_sparse(self) -> np.ndarray:
        """Reconstruct the (N, M) sparse filter matrix the packing represents."""
        sparse = np.zeros(self.original_shape, dtype=np.float64)
        rows, groups = np.nonzero(self.channel_index >= 0)
        columns = self.channel_index[rows, groups]
        sparse[rows, columns] = self.weights[rows, groups]
        return sparse

    def multiply(self, data: np.ndarray) -> np.ndarray:
        """Multiply the packed matrix by a data matrix of shape (M, L).

        Each packed cell multiplies its stored weight by the input channel
        it routes (the MX-cell behaviour); cells with no weight contribute
        zero.  The result equals ``pruned_filter_matrix @ data``.
        """
        data = np.asarray(data, dtype=np.float64)
        if data.ndim != 2 or data.shape[0] != self.original_shape[1]:
            raise ValueError(
                f"data must have shape ({self.original_shape[1]}, L), got {data.shape}"
            )
        safe_index = np.where(self.channel_index >= 0, self.channel_index, 0)
        gathered = data[safe_index]            # (N, G, L)
        contributions = self.weights[..., None] * gathered
        return contributions.sum(axis=1)

    def multiply_activations(self, activations: np.ndarray) -> np.ndarray:
        """MX-cell :meth:`multiply` over NCHW activations.

        ``activations`` has shape (batch, in_channels, H, W); the result has
        shape (batch, num_rows, H, W) — the layout a pointwise convolution
        produces, so packed layers drop into an nn forward pass unchanged.
        The sum runs over the packed groups (one product per occupied MX
        cell), so it equals the pruned dense convolution up to float
        summation order; see
        :meth:`repro.combining.inference.PackedModel.forward` for the
        bit-exact dense-realized path.
        """
        activations = np.asarray(activations, dtype=np.float64)
        if activations.ndim != 4 or activations.shape[1] != self.original_shape[1]:
            raise ValueError(
                f"activations must have shape (batch, {self.original_shape[1]}, H, W), "
                f"got {activations.shape}")
        batch, channels, height, width = activations.shape
        data = activations.transpose(1, 0, 2, 3).reshape(channels, -1)
        out = self.multiply(data)
        return out.reshape(self.num_rows, batch, height, width).transpose(1, 0, 2, 3)


def pack_filter_matrix(matrix: np.ndarray, grouping: ColumnGrouping,
                       prune_conflicts: bool = True,
                       engine: str = "fast") -> PackedFilterMatrix:
    """Build a :class:`PackedFilterMatrix` from a filter matrix and grouping.

    If ``prune_conflicts`` is true (the normal case), Algorithm 3 is applied
    first so that each row of each group has at most one nonzero.  With
    ``prune_conflicts=False`` the matrix must already satisfy that property
    (e.g. the γ=0 "column-combine without pruning" baseline); a conflict in
    that case raises ``ValueError`` because the packing would silently drop
    weights.  ``engine`` selects the Algorithm 3 implementation (see
    :data:`~repro.combining.pruning.PRUNE_ENGINES`).

    After conflict pruning every (row, group) cell holds at most one
    nonzero, so the packing itself is one scatter over the nonzero entries
    of the pruned matrix — no per-group dense slicing.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    if grouping.num_rows != matrix.shape[0] or grouping.num_columns != matrix.shape[1]:
        raise ValueError("grouping does not match matrix shape")

    if prune_conflicts:
        pruned, _ = column_combine_prune(matrix, grouping, engine=engine)
    else:
        pruned = matrix

    num_rows = matrix.shape[0]
    num_groups = grouping.num_groups
    weights = np.zeros((num_rows, num_groups), dtype=np.float64)
    channel_index = np.full((num_rows, num_groups), -1, dtype=np.int64)
    if num_groups == 0 or num_rows == 0:
        return PackedFilterMatrix(weights, channel_index, grouping, matrix.shape)

    assignment = grouping.as_assignment()
    rows, columns = np.nonzero(pruned)
    groups_of_entries = assignment[columns]
    if not prune_conflicts:
        cells = rows * num_groups + groups_of_entries
        per_cell = np.bincount(cells, minlength=num_rows * num_groups)
        if np.any(per_cell > 1):
            # Report the first conflicting group (and its first bad row),
            # in the group-major order the per-group loop would have used.
            grid = per_cell.reshape(num_rows, num_groups)
            bad_group = int(np.argmax((grid > 1).any(axis=0)))
            bad_row = int(np.argmax(grid[:, bad_group] > 1))
            raise ValueError(
                f"group {bad_group} has {int(grid[:, bad_group].max())} nonzeros "
                f"in row {bad_row}; apply column-combine pruning first or pass "
                "prune_conflicts=True"
            )
    weights[rows, groups_of_entries] = pruned[rows, columns]
    channel_index[rows, groups_of_entries] = columns

    return PackedFilterMatrix(weights, channel_index, grouping, matrix.shape)
