"""Batch-invariant GEMM kernels: fixed-shape BLAS dispatch, pinned order.

The serving stack promises *bit-transparent coalescing*: however the
dynamic batcher groups requests, ``forward(batch)[i:j]`` equals
``forward(batch[i:j])`` bit for bit.  General BLAS calls break that
promise — a gemm picks its blocking (and therefore its float summation
order, and sometimes the kernel itself: gemv vs small-matrix vs packed
gemm) from the **full operand shapes**, so a sample's output bits change
with the batch it rides in.  The original batch-invariant path restored
the property by routing every weight-bearing layer through
``np.einsum(..., optimize=False)`` reduction loops — correct, but a large
performance tax on the hottest serving path.

This module closes that gap.  :func:`invariant_matmul` and
:func:`invariant_conv_pointwise` implement blocked GEMM whose **entire
schedule is chosen only from the reduction / output / spatial dimensions
— never from the batch size** — so each inner block still dispatches to
BLAS (``@`` on contiguous slices) while the results stay bit-identical
under any batch split.

The invariance argument
-----------------------

Three pinned choices make the blocked kernels batch-invariant:

1. **Fixed dispatch shapes.**  The batch axis is processed in blocks of
   constant size: :func:`invariant_conv_pointwise` runs one
   ``(n, c) @ (c, H*W)`` gemm **per sample** (the natural unit of
   coalescing — a shape built from channel and spatial dimensions only),
   and :func:`invariant_matmul` tiles rows in blocks of exactly
   :data:`M_TILE`, zero-padding the final partial tile, so every call is
   ``(M_TILE, k_block) @ (k_block, n)``.  BLAS never sees the batch
   size, so it cannot choose a different kernel or blocking for
   different batch sizes.
2. **Fixed reduction blocks.**  The reduction axis is split at the
   multiples of :data:`K_BLOCK` (see :func:`kernel_schedule`), a
   function of the weight shape only.
3. **Pinned accumulation tree.**  Per-block partial products are summed
   left to right in schedule order, and gemm itself computes each output
   element as an independent dot product of one row against one weight
   column — no cross-row arithmetic.  A sample's output bits hence
   depend only on (sample contents, weight contents, the fixed call
   shapes), not on which tile slot or batch the sample occupied.
   Operands are canonicalized to C order first, so strided and
   Fortran-ordered views of the same values produce the same bits too.

Together: splitting a batch changes only *which* fixed-shape calls a
sample lands in, never the shape or order of the arithmetic applied to
it, so concatenating split results reproduces the whole-batch bits
exactly.  (The property suite in ``tests/test_combining_kernels.py``
pins this across odd/prime reduction sizes, adversarial batch splits,
Fortran-ordered inputs, empty batches, and dtypes.)

What is — and is not — bit-identical
------------------------------------

Each kernel is bitwise batch-invariant *with respect to itself*.  The
``"blocked"`` and ``"loops"`` kernels are **not** bitwise equal to each
other and cannot be: BLAS contracts with fused multiply-adds and
vectorized partial sums, the einsum C loops with sequential scalar
multiply-then-add — same real-number value, different roundings
(observed ~1e-13 relative).  The two kernels are therefore differential
references for each other (``np.allclose`` tight), while the bitwise
guarantees — the ones serving relies on — hold per kernel.  A server
picks one kernel and keeps it; responses are then bit-identical across
batch coalescing, worker counts, and execution backends.

Measured on the ResNet-20 serving shapes (see
``benchmarks/test_bench_serving.py``): the blocked pointwise kernel runs
~3.8x faster than the einsum loops per forward — and, because the
per-sample gemm avoids the batched einsum's internal transposes, it
matches or beats the unconstrained ``optimize=True`` dispatch there;
the residual gap to raw BLAS is confined to the padded dense tiles.
"""

from __future__ import annotations

import numpy as np

#: Batch-invariant kernel implementations, differential references for
#: each other.  ``"blocked"`` (the default) dispatches fixed-shape blocks
#: to BLAS; ``"loops"`` is the original ``np.einsum(optimize=False)``
#: reduction-loop path, kept as the executable specification.
KERNELS: tuple[str, ...] = ("blocked", "loops")

#: The kernel every batch-invariant call site defaults to.
DEFAULT_KERNEL: str = "blocked"

#: Fixed row-tile height of the blocked :func:`invariant_matmul`.  Every
#: BLAS call sees exactly this many rows (the last tile is zero-padded),
#: so the dispatched gemm shape is independent of the batch size.  Dense
#: layers sit behind the classifier head where serving batches are small
#: (1-32 samples): 16 rows keeps the zero-pad waste of a coalesced batch
#: near zero while still tiling large calibration / sweep batches
#: efficiently.
M_TILE: int = 16

#: Fixed reduction-block length.  The reduction axis is split at
#: multiples of this, a function of the weight shape only (never the
#: batch), pinning the accumulation tree: partial products are summed in
#: schedule order.
K_BLOCK: int = 512


def validate_kernel(kernel: str) -> str:
    """Return ``kernel`` if known, else raise the canonical ``ValueError``."""
    if kernel not in KERNELS:
        raise ValueError(f"unknown batch-invariant kernel {kernel!r}; "
                         f"expected one of {KERNELS}")
    return kernel


def kernel_schedule(k_dim: int) -> tuple[tuple[int, int], ...]:
    """The fixed reduction-block schedule for a reduction axis of ``k_dim``.

    Returns ``(start, stop)`` slices covering ``[0, k_dim)`` in blocks of
    at most :data:`K_BLOCK`.  The schedule depends only on the reduction
    dimension — batch size does not appear in its inputs, which is the
    load-bearing property: the accumulation order it pins is the same for
    every batch.
    """
    if k_dim < 0:
        raise ValueError(f"reduction dimension must be >= 0, got {k_dim}")
    return tuple((start, min(start + K_BLOCK, k_dim))
                 for start in range(0, k_dim, K_BLOCK))


def _blocked_matmul(x: np.ndarray, weight: np.ndarray) -> np.ndarray:
    """``x @ weight.T`` via fixed-shape BLAS tiles of :data:`M_TILE` rows.

    ``x`` is ``(rows, k)``, ``weight`` is ``(n, k)``; the result is
    ``(rows, n)`` with bits independent of how the caller's rows were
    batched (see the module docstring for the argument).
    """
    rows, k_dim = x.shape
    n_out = weight.shape[0]
    dtype = np.result_type(x.dtype, weight.dtype)
    out = np.empty((rows, n_out), dtype=dtype)
    if rows == 0:
        return out
    if k_dim == 0:
        out[...] = 0.0
        return out
    if x.dtype != dtype:
        x = np.asarray(x, dtype=dtype)
    # Canonical C-order weight: BLAS picks transpose-handling code paths
    # (and hence roundings) from operand layout, so differently-laid-out
    # views of the same weight values must be normalized to one layout.
    weight = np.ascontiguousarray(weight, dtype=dtype)
    schedule = kernel_schedule(k_dim)
    # One zero-padded staging tile, reused for the final partial tile and
    # for non-contiguous inputs: every gemm call sees (M_TILE, k) rows.
    staging = None
    x_contiguous = x.flags.c_contiguous
    for start in range(0, rows, M_TILE):
        stop = min(start + M_TILE, rows)
        height = stop - start
        if height == M_TILE and x_contiguous:
            tile = x[start:stop]
        else:
            if staging is None:
                staging = np.zeros((M_TILE, k_dim), dtype=dtype)
            staging[:height] = x[start:stop]
            staging[height:] = 0.0
            tile = staging
        first_start, first_stop = schedule[0]
        acc = tile[:, first_start:first_stop] @ weight[:, first_start:first_stop].T
        for block_start, block_stop in schedule[1:]:
            acc += tile[:, block_start:block_stop] @ weight[:, block_start:block_stop].T
        out[start:stop] = acc[:height]
    return out


def invariant_matmul(x: np.ndarray, weight: np.ndarray,
                     kernel: str = DEFAULT_KERNEL) -> np.ndarray:
    """Batch-invariant ``x @ weight.T`` (the :class:`Dense` contraction).

    ``x`` is a ``(batch, in_features)`` activation matrix and ``weight``
    an ``(out_features, in_features)`` filter matrix.  For either kernel,
    ``invariant_matmul(x)[i:j]`` is bitwise equal to
    ``invariant_matmul(x[i:j])``; the two kernels agree to ``allclose``
    but not bitwise (see the module docstring).  Bias addition is left to
    the caller — elementwise adds are batch-invariant on their own.
    """
    validate_kernel(kernel)
    x = np.asarray(x)
    weight = np.asarray(weight)
    if x.ndim != 2 or weight.ndim != 2 or x.shape[1] != weight.shape[1]:
        raise ValueError(
            f"invariant_matmul expects (batch, k) @ (n, k).T; got "
            f"{x.shape} and {weight.shape}")
    if kernel == "loops":
        # einsum's loop order follows operand memory layout, so the legacy
        # reduction loops are batch-invariant only for a fixed layout;
        # canonicalizing to C order (a no-op on every legacy call site,
        # which always passed contiguous batches) makes the guarantee
        # hold for strided and Fortran-ordered inputs too.
        return np.einsum("bi,oi->bo", np.ascontiguousarray(x),
                         np.ascontiguousarray(weight))
    return _blocked_matmul(x, weight)


def invariant_conv_pointwise(x: np.ndarray, weight: np.ndarray,
                             kernel: str = DEFAULT_KERNEL) -> np.ndarray:
    """Batch-invariant 1x1 convolution (the packed/pointwise contraction).

    ``x`` is an NCHW activation batch, ``weight`` an
    ``(out_channels, in_channels)`` filter matrix; returns the NCHW
    result of contracting the channel axis.  The blocked kernel runs one
    k-blocked ``(n, c) @ (c, H*W)`` gemm per sample — a dispatch shape
    built from channel and spatial dimensions only, never the batch, and
    one that needs no layout transposes at all (each sample's channel
    plane is already a contiguous ``(c, H*W)`` matrix).  Same bit
    contract as :func:`invariant_matmul`.
    """
    validate_kernel(kernel)
    x = np.asarray(x)
    weight = np.asarray(weight)
    if x.ndim != 4 or weight.ndim != 2 or x.shape[1] != weight.shape[1]:
        raise ValueError(
            f"invariant_conv_pointwise expects (batch, c, H, W) against "
            f"(n, c); got {x.shape} and {weight.shape}")
    if kernel == "loops":
        # See invariant_matmul: C-order canonicalization pins einsum's
        # loop order independent of the caller's memory layout.
        return np.einsum("nc,bchw->bnhw", np.ascontiguousarray(weight),
                         np.ascontiguousarray(x))
    batch, channels, height, width = x.shape
    n_out = weight.shape[0]
    dtype = np.result_type(x.dtype, weight.dtype)
    out = np.empty((batch, n_out, height, width), dtype=dtype)
    if batch == 0 or x.size == 0:
        if channels == 0:
            out[...] = 0.0
        return out
    # Same layout canonicalization as _blocked_matmul (see comment there).
    weight = np.ascontiguousarray(weight, dtype=dtype)
    pixels = height * width
    schedule = kernel_schedule(channels)
    for index in range(batch):
        plane = np.ascontiguousarray(x[index], dtype=dtype).reshape(channels,
                                                                    pixels)
        target = out[index].reshape(n_out, pixels)
        first_start, first_stop = schedule[0]
        np.matmul(weight[:, first_start:first_stop],
                  plane[first_start:first_stop], out=target)
        for block_start, block_stop in schedule[1:]:
            target += weight[:, block_start:block_stop] @ plane[block_start:block_stop]
    return out
