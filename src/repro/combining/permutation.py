"""Row permutation for contiguous column groups (Section 3.5).

The output channels of layer *i* are the input channels (columns) of layer
*i+1*.  If the rows of layer *i*'s filter matrix are permuted so that the
channels belonging to each of layer *i+1*'s column groups come out of the
systolic array next to each other, the expensive switchbox between the two
arrays can be replaced by a simple counter.  Row permutations on layer *i*
never change which columns of layer *i+1* can be combined — they only
relabel them — so the permutation can be derived directly from layer
*i+1*'s grouping.
"""

from __future__ import annotations

import numpy as np

from repro.combining.grouping import ColumnGrouping


def permutation_from_groups(grouping: ColumnGrouping) -> np.ndarray:
    """Channel order that makes every group contiguous.

    Returns an array ``perm`` of length ``num_columns`` such that position
    ``i`` of the permuted channel axis holds original channel ``perm[i]``;
    channels appear group by group, in group order.
    """
    order: list[int] = []
    for group in grouping.groups:
        order.extend(group)
    if len(order) != grouping.num_columns:
        raise ValueError("grouping does not cover every column")
    return np.asarray(order, dtype=int)


def apply_row_permutation(matrix: np.ndarray, permutation: np.ndarray) -> np.ndarray:
    """Permute the rows (output channels) of a filter matrix."""
    matrix = np.asarray(matrix)
    permutation = np.asarray(permutation, dtype=int)
    _validate_permutation(permutation, matrix.shape[0], axis="rows")
    return matrix[permutation, :]


def apply_column_permutation(matrix: np.ndarray, permutation: np.ndarray) -> np.ndarray:
    """Permute the columns (input channels) of a filter matrix."""
    matrix = np.asarray(matrix)
    permutation = np.asarray(permutation, dtype=int)
    _validate_permutation(permutation, matrix.shape[1], axis="columns")
    return matrix[:, permutation]


def remap_groups_contiguous(grouping: ColumnGrouping) -> ColumnGrouping:
    """Re-express a grouping in the permuted channel numbering.

    After the channels are reordered by :func:`permutation_from_groups`,
    group ``h`` occupies the contiguous index range
    ``[offset_h, offset_h + len(group_h))``.
    """
    groups: list[list[int]] = []
    offset = 0
    for group in grouping.groups:
        groups.append(list(range(offset, offset + len(group))))
        offset += len(group)
    return ColumnGrouping(groups, grouping.num_columns, grouping.num_rows,
                          grouping.alpha, grouping.gamma, grouping.policy)


def plan_cross_layer_permutations(groupings: list[ColumnGrouping]) -> list[np.ndarray]:
    """Row permutations for a chain of layers given each layer's grouping.

    ``groupings[l]`` groups the columns (input channels) of layer ``l``.
    The returned list has one permutation per layer: layer ``l``'s rows are
    permuted by the grouping of layer ``l+1`` so its outputs stream out in
    group order; the final layer keeps its natural row order (its outputs
    feed the classifier, not another systolic array).
    """
    permutations: list[np.ndarray] = []
    for index in range(len(groupings)):
        if index + 1 < len(groupings):
            permutations.append(permutation_from_groups(groupings[index + 1]))
        else:
            rows = groupings[index].num_rows
            permutations.append(np.arange(rows, dtype=int))
    return permutations


def _validate_permutation(permutation: np.ndarray, size: int, axis: str) -> None:
    if permutation.shape != (size,):
        raise ValueError(f"permutation length {permutation.shape} does not match {axis} ({size})")
    if not np.array_equal(np.sort(permutation), np.arange(size)):
        raise ValueError(f"not a valid permutation of {size} {axis}")
