"""Packing and utilization metrics (Section 3.1 terminology).

* The *density* of a column (or combined column) is the fraction of its
  entries that are nonzero.
* A group of columns has *x conflicts* if combining them would prune *x*
  weights; the *limited-conflict condition* bounds conflicts per row on
  average by γ.
* *Packing efficiency* of a packed filter matrix is the fraction of cells
  that hold nonzero weights; Section 5.2 notes that packing efficiency and
  systolic-array *utilization efficiency* are interchangeable, because a
  cell holding a nonzero weight is a cell doing useful work.
"""

from __future__ import annotations

import numpy as np


def density(matrix: np.ndarray) -> float:
    """Fraction of nonzero entries in a matrix (0.0 for an empty matrix)."""
    matrix = np.asarray(matrix)
    if matrix.size == 0:
        return 0.0
    return float(np.count_nonzero(matrix) / matrix.size)


def column_density(matrix: np.ndarray, columns: list[int] | np.ndarray) -> float:
    """Density of the *combined* column formed by the given columns.

    A row counts as occupied if any of the selected columns has a nonzero
    there (after combining, at most one survives, so occupancy is what
    matters for packing).
    """
    matrix = np.asarray(matrix)
    columns = np.asarray(columns, dtype=int)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    if columns.size == 0:
        return 0.0
    occupied = np.any(matrix[:, columns] != 0, axis=1)
    return float(occupied.mean())


def count_conflicts(matrix: np.ndarray, columns: list[int] | np.ndarray) -> int:
    """Number of weights that column-combining the given columns would prune.

    For each row, all nonzeros among the selected columns except one are
    pruned, so the conflict count is ``sum(max(0, nonzeros_in_row - 1))``.
    """
    matrix = np.asarray(matrix)
    columns = np.asarray(columns, dtype=int)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    if columns.size == 0:
        return 0
    per_row = np.count_nonzero(matrix[:, columns] != 0, axis=1)
    return int(np.maximum(per_row - 1, 0).sum())


def meets_limited_conflict(matrix: np.ndarray, columns: list[int] | np.ndarray,
                           gamma: float) -> bool:
    """Whether the group satisfies the limited-conflict condition for γ."""
    if gamma < 0:
        raise ValueError("gamma must be non-negative")
    matrix = np.asarray(matrix)
    return count_conflicts(matrix, columns) <= gamma * matrix.shape[0]


def packing_efficiency(packed_matrix: np.ndarray) -> float:
    """Fraction of packed-matrix cells holding nonzero weights."""
    return density(packed_matrix)


def utilization_efficiency(packed_matrix: np.ndarray) -> float:
    """Systolic-array utilization efficiency of a packed filter matrix.

    Equal to packing efficiency: every cell storing a nonzero weight
    performs a useful multiply-accumulate each cycle (Section 5.2).
    """
    return packing_efficiency(packed_matrix)
