"""Iterative training with column combining — Algorithm 1 of the paper.

Each iteration (round) of :class:`ColumnCombineTrainer.run`:

1. *Initial pruning* — remove the smallest-magnitude ``beta`` fraction of the
   remaining weights in every packable layer.
2. *Column grouping* (Algorithm 2) — partition each layer's columns into
   groups of at most ``alpha`` columns with at most ``gamma`` conflicts per
   row on average.
3. *Column-combine pruning* (Algorithm 3) — within each group, keep only
   the largest-magnitude weight per row.
4. *Retraining* — a few epochs of SGD with a cosine learning-rate schedule
   to recover accuracy, with pruning masks keeping removed weights at zero.
5. Decay ``beta`` by a constant factor.

The loop stops once the number of nonzero weights across the packable
layers reaches the target ``rho``, after which a final fine-tuning phase
runs with the learning rate decaying to zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.combining.grouping import GROUPING_ENGINES, ColumnGrouping, group_columns
from repro.combining.packing import PackedFilterMatrix, pack_filter_matrix
from repro.combining.pruning import PRUNE_ENGINES, conflict_mask
from repro.data.augment import augment_batch
from repro.data.dataset import Dataset
from repro.data.loader import DataLoader
from repro.nn import Module, PointwiseConv2d, SGD, SoftmaxCrossEntropy, accuracy
from repro.nn.schedule import CosineSchedule
from repro.pruning.magnitude import magnitude_prune_parameter
from repro.pruning.schedule import BetaSchedule
from repro.utils.logging import get_logger

logger = get_logger("combining.trainer")


@dataclass
class ColumnCombineConfig:
    """Hyper-parameters of Algorithm 1 plus the retraining setup.

    Defaults follow the paper: α = 8, β = 20%, γ = 0.5, SGD with Nesterov
    momentum 0.9 and a cosine schedule ending at 20% of the initial
    learning rate per round (and at 0 during final fine-tuning).
    """

    alpha: int = 8
    beta: float = 0.20
    gamma: float = 0.5
    #: ρ — target number of nonzero weights across packable layers.  When
    #: ``None`` it is derived as ``target_fraction`` of the initial count.
    target_nonzeros: int | None = None
    target_fraction: float = 0.15
    beta_decay: float = 0.9
    grouping_policy: str = "dense-first"
    #: column-grouping engine: ``"fast"`` (vectorized bitset) or
    #: ``"reference"`` (the per-group Python loop kept for differential
    #: testing); see :func:`repro.combining.grouping.group_columns`.
    grouping_engine: str = "fast"
    #: conflict-pruning engine for Algorithm 3's per-round prune step:
    #: ``"fast"`` (one-pass scatter) or ``"reference"`` (per-group loop);
    #: see :func:`repro.combining.pruning.conflict_mask`.
    prune_engine: str = "fast"
    lr: float = 0.05
    momentum: float = 0.9
    nesterov: bool = True
    weight_decay: float = 1e-4
    #: global gradient-norm clip applied during retraining; ``None`` disables.
    clip_grad_norm: float | None = 5.0
    epochs_per_round: int = 2
    final_epochs: int = 3
    round_lr_fraction: float = 0.2
    final_lr_fraction: float = 0.0
    batch_size: int = 64
    #: safety bound on the number of prune/retrain rounds.
    max_rounds: int = 10
    augment: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.alpha < 1:
            raise ValueError("alpha must be >= 1")
        if not 0.0 <= self.beta <= 1.0:
            raise ValueError("beta must be in [0, 1]")
        if self.gamma < 0:
            raise ValueError("gamma must be non-negative")
        if self.target_nonzeros is not None:
            # target_nonzeros overrides target_fraction, so only the
            # override is validated — a caller pinning an absolute target
            # should not be rejected over the unused fraction.
            if self.target_nonzeros < 1:
                raise ValueError("target_nonzeros must be >= 1")
        elif not 0.0 < self.target_fraction <= 1.0:
            raise ValueError("target_fraction must be in (0, 1]")
        if self.epochs_per_round < 0:
            raise ValueError("epochs_per_round must be non-negative")
        if self.final_epochs < 0:
            raise ValueError("final_epochs must be non-negative")
        if self.max_rounds < 1:
            raise ValueError("max_rounds must be >= 1")
        if self.grouping_engine not in GROUPING_ENGINES:
            raise ValueError(
                f"unknown grouping engine {self.grouping_engine!r}; "
                f"expected one of {GROUPING_ENGINES}")
        if self.prune_engine not in PRUNE_ENGINES:
            raise ValueError(
                f"unknown prune engine {self.prune_engine!r}; "
                f"expected one of {PRUNE_ENGINES}")


@dataclass
class EpochRecord:
    """One row of the training history (the data behind Figure 13a)."""

    epoch: int
    round: int
    phase: str
    train_loss: float
    train_accuracy: float
    test_accuracy: float
    nonzeros: int


@dataclass
class TrainingHistory:
    """Sequence of per-epoch records plus round boundaries."""

    records: list[EpochRecord] = field(default_factory=list)
    #: epochs at which a prune/group/combine step happened (the dashed
    #: vertical lines of Figure 13a).
    pruning_epochs: list[int] = field(default_factory=list)

    def append(self, record: EpochRecord) -> None:
        self.records.append(record)

    def epochs(self) -> list[int]:
        return [r.epoch for r in self.records]

    def test_accuracies(self) -> list[float]:
        return [r.test_accuracy for r in self.records]

    def nonzero_counts(self) -> list[int]:
        return [r.nonzeros for r in self.records]

    @property
    def final_accuracy(self) -> float:
        if not self.records:
            raise ValueError("history is empty")
        return self.records[-1].test_accuracy

    @property
    def final_nonzeros(self) -> int:
        if not self.records:
            raise ValueError("history is empty")
        return self.records[-1].nonzeros


class ColumnCombineTrainer:
    """Joint optimization of utilization efficiency and accuracy (Algorithm 1)."""

    def __init__(self, model: Module, train_data: Dataset, test_data: Dataset,
                 config: ColumnCombineConfig | None = None):
        self.model = model
        self.train_data = train_data
        self.test_data = test_data
        self.config = config if config is not None else ColumnCombineConfig()
        method = getattr(model, "packable_layers", None)
        if not callable(method):
            raise TypeError("model must expose packable_layers()")
        self.layers: list[tuple[str, PointwiseConv2d]] = method()
        if not self.layers:
            raise ValueError("model has no packable layers")
        self.rng = np.random.default_rng(self.config.seed)
        self.optimizer = SGD(model.parameters(), lr=self.config.lr,
                             momentum=self.config.momentum,
                             nesterov=self.config.nesterov,
                             weight_decay=self.config.weight_decay,
                             clip_norm=self.config.clip_grad_norm)
        self.loss_fn = SoftmaxCrossEntropy()
        self.groupings: dict[str, ColumnGrouping] = {}
        self.history = TrainingHistory()
        self._epoch = 0
        self.initial_nonzeros = self.conv_nonzeros()
        if self.config.target_nonzeros is not None:
            self.target_nonzeros = int(self.config.target_nonzeros)
        else:
            self.target_nonzeros = max(1, int(self.config.target_fraction * self.initial_nonzeros))

    # -- accounting ----------------------------------------------------------
    def conv_nonzeros(self) -> int:
        """Nonzero weights across the packable (convolutional) layers."""
        return sum(int(np.count_nonzero(layer.weight.data)) for _, layer in self.layers)

    def utilization(self) -> float:
        """Packing efficiency of the current packed layers, cell-weighted."""
        packed = self.packed_layers()
        total_cells = sum(p.weights.size for _, p in packed)
        if total_cells == 0:
            return 0.0
        nonzero_cells = sum(int(np.count_nonzero(p.weights)) for _, p in packed)
        return nonzero_cells / total_cells

    # -- one epoch of SGD ------------------------------------------------------
    def train_epoch(self, lr: float) -> tuple[float, float]:
        """Run one epoch of SGD at the given learning rate."""
        self.model.train()
        self.optimizer.set_lr(lr)
        loader = DataLoader(self.train_data, batch_size=self.config.batch_size,
                            shuffle=True, rng=self.rng)
        losses: list[float] = []
        accuracies: list[float] = []
        for images, labels in loader:
            if self.config.augment:
                images = augment_batch(images, self.rng)
            logits = self.model.forward(images)
            loss = self.loss_fn(logits, labels)
            self.optimizer.zero_grad()
            self.model.backward(self.loss_fn.backward())
            self.optimizer.step()
            losses.append(loss)
            accuracies.append(accuracy(logits, labels))
        return float(np.mean(losses)), float(np.mean(accuracies))

    def evaluate(self, dataset: Dataset | None = None) -> tuple[float, float]:
        """Mean loss and accuracy on a dataset (default: the test set)."""
        dataset = dataset if dataset is not None else self.test_data
        self.model.eval()
        loader = DataLoader(dataset, batch_size=self.config.batch_size, shuffle=False)
        losses: list[float] = []
        correct = 0
        for images, labels in loader:
            logits = self.model.forward(images)
            losses.append(self.loss_fn(logits, labels) * len(labels))
            correct += int((np.argmax(logits, axis=1) == labels).sum())
        total = len(dataset)
        return float(np.sum(losses) / total), correct / total

    # -- pruning / grouping step ------------------------------------------------
    def prune_and_group(self, beta: float) -> dict[str, ColumnGrouping]:
        """Steps 1-3 of Algorithm 1 applied to every packable layer."""
        groupings: dict[str, ColumnGrouping] = {}
        for name, layer in self.layers:
            # Step 1: initial magnitude pruning of the remaining weights.
            magnitude_prune_parameter(layer.weight, beta)
            # Step 2: group columns under the alpha / gamma constraints.
            grouping = group_columns(layer.weight.data, alpha=self.config.alpha,
                                     gamma=self.config.gamma,
                                     policy=self.config.grouping_policy,
                                     rng=self.rng,
                                     engine=self.config.grouping_engine)
            # Step 3: prune conflicts within each group and install the mask
            # so retraining keeps pruned weights at zero.
            keep = conflict_mask(layer.weight.data, grouping,
                                 engine=self.config.prune_engine)
            layer.weight.set_mask(keep)
            groupings[name] = grouping
        self.groupings = groupings
        return groupings

    # -- the full Algorithm 1 loop ----------------------------------------------
    def run(self) -> TrainingHistory:
        """Execute the iterative prune / group / combine / retrain loop."""
        config = self.config
        beta_schedule = BetaSchedule(config.beta, config.beta_decay)
        rounds = 0
        _, test_acc = self.evaluate()
        self.history.append(EpochRecord(self._epoch, 0, "initial", float("nan"),
                                        float("nan"), test_acc, self.conv_nonzeros()))

        while self.conv_nonzeros() > self.target_nonzeros and rounds < config.max_rounds:
            rounds += 1
            self.history.pruning_epochs.append(self._epoch)
            self.prune_and_group(beta_schedule.value)
            logger.info("round %d: pruned to %d nonzeros (target %d)",
                        rounds, self.conv_nonzeros(), self.target_nonzeros)
            schedule = CosineSchedule(config.lr, final_fraction=config.round_lr_fraction)
            self._run_phase(f"round-{rounds}", rounds, config.epochs_per_round, schedule)
            beta_schedule.step()

        # Final fine-tuning with the learning rate decaying to zero.
        if config.final_epochs > 0:
            schedule = CosineSchedule(config.lr, final_fraction=config.final_lr_fraction)
            self._run_phase("final", rounds, config.final_epochs, schedule)
        return self.history

    def _run_phase(self, phase: str, round_index: int, epochs: int,
                   schedule: CosineSchedule) -> None:
        for epoch_in_phase in range(epochs):
            lr = schedule(epoch_in_phase, epochs)
            train_loss, train_acc = self.train_epoch(lr)
            _, test_acc = self.evaluate()
            self._epoch += 1
            self.history.append(EpochRecord(self._epoch, round_index, phase, train_loss,
                                            train_acc, test_acc, self.conv_nonzeros()))

    # -- deployment artefacts -----------------------------------------------------
    def packed_layers(self) -> list[tuple[str, PackedFilterMatrix]]:
        """Packed filter matrices for every packable layer.

        Layers that have not been grouped yet (e.g. before :meth:`run`) are
        grouped on the fly with the configured α / γ.
        """
        packed: list[tuple[str, PackedFilterMatrix]] = []
        for name, layer in self.layers:
            grouping = self.groupings.get(name)
            if grouping is None:
                grouping = group_columns(layer.weight.data, alpha=self.config.alpha,
                                         gamma=self.config.gamma,
                                         policy=self.config.grouping_policy,
                                         engine=self.config.grouping_engine)
            packed.append((name, pack_filter_matrix(layer.weight.data, grouping,
                                                    engine=self.config.prune_engine)))
        return packed


def train_dense(model: Module, train_data: Dataset, test_data: Dataset,
                epochs: int = 3, lr: float = 0.05, momentum: float = 0.9,
                weight_decay: float = 1e-4, batch_size: int = 64,
                augment: bool = False, seed: int = 0) -> TrainingHistory:
    """Train a dense (unpruned) model — the "pretrained model" of Section 6.

    Uses the same SGD / cosine-schedule setup as the column-combining
    trainer but performs no pruning, so the result is the dense customer
    model that the limited-data experiment (Figure 15b) starts from.
    """
    config = ColumnCombineConfig(lr=lr, momentum=momentum, weight_decay=weight_decay,
                                 batch_size=batch_size, augment=augment, seed=seed,
                                 epochs_per_round=0, final_epochs=epochs,
                                 target_fraction=1.0, max_rounds=1)
    trainer = ColumnCombineTrainer(model, train_data, test_data, config)
    schedule = CosineSchedule(lr, final_fraction=0.0)
    _, test_acc = trainer.evaluate()
    trainer.history.append(EpochRecord(0, 0, "dense-initial", float("nan"), float("nan"),
                                       test_acc, trainer.conv_nonzeros()))
    trainer._run_phase("dense", 0, epochs, schedule)
    return trainer.history
