"""Versioned packed-artifact serialization: pack once, serve forever.

Every consumer so far re-runs the :class:`~repro.combining.pipeline.PackingPipeline`
to get a :class:`~repro.combining.inference.PackedModel` — acceptable for
experiments, wasteful for serving, where the whole point of column
combining is to amortize one packing across millions of requests.  This
module persists a packed model (or its quantized twin) as a single
``.npz`` *packed artifact* so servers cold-start by loading instead of
re-packing:

* **Everything the array needs** — per-layer packed filter matrices and
  MX-cell channel routing, the column grouping (the tiling plan derives
  from it), the array geometry, the
  :class:`~repro.combining.pipeline.PipelineConfig` the packing ran
  under, and — for :class:`~repro.combining.quantized.QuantizedPackedModel` —
  the frozen per-layer calibration scales.
* **Everything the host needs** — the nn model's full parameter state
  (:func:`repro.nn.serialization.state_dict`) plus an optional
  ``model_spec`` (``{"name": ..., "kwargs": {...}}`` for
  :func:`repro.models.build_model`) so :func:`load_packed` can rebuild
  the module graph without the caller supplying an architecture.
* **Integrity** — a format version (readers reject artifacts written by
  an incompatible format) and a per-layer blake2b fingerprint over the
  packed weights, routing, and grouping (readers reject corrupted or
  tampered layer data), both with explicit
  :class:`PackedArtifactError` messages.

The contract that makes artifacts trustworthy: ``load_packed(save_packed(m))``
is **forward-bit-identical** to ``m`` — float64 arrays round-trip raw
through the npz container, the module state restores exactly, and frozen
quantizer scales are persisted as arrays (not decimal strings), so a
served model answers with exactly the bits the freshly packed model would
have produced.

Usage::

    from repro.combining import PackedModel, PipelineConfig
    from repro.combining.serialization import load_packed, save_packed

    packed = PackedModel.from_model(model, PipelineConfig(alpha=8, gamma=0.5))
    save_packed(packed, "lenet5.packed.npz",
                model_spec={"name": "lenet5",
                            "kwargs": {"in_channels": 1, "image_size": 12}})
    served = load_packed("lenet5.packed.npz")   # no pipeline run
    assert np.array_equal(served.forward(x), packed.forward(x))
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from pathlib import Path
from typing import Any

import numpy as np

from repro.combining.grouping import ColumnGrouping
from repro.combining.inference import PackedLayerSpec, PackedModel
from repro.combining.packing import PackedFilterMatrix
from repro.combining.pipeline import PipelineConfig
from repro.combining.quantized import LayerCalibration, QuantizedPackedModel
from repro.models.registry import build_model
from repro.models.registry import packable_layers as _model_packable_layers
from repro.nn import Module
from repro.nn.serialization import load_state_dict, state_dict
from repro.quant.linear import LinearQuantizer

#: Version stamp written into every artifact.  Bump on any layout change;
#: :func:`load_packed` refuses other versions with a clear error instead
#: of misreading the container.
FORMAT_VERSION = 1

#: Artifact kinds: a float :class:`PackedModel` or its calibrated
#: :class:`QuantizedPackedModel` twin.
ARTIFACT_KINDS: tuple[str, ...] = ("packed", "quantized")


class PackedArtifactError(ValueError):
    """A packed artifact is unreadable: wrong format version, corrupted or
    tampered layer data (fingerprint mismatch), or missing pieces."""


def fingerprint_packed(packed: PackedFilterMatrix) -> str:
    """Hex blake2b digest of one layer's packed weights, routing, and grouping.

    This is the artifact-integrity fingerprint: it covers everything that
    determines the layer's packed computation (weights, per-cell channel
    routing, group membership and order), so any corruption of the stored
    arrays — or a mismatch between arrays and metadata — changes it.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.ascontiguousarray(packed.weights).tobytes())
    digest.update(np.ascontiguousarray(packed.channel_index).tobytes())
    flat_columns, group_sizes = _grouping_arrays(packed.grouping)
    digest.update(flat_columns.tobytes())
    digest.update(group_sizes.tobytes())
    return digest.hexdigest()


def _grouping_arrays(grouping: ColumnGrouping) -> tuple[np.ndarray, np.ndarray]:
    """Flatten a grouping into (member columns in group order, group sizes)."""
    flat_columns = np.fromiter(
        (column for group in grouping.groups for column in group),
        dtype=np.int64, count=grouping.num_columns)
    group_sizes = np.fromiter((len(group) for group in grouping.groups),
                              dtype=np.int64, count=grouping.num_groups)
    return flat_columns, group_sizes


def _concatenate(pieces: list[np.ndarray], dtype: type) -> np.ndarray:
    """Concatenate 1-D pieces (an empty list becomes an empty typed array)."""
    if not pieces:
        return np.zeros(0, dtype=dtype)
    return np.concatenate([np.asarray(piece, dtype=dtype) for piece in pieces])


def _validate_model_spec(model_spec: dict[str, Any]) -> dict[str, Any]:
    if not isinstance(model_spec, dict) or "name" not in model_spec:
        raise ValueError('model_spec must be {"name": ..., "kwargs": {...}}')
    kwargs = model_spec.get("kwargs", {})
    if not isinstance(kwargs, dict):
        raise ValueError("model_spec['kwargs'] must be a mapping")
    spec = {"name": str(model_spec["name"]), "kwargs": kwargs}
    try:
        json.dumps(spec)
    except TypeError as error:
        raise ValueError(
            f"model_spec must be JSON-serializable: {error}") from error
    return spec


def save_packed(model: PackedModel | QuantizedPackedModel,
                path: str | Path,
                model_spec: dict[str, Any] | None = None,
                compress: bool = True) -> Path:
    """Persist a packed (or quantized packed) model as one ``.npz`` artifact.

    ``model_spec`` (optional, for model-backed packings) records how to
    rebuild the architecture at load time —
    ``{"name": <registry name>, "kwargs": {...}}`` for
    :func:`repro.models.build_model`; the parameter *values* are always
    persisted via :func:`repro.nn.serialization.state_dict`, so the spec
    only has to reproduce the topology.  Without a spec, loading a
    model-backed artifact requires passing the architecture to
    :func:`load_packed` explicitly.

    ``compress=False`` trades file size for faster cold-start loads
    (zlib inflation is a visible share of load time for the full-size
    workloads); the format is identical either way.

    A :class:`QuantizedPackedModel` must be calibrated — the artifact's
    job is to carry the frozen scales a server cold-starts with.
    """
    quantized: QuantizedPackedModel | None = None
    if isinstance(model, QuantizedPackedModel):
        quantized = model
        packed = model.packed
        if not quantized.calibrated:
            raise ValueError(
                "cannot save an uncalibrated QuantizedPackedModel: the "
                "artifact persists the frozen calibration scales; run "
                "calibrate(batch) first")
    elif isinstance(model, PackedModel):
        packed = model
    else:
        raise TypeError(
            f"save_packed takes a PackedModel or QuantizedPackedModel, "
            f"got {type(model).__name__}")
    if model_spec is not None:
        if packed.model is None:
            raise ValueError(
                "model_spec was given but this PackedModel has no nn model")
        model_spec = _validate_model_spec(model_spec)

    # Columnar layout: every layer's packed data concatenates into four
    # flat arrays (sliced back apart via the shapes in the metadata), so
    # the artifact holds a handful of npz entries however many layers the
    # network has — per-entry container overhead is what dominates load
    # time for the 20-layer workloads.
    arrays: dict[str, np.ndarray] = {}
    layers_meta: list[dict[str, Any]] = []
    all_weights: list[np.ndarray] = []
    all_channels: list[np.ndarray] = []
    all_columns: list[np.ndarray] = []
    all_sizes: list[np.ndarray] = []
    for spec in packed.specs:
        layer = spec.packed
        flat_columns, group_sizes = _grouping_arrays(layer.grouping)
        all_weights.append(layer.weights.ravel())
        all_channels.append(layer.channel_index.ravel())
        all_columns.append(flat_columns)
        all_sizes.append(group_sizes)
        layers_meta.append({
            "name": spec.name,
            "original_shape": list(layer.original_shape),
            "num_groups": layer.num_groups,
            "alpha": layer.grouping.alpha,
            "gamma": layer.grouping.gamma,
            "policy": layer.grouping.policy,
            "fingerprint": fingerprint_packed(layer),
        })
    arrays["packed.weights"] = _concatenate(all_weights, np.float64)
    arrays["packed.channel_index"] = _concatenate(all_channels, np.int64)
    arrays["packed.group_columns"] = _concatenate(all_columns, np.int64)
    arrays["packed.group_sizes"] = _concatenate(all_sizes, np.int64)

    has_model_state = packed.model is not None
    if has_model_state:
        for name, array in state_dict(packed.model).items():
            arrays[f"state.{name}"] = array

    quantized_meta: dict[str, Any] | None = None
    if quantized is not None:
        calibrations = quantized.layer_calibrations()
        arrays["quant.input_scales"] = np.array(
            [c.input_quantizer.scale for c in calibrations], dtype=np.float64)
        arrays["quant.weight_scales"] = np.array(
            [c.weight_quantizer.scale for c in calibrations], dtype=np.float64)
        quantized_meta = {
            "bits": quantized.bits,
            "calibration": quantized.calibration,
            "percentile": quantized.percentile,
            "layers": [{"name": c.name,
                        "weight_rmse": c.weight_rmse,
                        "weight_saturation": c.weight_saturation}
                       for c in calibrations],
        }

    meta = {
        "format_version": FORMAT_VERSION,
        "kind": "quantized" if quantized is not None else "packed",
        "array_rows": packed.array_rows,
        "array_cols": packed.array_cols,
        "pipeline_config": (packed.pipeline_config.to_dict()
                            if packed.pipeline_config is not None else None),
        "layers": layers_meta,
        "model_spec": model_spec,
        "has_model_state": has_model_state,
        "quantized": quantized_meta,
    }
    arrays["meta"] = np.array(json.dumps(meta, sort_keys=True))

    path = Path(path)
    writer = np.savez_compressed if compress else np.savez
    with open(path, "wb") as handle:
        writer(handle, **arrays)
    return path


def _open_artifact(path: Path) -> Any:
    """``np.load`` with container failures wrapped as artifact errors.

    A truncated download or a non-npz file makes ``np.load`` raise zip /
    pickle errors whose messages mislead ("pickled data" for plain
    garbage); readers promise :class:`PackedArtifactError` for anything
    unreadable.  A missing file still raises ``FileNotFoundError``.
    """
    try:
        return np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise
    except (ValueError, OSError, zipfile.BadZipFile) as error:
        raise PackedArtifactError(
            f"{path} is not a readable packed artifact "
            f"(corrupt or not an npz file): {error}") from error


def _read_meta(data: Any, path: Path) -> dict[str, Any]:
    if "meta" not in data:
        raise PackedArtifactError(
            f"{path} is not a packed artifact (no 'meta' entry)")
    meta = json.loads(str(data["meta"][()]))
    version = meta.get("format_version")
    if version != FORMAT_VERSION:
        raise PackedArtifactError(
            f"{path} has packed-artifact format version {version!r}; this "
            f"build reads version {FORMAT_VERSION} — re-save the artifact "
            "with the current save_packed")
    if meta.get("kind") not in ARTIFACT_KINDS:
        raise PackedArtifactError(
            f"{path} has unknown artifact kind {meta.get('kind')!r}; "
            f"expected one of {ARTIFACT_KINDS}")
    return meta


def artifact_info(path: str | Path) -> dict[str, Any]:
    """The artifact's metadata (validated version / kind) without rebuilding it.

    The cheap inspection path for registries and the ``load-packed`` CLI
    report: returns the decoded metadata mapping plus ``path`` and
    ``file_bytes``.
    """
    path = Path(path)
    with _open_artifact(path) as data:
        meta = _read_meta(data, path)
    meta["path"] = str(path)
    meta["file_bytes"] = path.stat().st_size
    return meta


def _load_layers(data: Any, meta: dict[str, Any],
                 path: Path) -> list[PackedFilterMatrix]:
    """Slice the columnar arrays back into per-layer packed matrices."""
    try:
        all_weights = data["packed.weights"]
        all_channels = data["packed.channel_index"]
        all_columns = data["packed.group_columns"]
        all_sizes = data["packed.group_sizes"]
    except KeyError as error:
        raise PackedArtifactError(
            f"{path}: artifact is missing packed array {error}") from error
    layers: list[PackedFilterMatrix] = []
    cell_cursor = column_cursor = group_cursor = 0
    for index, layer_meta in enumerate(meta["layers"]):
        rows, columns = (int(side) for side in layer_meta["original_shape"])
        num_groups = int(layer_meta["num_groups"])
        cells = rows * num_groups
        if (cell_cursor + cells > all_weights.size
                or column_cursor + columns > all_columns.size
                or group_cursor + num_groups > all_sizes.size):
            raise PackedArtifactError(
                f"{path}: layer {index} ({layer_meta['name']!r}) extends "
                "past the end of the packed arrays — the artifact is "
                "truncated or its metadata does not match its data")
        weights = all_weights[cell_cursor:cell_cursor + cells]
        channel_index = all_channels[cell_cursor:cell_cursor + cells]
        group_sizes = all_sizes[group_cursor:group_cursor + num_groups]
        flat_columns = all_columns[column_cursor:column_cursor + columns]
        cell_cursor += cells
        column_cursor += columns
        group_cursor += num_groups
        groups: list[list[int]] = []
        cursor = 0
        for size in group_sizes:
            groups.append([int(col)
                           for col in flat_columns[cursor:cursor + size]])
            cursor += int(size)
        try:
            grouping = ColumnGrouping(groups=groups, num_columns=columns,
                                      num_rows=rows,
                                      alpha=int(layer_meta["alpha"]),
                                      gamma=float(layer_meta["gamma"]),
                                      policy=str(layer_meta["policy"]))
            packed = PackedFilterMatrix(
                weights=weights.reshape(rows, num_groups).copy(),
                channel_index=channel_index.reshape(rows, num_groups).copy(),
                grouping=grouping,
                original_shape=(rows, columns))
        except ValueError as error:
            raise PackedArtifactError(
                f"{path}: layer {index} ({layer_meta['name']!r}) is "
                f"internally inconsistent: {error}") from error
        fingerprint = fingerprint_packed(packed)
        if fingerprint != layer_meta["fingerprint"]:
            raise PackedArtifactError(
                f"{path}: layer {index} ({layer_meta['name']!r}) fingerprint "
                f"mismatch: stored {layer_meta['fingerprint']}, recomputed "
                f"{fingerprint} — the artifact's layer data was corrupted "
                "or edited after saving")
        layers.append(packed)
    if (cell_cursor != all_weights.size or cell_cursor != all_channels.size
            or column_cursor != all_columns.size
            or group_cursor != all_sizes.size):
        raise PackedArtifactError(
            f"{path}: packed arrays hold more data than the metadata "
            "describes — the artifact is corrupted")
    return layers


def _load_raw(path: Path) -> tuple[dict[str, Any], list[PackedFilterMatrix],
                                   dict[str, np.ndarray], dict[str, np.ndarray]]:
    """Read + integrity-check an artifact's contents, no model resolution."""
    with _open_artifact(path) as data:
        meta = _read_meta(data, path)
        layers = _load_layers(data, meta, path)
        state = {key[len("state."):]: data[key]
                 for key in data.files if key.startswith("state.")}
        quant_arrays: dict[str, np.ndarray] = {}
        if meta["kind"] == "quantized":
            try:
                quant_arrays = {"input_scales": data["quant.input_scales"],
                                "weight_scales": data["quant.weight_scales"]}
            except KeyError as error:
                raise PackedArtifactError(
                    f"{path}: quantized artifact is missing scale array "
                    f"{error}") from error
    return meta, layers, state, quant_arrays


def verify_artifact(path: str | Path) -> dict[str, Any]:
    """Load and integrity-check an artifact without materializing a model.

    The inspection path (the ``load-packed`` CLI report): every layer is
    rebuilt, validated, and fingerprint-checked exactly as
    :func:`load_packed` would, but the nn architecture is never built —
    so artifacts saved without a ``model_spec`` (or whose spec the
    caller cannot satisfy) still inspect cleanly.  Returns the metadata
    (as :func:`artifact_info`), the verified
    :class:`~repro.combining.packing.PackedFilterMatrix` per layer, and
    the frozen quantizer scale arrays for quantized artifacts.
    """
    path = Path(path)
    meta, layers, _, quant_arrays = _load_raw(path)
    info = dict(meta)
    info["path"] = str(path)
    info["file_bytes"] = path.stat().st_size
    return {"info": info, "layers": layers,
            "input_scales": quant_arrays.get("input_scales"),
            "weight_scales": quant_arrays.get("weight_scales")}


def _resolve_model(meta: dict[str, Any], model: Module | None,
                   path: Path) -> Module | None:
    if model is not None:
        return model
    if meta["model_spec"] is not None:
        spec = meta["model_spec"]
        return build_model(spec["name"], **spec.get("kwargs", {}))
    if meta["has_model_state"]:
        raise PackedArtifactError(
            f"{path} carries nn model state but no model_spec; pass the "
            "architecture explicitly: load_packed(path, model=...)")
    return None


def load_packed(path: str | Path, model: Module | None = None
                ) -> PackedModel | QuantizedPackedModel:
    """Load a packed artifact back into a forward-ready model.

    Returns a :class:`PackedModel` for ``"packed"`` artifacts and a
    calibrated :class:`QuantizedPackedModel` for ``"quantized"`` ones.
    The loaded model's forward is bit-identical to the model that was
    saved.  ``model`` optionally supplies the nn architecture (parameter
    values are overwritten from the artifact's state); when omitted, the
    artifact's ``model_spec`` rebuilds it, and artifacts saved from
    matrix-only packings load as matrix-only models (no forward).

    Raises :class:`PackedArtifactError` on format-version mismatch,
    per-layer fingerprint mismatch, or structural corruption.
    """
    path = Path(path)
    meta, packed_layers, state, quant_arrays = _load_raw(path)
    resolved = _resolve_model(meta, model, path)
    if meta["has_model_state"]:
        assert resolved is not None
        try:
            load_state_dict(resolved, state, strict=True)
        except (KeyError, ValueError) as error:
            raise PackedArtifactError(
                f"{path}: artifact state does not fit the supplied model "
                f"architecture: {error}") from error

    modules: list[Any]
    if resolved is not None:
        layers = _model_packable_layers(resolved)
        if len(layers) != len(packed_layers):
            raise PackedArtifactError(
                f"{path} has {len(packed_layers)} packed layers but the "
                f"model architecture has {len(layers)} packable layers")
        modules = [module for _, module in layers]
    else:
        modules = [None] * len(packed_layers)
    try:
        specs = [PackedLayerSpec(layer_meta["name"], packed_layer, module)
                 for layer_meta, packed_layer, module
                 in zip(meta["layers"], packed_layers, modules)]
    except ValueError as error:
        raise PackedArtifactError(
            f"{path}: packed layers do not fit the model architecture: "
            f"{error}") from error
    pipeline_config = (PipelineConfig.from_dict(meta["pipeline_config"])
                       if meta["pipeline_config"] is not None else None)
    packed_model = PackedModel(specs, model=resolved,
                               array_rows=int(meta["array_rows"]),
                               array_cols=int(meta["array_cols"]),
                               pipeline_config=pipeline_config)
    if meta["kind"] == "packed":
        return packed_model

    quantized_meta = meta["quantized"]
    quantized = QuantizedPackedModel(
        packed_model, bits=int(quantized_meta["bits"]),
        calibration=str(quantized_meta["calibration"]),
        percentile=float(quantized_meta["percentile"]))
    calibrations = []
    for layer_meta, input_scale, weight_scale in zip(
            quantized_meta["layers"], quant_arrays["input_scales"],
            quant_arrays["weight_scales"]):
        calibrations.append(LayerCalibration(
            name=layer_meta["name"],
            input_quantizer=LinearQuantizer(bits=quantized.bits,
                                            scale=float(input_scale)),
            weight_quantizer=LinearQuantizer(bits=quantized.bits,
                                             scale=float(weight_scale)),
            weight_rmse=float(layer_meta["weight_rmse"]),
            weight_saturation=float(layer_meta["weight_saturation"]),
        ))
    try:
        quantized.restore_calibrations(calibrations)
    except ValueError as error:
        raise PackedArtifactError(
            f"{path}: frozen calibrations do not match the packed layers: "
            f"{error}") from error
    return quantized
