"""Versioned packed-artifact serialization: pack once, serve forever.

Every consumer so far re-runs the :class:`~repro.combining.pipeline.PackingPipeline`
to get a :class:`~repro.combining.inference.PackedModel` — acceptable for
experiments, wasteful for serving, where the whole point of column
combining is to amortize one packing across millions of requests.  This
module persists a packed model (or its quantized twin) as a single
``.npz`` *packed artifact* so servers cold-start by loading instead of
re-packing:

* **Everything the array needs** — per-layer packed filter matrices and
  MX-cell channel routing, the column grouping (the tiling plan derives
  from it), the array geometry, the
  :class:`~repro.combining.pipeline.PipelineConfig` the packing ran
  under, and — for :class:`~repro.combining.quantized.QuantizedPackedModel` —
  the frozen per-layer calibration scales.
* **Everything the host needs** — the nn model's full parameter state
  (:func:`repro.nn.serialization.state_dict`) plus an optional
  ``model_spec`` (``{"name": ..., "kwargs": {...}}`` for
  :func:`repro.models.build_model`) so :func:`load_packed` can rebuild
  the module graph without the caller supplying an architecture.
* **Integrity** — a format version (readers reject artifacts written by
  an incompatible format) and a per-layer blake2b fingerprint over the
  packed weights, routing, and grouping (readers reject corrupted or
  tampered layer data), both with explicit
  :class:`PackedArtifactError` messages.

The contract that makes artifacts trustworthy: ``load_packed(save_packed(m))``
is **forward-bit-identical** to ``m`` — float64 arrays round-trip raw
through the npz container, the module state restores exactly, and frozen
quantizer scales are persisted as arrays (not decimal strings), so a
served model answers with exactly the bits the freshly packed model would
have produced.

**Format V2** (current) reorganizes the host-side payload for serving:

* nn model state consolidates from one npz entry per parameter into one
  flat ``blob.<dtype>`` entry per dtype (entry-count and container
  overhead stop scaling with parameter count); the metadata maps each
  parameter name to its ``{blob, offset, size, shape}`` slice.
  Batch-norm running statistics — non-parameter module state V1 silently
  dropped — persist the same way under ``meta["buffers"]``.
* Model-backed artifacts additionally carry an **execution-plan
  manifest** (the op tree of
  :meth:`~repro.combining.inference.PackedModel.compile_plan`), so
  :func:`load_plan` rebuilds an immutable
  :class:`~repro.combining.execplan.ExecutionPlan` straight from the
  arrays — no nn module graph, no ``build_model``.
* Uncompressed V2 artifacts (``compress=False``) load **zero-copy** with
  ``load_packed(path, mmap=True)`` / ``load_plan(path, mmap=True)``:
  every array is an ``np.memmap`` view into the file, so N serving
  worker processes share one resident copy of the packed arrays through
  the page cache.  ``mmap="auto"`` falls back to a normal read for
  compressed or V1 artifacts.

V1 artifacts remain fully readable (see ``SUPPORTED_FORMAT_VERSIONS``),
and ``save_packed(..., format_version=1)`` still writes them for
compatibility tooling.

Usage::

    from repro.combining import PackedModel, PipelineConfig
    from repro.combining.serialization import load_packed, load_plan, save_packed

    packed = PackedModel.from_model(model, PipelineConfig(alpha=8, gamma=0.5))
    save_packed(packed, "lenet5.packed.npz", compress=False,
                model_spec={"name": "lenet5",
                            "kwargs": {"in_channels": 1, "image_size": 12}})
    served = load_packed("lenet5.packed.npz")   # no pipeline run
    assert np.array_equal(served.forward(x), packed.forward(x))
    plan = load_plan("lenet5.packed.npz", mmap=True)   # zero-copy, no nn model
    assert np.array_equal(plan.forward(x), packed.forward(x))
"""

from __future__ import annotations

import hashlib
import json
import zipfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any

import numpy as np

from repro.combining.grouping import ColumnGrouping
from repro.combining.inference import PackedLayerSpec, PackedModel
from repro.combining.packing import PackedFilterMatrix
from repro.combining.pipeline import PipelineConfig
from repro.combining.quantized import LayerCalibration, QuantizedPackedModel
from repro.models.registry import build_model
from repro.models.registry import packable_layers as _model_packable_layers
from repro.nn import Module
from repro.nn.layers import BatchNorm2d
from repro.nn.serialization import load_state_dict, state_dict
from repro.quant.linear import LinearQuantizer

#: Version stamp written into every artifact.  Bump on any layout change;
#: readers refuse versions outside :data:`SUPPORTED_FORMAT_VERSIONS` with
#: a clear error instead of misreading the container.
FORMAT_VERSION = 2

#: Format versions :func:`load_packed` / :func:`load_plan` read.  V1 (one
#: npz entry per nn parameter, no plan manifest) stays readable so
#: existing artifacts keep serving; V2 is what :func:`save_packed` writes.
SUPPORTED_FORMAT_VERSIONS: tuple[int, ...] = (1, 2)

#: Artifact kinds: a float :class:`PackedModel` or its calibrated
#: :class:`QuantizedPackedModel` twin.
ARTIFACT_KINDS: tuple[str, ...] = ("packed", "quantized")


class PackedArtifactError(ValueError):
    """A packed artifact is unreadable: wrong format version, corrupted or
    tampered layer data (fingerprint mismatch), or missing pieces."""


def fingerprint_packed(packed: PackedFilterMatrix) -> str:
    """Hex blake2b digest of one layer's packed weights, routing, and grouping.

    This is the artifact-integrity fingerprint: it covers everything that
    determines the layer's packed computation (weights, per-cell channel
    routing, group membership and order), so any corruption of the stored
    arrays — or a mismatch between arrays and metadata — changes it.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(np.ascontiguousarray(packed.weights).tobytes())
    digest.update(np.ascontiguousarray(packed.channel_index).tobytes())
    flat_columns, group_sizes = _grouping_arrays(packed.grouping)
    digest.update(flat_columns.tobytes())
    digest.update(group_sizes.tobytes())
    return digest.hexdigest()


def _content_digest(arrays: dict[str, np.ndarray],
                    meta: dict[str, Any]) -> str:
    """Hex blake2b digest over an artifact's full content.

    Covers every stored array (packed layers, nn state / plan blobs,
    quantizer scales) plus the metadata itself, so *any* change to what
    the artifact serves — weights, biases, batch-norm statistics,
    calibration scales, layer structure — changes the digest, while
    re-saving identical content reproduces it (container timestamps and
    compression settings do not participate).  Stored in the metadata at
    save time so :func:`artifact_fingerprint` can probe it without a
    full load.
    """
    digest = hashlib.blake2b(digest_size=16)
    digest.update(json.dumps(meta, sort_keys=True).encode())
    for name in sorted(arrays):
        array = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(array.tobytes())
    return digest.hexdigest()


def _file_digest(path: Path) -> str:
    """Fallback whole-artifact fingerprint for legacy artifacts.

    Artifacts saved before the content digest existed carry no
    ``fingerprint`` in their metadata; hashing the container bytes still
    yields a token that changes whenever the file changes, which is all
    the hot-swap cache keying needs.  The prefix keeps the two digest
    namespaces from ever colliding.
    """
    digest = hashlib.blake2b(digest_size=16)
    with open(path, "rb") as handle:
        while True:
            chunk = handle.read(1 << 20)
            if not chunk:
                break
            digest.update(chunk)
    return f"file-{digest.hexdigest()}"


def artifact_fingerprint(path: str | Path) -> str:
    """The artifact's whole-content fingerprint, without a full load.

    The cheap probe behind :meth:`ModelRegistry.swap
    <repro.serving.registry.ModelRegistry.swap>` and the worker-process
    plan caches: reads only the metadata entry (artifacts written by the
    current :func:`save_packed` store their content digest there) and
    falls back to hashing the container bytes for legacy artifacts.
    Two artifacts with identical served content fingerprint identically;
    any change to weights, state, scales, or structure changes the
    token.
    """
    path = Path(path)
    with _open_artifact(path) as data:
        meta = _read_meta(data, path)
    fingerprint = meta.get("fingerprint")
    if fingerprint:
        return str(fingerprint)
    return _file_digest(path)


def _grouping_arrays(grouping: ColumnGrouping) -> tuple[np.ndarray, np.ndarray]:
    """Flatten a grouping into (member columns in group order, group sizes)."""
    flat_columns = np.fromiter(
        (column for group in grouping.groups for column in group),
        dtype=np.int64, count=grouping.num_columns)
    group_sizes = np.fromiter((len(group) for group in grouping.groups),
                              dtype=np.int64, count=grouping.num_groups)
    return flat_columns, group_sizes


def _concatenate(pieces: list[np.ndarray], dtype: type) -> np.ndarray:
    """Concatenate 1-D pieces (an empty list becomes an empty typed array)."""
    if not pieces:
        return np.zeros(0, dtype=dtype)
    return np.concatenate([np.asarray(piece, dtype=dtype) for piece in pieces])


def _validate_model_spec(model_spec: dict[str, Any]) -> dict[str, Any]:
    if not isinstance(model_spec, dict) or "name" not in model_spec:
        raise ValueError('model_spec must be {"name": ..., "kwargs": {...}}')
    kwargs = model_spec.get("kwargs", {})
    if not isinstance(kwargs, dict):
        raise ValueError("model_spec['kwargs'] must be a mapping")
    spec = {"name": str(model_spec["name"]), "kwargs": kwargs}
    try:
        json.dumps(spec)
    except TypeError as error:
        raise ValueError(
            f"model_spec must be JSON-serializable: {error}") from error
    return spec


class _BlobWriter:
    """Consolidates arrays into one flat buffer per dtype.

    ``store(array)`` appends the array's bytes to its dtype's blob and
    returns a JSON-able ``{"blob", "offset", "size", "shape"}`` reference
    (offsets and sizes in elements); identical contents (same dtype,
    shape, and bytes) deduplicate to one stored copy, so e.g. a parameter
    that appears both in the state dict and in the plan manifest costs
    the artifact one slice.  ``entries()`` emits the finished
    ``blob.<dtype>`` npz entries.
    """

    def __init__(self) -> None:
        self._pieces: dict[str, list[np.ndarray]] = {}
        self._offsets: dict[str, int] = {}
        self._dedupe: dict[tuple, dict[str, Any]] = {}

    def store(self, array: np.ndarray) -> dict[str, Any]:
        array = np.ascontiguousarray(array)
        key = (array.dtype.str, array.shape,
               hashlib.blake2b(array.tobytes(), digest_size=16).digest())
        ref = self._dedupe.get(key)
        if ref is not None:
            return ref
        blob = array.dtype.name
        offset = self._offsets.get(blob, 0)
        self._pieces.setdefault(blob, []).append(array.ravel())
        self._offsets[blob] = offset + int(array.size)
        ref = {"blob": blob, "offset": offset, "size": int(array.size),
               "shape": [int(side) for side in array.shape]}
        self._dedupe[key] = ref
        return ref

    def entries(self) -> dict[str, np.ndarray]:
        return {f"blob.{blob}": np.concatenate(pieces)
                for blob, pieces in self._pieces.items()}


def _slice_ref(blobs: dict[str, np.ndarray], ref: dict[str, Any],
               path: Path) -> np.ndarray:
    """Resolve a blob reference to a (read-only) array view."""
    blob = blobs.get(f"blob.{ref['blob']}")
    start, size = int(ref["offset"]), int(ref["size"])
    if blob is None or start < 0 or start + size > blob.size:
        raise PackedArtifactError(
            f"{path}: blob reference {ref!r} points outside the artifact's "
            "stored data — the artifact is truncated or its metadata does "
            "not match its blobs")
    view = blob[start:start + size].reshape(
        [int(side) for side in ref["shape"]])
    view.setflags(write=False)
    return view


def save_packed(model: PackedModel | QuantizedPackedModel,
                path: str | Path,
                model_spec: dict[str, Any] | None = None,
                compress: bool = True,
                format_version: int | None = None) -> Path:
    """Persist a packed (or quantized packed) model as one ``.npz`` artifact.

    ``model_spec`` (optional, for model-backed packings) records how to
    rebuild the architecture at load time —
    ``{"name": <registry name>, "kwargs": {...}}`` for
    :func:`repro.models.build_model`; the parameter *values* are always
    persisted via :func:`repro.nn.serialization.state_dict`, so the spec
    only has to reproduce the topology.  Without a spec, loading a
    model-backed artifact requires passing the architecture to
    :func:`load_packed` explicitly.

    ``compress=False`` trades file size for faster cold-start loads
    (zlib inflation is a visible share of load time for the full-size
    workloads) — and, for V2 artifacts, enables zero-copy
    ``load_packed(..., mmap=True)`` / ``load_plan(..., mmap=True)``;
    the logical format is identical either way.

    ``format_version`` defaults to the current :data:`FORMAT_VERSION`;
    pass ``1`` to write the legacy layout (per-parameter state entries,
    no plan manifest) for compatibility tooling.

    A :class:`QuantizedPackedModel` must be calibrated — the artifact's
    job is to carry the frozen scales a server cold-starts with.
    """
    version = FORMAT_VERSION if format_version is None else int(format_version)
    if version not in SUPPORTED_FORMAT_VERSIONS:
        raise ValueError(f"unknown packed-artifact format version {version!r};"
                         f" expected one of {SUPPORTED_FORMAT_VERSIONS}")
    quantized: QuantizedPackedModel | None = None
    if isinstance(model, QuantizedPackedModel):
        quantized = model
        packed = model.packed
        if not quantized.calibrated:
            raise ValueError(
                "cannot save an uncalibrated QuantizedPackedModel: the "
                "artifact persists the frozen calibration scales; run "
                "calibrate(batch) first")
    elif isinstance(model, PackedModel):
        packed = model
    else:
        raise TypeError(
            f"save_packed takes a PackedModel or QuantizedPackedModel, "
            f"got {type(model).__name__}")
    if model_spec is not None:
        if packed.model is None:
            raise ValueError(
                "model_spec was given but this PackedModel has no nn model")
        model_spec = _validate_model_spec(model_spec)

    # Columnar layout: every layer's packed data concatenates into four
    # flat arrays (sliced back apart via the shapes in the metadata), so
    # the artifact holds a handful of npz entries however many layers the
    # network has — per-entry container overhead is what dominates load
    # time for the 20-layer workloads.
    arrays: dict[str, np.ndarray] = {}
    layers_meta: list[dict[str, Any]] = []
    all_weights: list[np.ndarray] = []
    all_channels: list[np.ndarray] = []
    all_columns: list[np.ndarray] = []
    all_sizes: list[np.ndarray] = []
    for spec in packed.specs:
        layer = spec.packed
        flat_columns, group_sizes = _grouping_arrays(layer.grouping)
        all_weights.append(layer.weights.ravel())
        all_channels.append(layer.channel_index.ravel())
        all_columns.append(flat_columns)
        all_sizes.append(group_sizes)
        layers_meta.append({
            "name": spec.name,
            "original_shape": list(layer.original_shape),
            "num_groups": layer.num_groups,
            "alpha": layer.grouping.alpha,
            "gamma": layer.grouping.gamma,
            "policy": layer.grouping.policy,
            "fingerprint": fingerprint_packed(layer),
        })
    arrays["packed.weights"] = _concatenate(all_weights, np.float64)
    arrays["packed.channel_index"] = _concatenate(all_channels, np.int64)
    arrays["packed.group_columns"] = _concatenate(all_columns, np.int64)
    arrays["packed.group_sizes"] = _concatenate(all_sizes, np.int64)

    has_model_state = packed.model is not None
    state_meta: dict[str, Any] | None = None
    buffers_meta: dict[str, Any] | None = None
    plan_meta: dict[str, Any] | None = None
    if has_model_state:
        if version == 1:
            for name, array in state_dict(packed.model).items():
                arrays[f"state.{name}"] = array
        else:
            blobs = _BlobWriter()
            state_meta = {name: blobs.store(array)
                          for name, array in state_dict(packed.model).items()}
            # Non-parameter module state the state dict does not cover:
            # batch-norm running statistics, addressed by module path.
            buffers_meta = {}
            for module_path, module in packed.model.named_modules():
                if isinstance(module, BatchNorm2d):
                    prefix = f"{module_path}." if module_path else ""
                    buffers_meta[f"{prefix}running_mean"] = blobs.store(
                        module.running_mean)
                    buffers_meta[f"{prefix}running_var"] = blobs.store(
                        module.running_var)
            # The float op tree; quantizers rebuild from quant.* at load.
            from repro.combining.execplan import manifest_from_plan
            plan_meta = manifest_from_plan(packed.compile_plan(), blobs.store)
            arrays.update(blobs.entries())

    quantized_meta: dict[str, Any] | None = None
    if quantized is not None:
        calibrations = quantized.layer_calibrations()
        arrays["quant.input_scales"] = np.array(
            [c.input_quantizer.scale for c in calibrations], dtype=np.float64)
        arrays["quant.weight_scales"] = np.array(
            [c.weight_quantizer.scale for c in calibrations], dtype=np.float64)
        quantized_meta = {
            "bits": quantized.bits,
            "calibration": quantized.calibration,
            "percentile": quantized.percentile,
            "layers": [{"name": c.name,
                        "weight_rmse": c.weight_rmse,
                        "weight_saturation": c.weight_saturation}
                       for c in calibrations],
        }

    meta = {
        "format_version": version,
        "kind": "quantized" if quantized is not None else "packed",
        "array_rows": packed.array_rows,
        "array_cols": packed.array_cols,
        "pipeline_config": (packed.pipeline_config.to_dict()
                            if packed.pipeline_config is not None else None),
        "layers": layers_meta,
        "model_spec": model_spec,
        "has_model_state": has_model_state,
        "quantized": quantized_meta,
    }
    if version >= 2:
        meta["state"] = state_meta
        meta["buffers"] = buffers_meta
        meta["plan"] = plan_meta
    # The whole-content digest goes into the metadata itself, so probing
    # it later (artifact_fingerprint) never has to touch the arrays.
    meta["fingerprint"] = _content_digest(arrays, meta)
    arrays["meta"] = np.array(json.dumps(meta, sort_keys=True))

    path = Path(path)
    writer = np.savez_compressed if compress else np.savez
    with open(path, "wb") as handle:
        writer(handle, **arrays)
    return path


def _open_artifact(path: Path) -> Any:
    """``np.load`` with container failures wrapped as artifact errors.

    A truncated download or a non-npz file makes ``np.load`` raise zip /
    pickle errors whose messages mislead ("pickled data" for plain
    garbage); readers promise :class:`PackedArtifactError` for anything
    unreadable.  A missing file still raises ``FileNotFoundError``.
    """
    try:
        return np.load(path, allow_pickle=False)
    except FileNotFoundError:
        raise
    except (ValueError, OSError, zipfile.BadZipFile) as error:
        raise PackedArtifactError(
            f"{path} is not a readable packed artifact "
            f"(corrupt or not an npz file): {error}") from error


class _MmapUnsupportedError(PackedArtifactError):
    """The artifact exists and is valid but cannot be memory-mapped
    (compressed entries); ``mmap="auto"`` falls back to a normal read."""


class _MmapArtifact:
    """Zero-copy npz reader: every array is an ``np.memmap`` into the file.

    ``np.load(mmap_mode=...)`` does not support npz archives, so this
    walks the zip members directly: for each stored (uncompressed) entry
    it parses the local file header and the npy header, then maps the
    raw element bytes read-only.  N processes opening one artifact this
    way share a single resident copy of the arrays via the page cache —
    the sharing model the process serving backend builds on.  Compressed
    entries cannot be mapped and raise :class:`_MmapUnsupportedError`
    (re-save with ``compress=False``).  Zero-size and 0-d entries (the
    ``meta`` JSON string) are read eagerly — ``np.memmap`` cannot
    represent them, and they are not worth sharing.
    """

    def __init__(self, path: Path):
        self._arrays: dict[str, np.ndarray] = {}
        try:
            archive = zipfile.ZipFile(path)
        except FileNotFoundError:
            raise
        except (OSError, zipfile.BadZipFile) as error:
            raise PackedArtifactError(
                f"{path} is not a readable packed artifact "
                f"(corrupt or not an npz file): {error}") from error
        with archive, open(path, "rb") as handle:
            for info in archive.infolist():
                name = info.filename
                if name.endswith(".npy"):
                    name = name[:-len(".npy")]
                if info.compress_type != zipfile.ZIP_STORED:
                    raise _MmapUnsupportedError(
                        f"{path}: entry {info.filename!r} is compressed and "
                        "cannot be memory-mapped; re-save the artifact with "
                        "compress=False (or load with mmap=False)")
                try:
                    self._arrays[name] = self._map_entry(handle, info, path)
                except PackedArtifactError:
                    raise
                except (ValueError, OSError) as error:
                    raise PackedArtifactError(
                        f"{path}: entry {info.filename!r} is not a readable "
                        f"npy member: {error}") from error
        self.files = list(self._arrays)

    @staticmethod
    def _map_entry(handle: Any, info: zipfile.ZipInfo,
                   path: Path) -> np.ndarray:
        # Local file header: 30 fixed bytes, then the (variable) name and
        # extra fields; the member's data follows.  The central directory
        # (what ZipInfo reflects) may disagree with the local extra-field
        # length, so read it from the local header itself.
        handle.seek(info.header_offset)
        header = handle.read(30)
        if len(header) != 30 or header[:4] != b"PK\x03\x04":
            raise PackedArtifactError(
                f"{path}: zip member {info.filename!r} has a corrupt local "
                "header")
        name_len = int.from_bytes(header[26:28], "little")
        extra_len = int.from_bytes(header[28:30], "little")
        data_start = info.header_offset + 30 + name_len + extra_len
        handle.seek(data_start)
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, fortran_order, dtype = \
                np.lib.format.read_array_header_1_0(handle)
        elif version == (2, 0):
            shape, fortran_order, dtype = \
                np.lib.format.read_array_header_2_0(handle)
        else:
            raise PackedArtifactError(
                f"{path}: entry {info.filename!r} has unsupported npy "
                f"format version {version}")
        if dtype.hasobject:
            raise PackedArtifactError(
                f"{path}: entry {info.filename!r} holds Python objects; "
                "packed artifacts never do — the file was tampered with")
        if len(shape) == 0 or 0 in shape:
            handle.seek(data_start)
            return np.lib.format.read_array(handle, allow_pickle=False)
        return np.memmap(path, mode="r", dtype=dtype, shape=shape,
                         offset=handle.tell(),
                         order="F" if fortran_order else "C")

    def __getitem__(self, name: str) -> np.ndarray:
        return self._arrays[name]

    def __contains__(self, name: str) -> bool:
        return name in self._arrays

    def __enter__(self) -> "_MmapArtifact":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


def _read_meta(data: Any, path: Path) -> dict[str, Any]:
    if "meta" not in data:
        raise PackedArtifactError(
            f"{path} is not a packed artifact (no 'meta' entry)")
    meta = json.loads(str(data["meta"][()]))
    version = meta.get("format_version")
    if version not in SUPPORTED_FORMAT_VERSIONS:
        raise PackedArtifactError(
            f"{path} has packed-artifact format version {version!r}; this "
            f"build reads versions {SUPPORTED_FORMAT_VERSIONS} — re-save "
            "the artifact with the current save_packed")
    if meta.get("kind") not in ARTIFACT_KINDS:
        raise PackedArtifactError(
            f"{path} has unknown artifact kind {meta.get('kind')!r}; "
            f"expected one of {ARTIFACT_KINDS}")
    return meta


def artifact_info(path: str | Path) -> dict[str, Any]:
    """The artifact's metadata (validated version / kind) without rebuilding it.

    The cheap inspection path for registries and the ``load-packed`` CLI
    report: returns the decoded metadata mapping plus ``path`` and
    ``file_bytes``.
    """
    path = Path(path)
    with _open_artifact(path) as data:
        meta = _read_meta(data, path)
    if not meta.get("fingerprint"):
        meta["fingerprint"] = _file_digest(path)
    meta["path"] = str(path)
    meta["file_bytes"] = path.stat().st_size
    return meta


def _load_layers(data: Any, meta: dict[str, Any], path: Path,
                 copy: bool = True) -> list[PackedFilterMatrix]:
    """Slice the columnar arrays back into per-layer packed matrices.

    ``copy=False`` (the mmap path) keeps each layer's weights and routing
    as read-only views into the columnar arrays instead of materializing
    private copies — the whole point of memory-mapping the artifact.
    """
    try:
        all_weights = data["packed.weights"]
        all_channels = data["packed.channel_index"]
        all_columns = data["packed.group_columns"]
        all_sizes = data["packed.group_sizes"]
    except KeyError as error:
        raise PackedArtifactError(
            f"{path}: artifact is missing packed array {error}") from error
    layers: list[PackedFilterMatrix] = []
    cell_cursor = column_cursor = group_cursor = 0
    for index, layer_meta in enumerate(meta["layers"]):
        rows, columns = (int(side) for side in layer_meta["original_shape"])
        num_groups = int(layer_meta["num_groups"])
        cells = rows * num_groups
        if (cell_cursor + cells > all_weights.size
                or column_cursor + columns > all_columns.size
                or group_cursor + num_groups > all_sizes.size):
            raise PackedArtifactError(
                f"{path}: layer {index} ({layer_meta['name']!r}) extends "
                "past the end of the packed arrays — the artifact is "
                "truncated or its metadata does not match its data")
        weights = all_weights[cell_cursor:cell_cursor + cells]
        channel_index = all_channels[cell_cursor:cell_cursor + cells]
        group_sizes = all_sizes[group_cursor:group_cursor + num_groups]
        flat_columns = all_columns[column_cursor:column_cursor + columns]
        cell_cursor += cells
        column_cursor += columns
        group_cursor += num_groups
        groups: list[list[int]] = []
        cursor = 0
        for size in group_sizes:
            groups.append([int(col)
                           for col in flat_columns[cursor:cursor + size]])
            cursor += int(size)
        try:
            grouping = ColumnGrouping(groups=groups, num_columns=columns,
                                      num_rows=rows,
                                      alpha=int(layer_meta["alpha"]),
                                      gamma=float(layer_meta["gamma"]),
                                      policy=str(layer_meta["policy"]))
            layer_weights = weights.reshape(rows, num_groups)
            layer_channels = channel_index.reshape(rows, num_groups)
            if copy:
                layer_weights = layer_weights.copy()
                layer_channels = layer_channels.copy()
            packed = PackedFilterMatrix(
                weights=layer_weights,
                channel_index=layer_channels,
                grouping=grouping,
                original_shape=(rows, columns))
        except ValueError as error:
            raise PackedArtifactError(
                f"{path}: layer {index} ({layer_meta['name']!r}) is "
                f"internally inconsistent: {error}") from error
        fingerprint = fingerprint_packed(packed)
        if fingerprint != layer_meta["fingerprint"]:
            raise PackedArtifactError(
                f"{path}: layer {index} ({layer_meta['name']!r}) fingerprint "
                f"mismatch: stored {layer_meta['fingerprint']}, recomputed "
                f"{fingerprint} — the artifact's layer data was corrupted "
                "or edited after saving")
        layers.append(packed)
    if (cell_cursor != all_weights.size or cell_cursor != all_channels.size
            or column_cursor != all_columns.size
            or group_cursor != all_sizes.size):
        raise PackedArtifactError(
            f"{path}: packed arrays hold more data than the metadata "
            "describes — the artifact is corrupted")
    return layers


@dataclass
class _RawArtifact:
    """An artifact's decoded, integrity-checked contents (no nn model)."""

    meta: dict[str, Any]
    layers: list[PackedFilterMatrix]
    state: dict[str, np.ndarray]
    quant_arrays: dict[str, np.ndarray]
    buffers: dict[str, np.ndarray] = field(default_factory=dict)
    blobs: dict[str, np.ndarray] = field(default_factory=dict)


def _open_for_read(path: Path, mmap: bool | str) -> Any:
    if mmap is True:
        return _MmapArtifact(path)
    if mmap == "auto":
        try:
            return _MmapArtifact(path)
        except _MmapUnsupportedError:
            return _open_artifact(path)
    if mmap is not False:
        raise ValueError(f"mmap must be True, False, or 'auto', got {mmap!r}")
    return _open_artifact(path)


def _load_raw(path: Path, mmap: bool | str = False) -> _RawArtifact:
    """Read + integrity-check an artifact's contents, no model resolution."""
    data = _open_for_read(path, mmap)
    is_mmap = isinstance(data, _MmapArtifact)
    with data:
        meta = _read_meta(data, path)
        layers = _load_layers(data, meta, path, copy=not is_mmap)
        blobs = {key: data[key] for key in data.files
                 if key.startswith("blob.")}
        state: dict[str, np.ndarray] = {}
        buffers: dict[str, np.ndarray] = {}
        if int(meta["format_version"]) >= 2:
            state = {name: _slice_ref(blobs, ref, path)
                     for name, ref in (meta.get("state") or {}).items()}
            buffers = {name: _slice_ref(blobs, ref, path)
                       for name, ref in (meta.get("buffers") or {}).items()}
        else:
            state = {key[len("state."):]: data[key]
                     for key in data.files if key.startswith("state.")}
        quant_arrays: dict[str, np.ndarray] = {}
        if meta["kind"] == "quantized":
            try:
                quant_arrays = {"input_scales": data["quant.input_scales"],
                                "weight_scales": data["quant.weight_scales"]}
            except KeyError as error:
                raise PackedArtifactError(
                    f"{path}: quantized artifact is missing scale array "
                    f"{error}") from error
    return _RawArtifact(meta=meta, layers=layers, state=state,
                        quant_arrays=quant_arrays, buffers=buffers,
                        blobs=blobs)


def verify_artifact(path: str | Path) -> dict[str, Any]:
    """Load and integrity-check an artifact without materializing a model.

    The inspection path (the ``load-packed`` CLI report): every layer is
    rebuilt, validated, and fingerprint-checked exactly as
    :func:`load_packed` would, but the nn architecture is never built —
    so artifacts saved without a ``model_spec`` (or whose spec the
    caller cannot satisfy) still inspect cleanly.  Returns the metadata
    (as :func:`artifact_info`), the verified
    :class:`~repro.combining.packing.PackedFilterMatrix` per layer, and
    the frozen quantizer scale arrays for quantized artifacts.
    """
    path = Path(path)
    raw = _load_raw(path)
    info = dict(raw.meta)
    info["path"] = str(path)
    info["file_bytes"] = path.stat().st_size
    return {"info": info, "layers": raw.layers,
            "input_scales": raw.quant_arrays.get("input_scales"),
            "weight_scales": raw.quant_arrays.get("weight_scales")}


def _resolve_model(meta: dict[str, Any], model: Module | None,
                   path: Path) -> Module | None:
    if model is not None:
        return model
    if meta["model_spec"] is not None:
        spec = meta["model_spec"]
        return build_model(spec["name"], **spec.get("kwargs", {}))
    if meta["has_model_state"]:
        raise PackedArtifactError(
            f"{path} carries nn model state but no model_spec; pass the "
            "architecture explicitly: load_packed(path, model=...)")
    return None


def _apply_buffers(model: Module, buffers: dict[str, np.ndarray],
                   path: Path) -> None:
    """Install persisted non-parameter module state (batch-norm stats)."""
    modules = dict(model.named_modules())
    for name, array in buffers.items():
        module_path, _, attr = name.rpartition(".")
        module = modules.get(module_path)
        if module is None or not hasattr(module, attr):
            raise PackedArtifactError(
                f"{path}: buffer {name!r} does not fit the supplied model "
                "architecture")
        setattr(module, attr, np.array(array))


def _assemble_model(raw: _RawArtifact, model: Module | None,
                    path: Path) -> PackedModel | QuantizedPackedModel:
    """Build the forward-ready model from an artifact's decoded contents."""
    meta, packed_layers = raw.meta, raw.layers
    resolved = _resolve_model(meta, model, path)
    if meta["has_model_state"]:
        assert resolved is not None
        try:
            load_state_dict(resolved, raw.state, strict=True)
        except (KeyError, ValueError) as error:
            raise PackedArtifactError(
                f"{path}: artifact state does not fit the supplied model "
                f"architecture: {error}") from error
        if raw.buffers:
            _apply_buffers(resolved, raw.buffers, path)

    modules: list[Any]
    if resolved is not None:
        layers = _model_packable_layers(resolved)
        if len(layers) != len(packed_layers):
            raise PackedArtifactError(
                f"{path} has {len(packed_layers)} packed layers but the "
                f"model architecture has {len(layers)} packable layers")
        modules = [module for _, module in layers]
    else:
        modules = [None] * len(packed_layers)
    try:
        specs = [PackedLayerSpec(layer_meta["name"], packed_layer, module)
                 for layer_meta, packed_layer, module
                 in zip(meta["layers"], packed_layers, modules)]
    except ValueError as error:
        raise PackedArtifactError(
            f"{path}: packed layers do not fit the model architecture: "
            f"{error}") from error
    pipeline_config = (PipelineConfig.from_dict(meta["pipeline_config"])
                       if meta["pipeline_config"] is not None else None)
    packed_model = PackedModel(specs, model=resolved,
                               array_rows=int(meta["array_rows"]),
                               array_cols=int(meta["array_cols"]),
                               pipeline_config=pipeline_config)
    if meta["kind"] == "packed":
        return packed_model

    quantized_meta = meta["quantized"]
    quantized = QuantizedPackedModel(
        packed_model, bits=int(quantized_meta["bits"]),
        calibration=str(quantized_meta["calibration"]),
        percentile=float(quantized_meta["percentile"]))
    calibrations = []
    for layer_meta, input_scale, weight_scale in zip(
            quantized_meta["layers"], raw.quant_arrays["input_scales"],
            raw.quant_arrays["weight_scales"]):
        calibrations.append(LayerCalibration(
            name=layer_meta["name"],
            input_quantizer=LinearQuantizer(bits=quantized.bits,
                                            scale=float(input_scale)),
            weight_quantizer=LinearQuantizer(bits=quantized.bits,
                                             scale=float(weight_scale)),
            weight_rmse=float(layer_meta["weight_rmse"]),
            weight_saturation=float(layer_meta["weight_saturation"]),
        ))
    try:
        quantized.restore_calibrations(calibrations)
    except ValueError as error:
        raise PackedArtifactError(
            f"{path}: frozen calibrations do not match the packed layers: "
            f"{error}") from error
    return quantized


def load_packed(path: str | Path, model: Module | None = None,
                mmap: bool | str = False
                ) -> PackedModel | QuantizedPackedModel:
    """Load a packed artifact back into a forward-ready model.

    Returns a :class:`PackedModel` for ``"packed"`` artifacts and a
    calibrated :class:`QuantizedPackedModel` for ``"quantized"`` ones.
    The loaded model's forward is bit-identical to the model that was
    saved — for any format version and any ``mmap`` setting.  ``model``
    optionally supplies the nn architecture (parameter values are
    overwritten from the artifact's state); when omitted, the artifact's
    ``model_spec`` rebuilds it, and artifacts saved from matrix-only
    packings load as matrix-only models (no forward).

    ``mmap=True`` memory-maps every array read-only instead of copying
    it into anonymous memory — concurrent loaders of one artifact then
    share a single resident copy via the page cache.  It requires an
    uncompressed artifact (``save_packed(..., compress=False)``) and
    raises :class:`PackedArtifactError` otherwise; ``mmap="auto"`` falls
    back to a normal read in that case.

    Raises :class:`PackedArtifactError` on format-version mismatch,
    per-layer fingerprint mismatch, or structural corruption.
    """
    path = Path(path)
    raw = _load_raw(path, mmap=mmap)
    return _assemble_model(raw, model, path)


def _plan_from_artifact(raw: _RawArtifact, path: Path) -> Any:
    """Rebuild an :class:`ExecutionPlan` from a V2 plan manifest."""
    from repro.combining.execplan import (
        ExecutionPlan,
        PackedLayerOp,
        plan_from_manifest,
    )

    meta = raw.meta
    bits = (int(meta["quantized"]["bits"])
            if meta["kind"] == "quantized" else None)
    packed_ops: dict[int, PackedLayerOp] = {}

    def packed_factory(index: int, bias: np.ndarray | None) -> PackedLayerOp:
        if not 0 <= index < len(raw.layers):
            raise PackedArtifactError(
                f"{path}: plan manifest references packed layer {index} but "
                f"the artifact holds {len(raw.layers)} layers")
        existing = packed_ops.get(index)
        if existing is not None:
            return existing
        packed = raw.layers[index]
        input_quantizer = weight_quantizer = None
        if bits is not None:
            input_quantizer = LinearQuantizer(
                bits=bits, scale=float(raw.quant_arrays["input_scales"][index]))
            weight_quantizer = LinearQuantizer(
                bits=bits, scale=float(raw.quant_arrays["weight_scales"][index]))
        op = PackedLayerOp(
            name=str(meta["layers"][index]["name"]), packed=packed,
            bias=bias, in_channels=packed.original_shape[1],
            input_quantizer=input_quantizer,
            weight_quantizer=weight_quantizer)
        packed_ops[index] = op
        return op

    def load(ref: Any) -> np.ndarray | None:
        if ref is None:
            return None
        # BLAS kernels choose their code path — and with it their float
        # summation order — partly from operand alignment, and a memmap
        # view lands at whatever offset the zip layout dictates.  The
        # manifest's arrays feed the non-batch-invariant matmul paths, so
        # materialize them as ordinary allocations to keep plan forwards
        # bit-identical to the legacy path; the large packed.* arrays
        # stay mapped (they never feed BLAS directly).
        array = np.array(_slice_ref(raw.blobs, ref, path))
        array.setflags(write=False)
        return array

    try:
        root = plan_from_manifest(meta["plan"], packed_factory, load)
    except (KeyError, TypeError, ValueError) as error:
        if isinstance(error, PackedArtifactError):
            raise
        raise PackedArtifactError(
            f"{path}: plan manifest is unreadable: {error}") from error
    missing = [index for index in range(len(raw.layers))
               if index not in packed_ops]
    if missing:
        raise PackedArtifactError(
            f"{path}: plan manifest never references packed layers "
            f"{missing} — the artifact's plan does not cover its data")
    pipeline_config = (PipelineConfig.from_dict(meta["pipeline_config"])
                       if meta["pipeline_config"] is not None else None)
    return ExecutionPlan(
        root=root,
        packed_ops=[packed_ops[index] for index in range(len(raw.layers))],
        kind=str(meta["kind"]),
        array_rows=int(meta["array_rows"]),
        array_cols=int(meta["array_cols"]),
        pipeline_config=pipeline_config,
        bits=bits)


def load_plan(path: str | Path, model: Module | None = None,
              mmap: bool | str = False) -> Any:
    """Load a packed artifact straight into an immutable :class:`ExecutionPlan`.

    The serving cold-start path: V2 model-backed artifacts carry their
    op tree as a manifest, so the plan assembles directly from the
    stored arrays — no nn module graph is ever built, and with
    ``mmap=True`` (or ``"auto"``) the arrays stay shared, read-only
    views into the file.  V1 artifacts (or an explicit ``model``) fall
    back to assembling the model as :func:`load_packed` does and
    compiling it.  Either way the plan's forward is bit-identical to the
    saved model's, quantized artifacts yielding quantized-capable plans.

    Matrix-only artifacts raise :class:`PackedArtifactError` — with no nn
    model state or plan there is nothing forward-capable to build.
    """
    path = Path(path)
    raw = _load_raw(path, mmap=mmap)
    manifest = raw.meta.get("plan")
    if model is None and manifest is not None:
        return _plan_from_artifact(raw, path)
    if model is None and not raw.meta["has_model_state"]:
        raise PackedArtifactError(
            f"{path} holds a matrix-only packing with no nn model state or "
            "plan manifest; serving needs a forward-capable artifact (save "
            "it with model state)")
    assembled = _assemble_model(raw, model, path)
    return assembled.compile_plan()
