"""Column grouping — Algorithm 2 of the paper.

Given a sparse filter matrix, partition its columns into groups of at most
``alpha`` columns such that each group satisfies the limited-conflict
condition (at most ``gamma`` conflicts per row on average).  Columns are
assigned with the *dense-column-first combining policy*: each candidate
column joins the group that yields the densest combined column among the
groups that can legally accept it, which the paper likens to bin-packing
algorithms that place large items first.

Two interchangeable engines implement the greedy assignment:

* ``engine="fast"`` (the default) keeps each group's occupied-row set as a
  packed uint64 bitset (:mod:`repro.combining.bitset`) and scores a
  candidate column against *all* existing groups with one broadcasted
  ``bitwise_and`` + popcount pass.
* ``engine="reference"`` is the straightforward per-group Python loop,
  kept as the executable specification for differential testing.

Both engines produce bit-identical groupings — same group contents, same
ordering, same tie-breaks — for every matrix, policy, and (α, γ) setting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.combining.bitset import pack_columns, popcount, words_for_rows

#: Engines accepted by :func:`group_columns`.
GROUPING_ENGINES = ("fast", "reference")

#: Column consideration orders accepted by :func:`group_columns`.
GROUPING_POLICIES = ("dense-first", "first-fit", "random")

#: With this many open groups or fewer, the fast engine scores candidates
#: with Python-int bitsets instead of broadcasted NumPy calls: at very low
#: densities almost every candidate lands in one of 1-2 open groups, and
#: the fixed per-call overhead of the vectorized scoring would dominate.
_SCALAR_OPEN_GROUP_LIMIT = 2

try:
    _int_bit_count = int.bit_count  # Python >= 3.10
except AttributeError:  # pragma: no cover - exercised only on old Pythons
    def _int_bit_count(value: int) -> int:
        return bin(value).count("1")


@dataclass
class ColumnGrouping:
    """The result of grouping the columns of one filter matrix.

    Attributes
    ----------
    groups:
        List of groups; each group is a list of original column indices in
        the order they were added.
    num_columns:
        Number of columns of the original filter matrix.
    num_rows:
        Number of rows of the original filter matrix.
    alpha / gamma:
        The constraints the grouping was built under.
    """

    groups: list[list[int]]
    num_columns: int
    num_rows: int
    alpha: int
    gamma: float
    policy: str = "dense-first"
    _column_to_group: dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for group_index, group in enumerate(self.groups):
            for column in group:
                if column in seen:
                    raise ValueError(f"column {column} appears in more than one group")
                if not 0 <= column < self.num_columns:
                    raise ValueError(f"column index {column} out of range")
                seen.add(column)
                self._column_to_group[column] = group_index
        if len(seen) != self.num_columns:
            missing = sorted(set(range(self.num_columns)) - seen)
            raise ValueError(f"columns not assigned to any group: {missing[:10]}")

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def group_of(self, column: int) -> int:
        """Index of the group that contains ``column``."""
        return self._column_to_group[column]

    def group_sizes(self) -> list[int]:
        return [len(group) for group in self.groups]

    def as_assignment(self) -> np.ndarray:
        """Array mapping column index -> group index."""
        return group_layout(self)[1].astype(int)


def group_layout(grouping: ColumnGrouping
                 ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Packed flat layout of a grouping, shared by the fast engines.

    Returns ``(flat_columns, assignment, position)`` where ``flat_columns``
    concatenates every group's member columns in group order (the same
    layout :func:`repro.combining.bitset.group_occupancy` consumes),
    ``assignment[column]`` is the column's group index, and
    ``position[column]`` is the column's position within its group's order
    (the tie-break rank of Algorithm 3's first-found-wins loop).
    """
    groups = grouping.groups
    num_columns = grouping.num_columns
    sizes = np.fromiter((len(group) for group in groups), dtype=np.intp,
                        count=len(groups))
    flat_columns = np.fromiter((column for group in groups for column in group),
                               dtype=np.intp, count=num_columns)
    starts = np.zeros(len(groups), dtype=np.intp)
    if len(groups) > 1:
        np.cumsum(sizes[:-1], out=starts[1:])
    group_of = np.repeat(np.arange(len(groups), dtype=np.intp), sizes)
    assignment = np.empty(num_columns, dtype=np.intp)
    assignment[flat_columns] = group_of
    position = np.empty(num_columns, dtype=np.intp)
    position[flat_columns] = np.arange(num_columns, dtype=np.intp) - starts[group_of]
    return flat_columns, assignment, position


def _column_order(matrix: np.ndarray, policy: str,
                  rng: np.random.Generator | None) -> np.ndarray:
    """Order in which ungrouped columns are considered."""
    nonzeros_per_column = np.count_nonzero(matrix != 0, axis=0)
    if policy == "dense-first":
        # Densest columns first (stable for determinism), analogous to
        # placing large items first in bin packing.
        return np.argsort(-nonzeros_per_column, kind="stable")
    if policy == "first-fit":
        return np.arange(matrix.shape[1])
    if policy == "random":
        rng = rng if rng is not None else np.random.default_rng(0)
        return rng.permutation(matrix.shape[1])
    raise ValueError(f"unknown grouping policy {policy!r}")


def _group_columns_reference(nonzero: np.ndarray, alpha: int, gamma: float,
                             order: np.ndarray) -> list[list[int]]:
    """Per-group Python loop: the executable specification of Algorithm 2."""
    num_rows = nonzero.shape[0]
    conflict_budget = gamma * num_rows
    # Densities are union-size / num_rows; guard the degenerate zero-row
    # matrix (every density is 0 there, so any denominator works).
    density_rows = max(num_rows, 1)

    groups: list[list[int]] = []
    # Per-group bookkeeping: rows occupied by at least one nonzero, and the
    # total number of conflicts accumulated so far.
    occupied: list[np.ndarray] = []
    conflicts: list[int] = []

    for column in order:
        column = int(column)
        column_rows = nonzero[:, column]
        best_group = -1
        best_density = -1.0
        best_new_conflicts = 0
        for index, group in enumerate(groups):
            if len(group) >= alpha:
                continue
            new_conflicts = int(np.count_nonzero(occupied[index] & column_rows))
            if conflicts[index] + new_conflicts > conflict_budget:
                continue
            combined_density = np.count_nonzero(occupied[index] | column_rows) / density_rows
            better = combined_density > best_density + 1e-12
            tie = abs(combined_density - best_density) <= 1e-12
            if better or (tie and new_conflicts < best_new_conflicts):
                best_group = index
                best_density = combined_density
                best_new_conflicts = new_conflicts
        if best_group < 0:
            groups.append([column])
            occupied.append(column_rows.copy())
            conflicts.append(0)
        else:
            groups[best_group].append(column)
            conflicts[best_group] += best_new_conflicts
            occupied[best_group] |= column_rows

    return groups


def _group_columns_fast(nonzero: np.ndarray, alpha: int, gamma: float,
                        order: np.ndarray) -> list[list[int]]:
    """Bitset engine: score a candidate against every group in one pass.

    Equivalence with the reference engine rests on densities being exact
    multiples of ``1 / num_rows``: two candidate placements compare "equal
    within 1e-12" iff their combined columns occupy the same number of
    rows, so the reference's tolerance-based scan reduces to an exact
    lexicographic argmax over (union size, -new conflicts) with the lowest
    group index winning remaining ties — which is what this engine computes
    from the popcounts.
    """
    num_rows, _ = nonzero.shape
    if alpha == 1:
        # Every column is its own group; the reference loop opens them in
        # candidate order because no existing group can ever accept.
        return [[int(column)] for column in order]
    conflict_budget = gamma * num_rows
    words = words_for_rows(num_rows)
    column_bits = pack_columns(nonzero)
    column_pops = np.count_nonzero(nonzero, axis=0).astype(np.int64)
    # Lexicographic selection key: maximize the union size first, then
    # minimize the overlap (new conflicts).  Unions and overlaps are both
    # in [0, num_rows], so scaling the union by num_rows + 2 keeps the two
    # components from interfering; argmax picks the first (lowest-id)
    # maximum, matching the reference scan's tie-break.  The key for a
    # candidate against one group is ``union * scale - overlap`` where
    # ``union = group_pop + column_pop - overlap``; the per-group part
    # ``group_pop * scale`` is maintained incrementally as ``pops_scaled``.
    union_scale = num_rows + 2
    overlap_scale = union_scale + 1

    groups: list[list[int]] = []
    # Only groups that can still accept a column (size < alpha) are scored.
    # The active arrays hold them packed in group-id order: ``active_ids``
    # maps array rows back to group ids, and a group's row is shifted out
    # once the group reaches alpha columns.  ``occupied_ints`` mirrors the
    # ``occupied`` bitset rows as arbitrary-precision Python ints so the
    # scalar micro-path below can score 1-2 open groups without any NumPy
    # call overhead.
    active_ids: list[int] = []
    occupied_ints: list[int] = []
    capacity = 16
    occupied = np.zeros((capacity, words), dtype=np.uint64)
    pops_scaled = np.zeros(capacity, dtype=np.int64)
    conflicts = np.zeros(capacity, dtype=np.int64)
    sizes = np.zeros(capacity, dtype=np.int64)

    for column in order:
        column = int(column)
        bits = column_bits[column]
        column_int = int.from_bytes(bits.tobytes(), "little")
        column_pop = int(column_pops[column])
        num_active = len(active_ids)
        best_position = -1
        best_overlap = 0
        if 0 < num_active <= _SCALAR_OPEN_GROUP_LIMIT:
            # Scalar micro-path: with so few open groups the broadcasted
            # scoring pass is all fixed overhead, so score them with plain
            # Python-int bit operations instead (same key, same
            # lowest-position tie-break as the argmax below).
            best_key = -1
            for position in range(num_active):
                overlap = _int_bit_count(occupied_ints[position] & column_int)
                if int(conflicts[position]) + overlap > conflict_budget:
                    continue
                key = (int(pops_scaled[position])
                       + column_pop * union_scale - overlap * overlap_scale)
                if key > best_key:
                    best_key = key
                    best_position = position
                    best_overlap = overlap
        elif num_active:
            overlaps = popcount(occupied[:num_active] & bits)
            keys = np.where(
                conflicts[:num_active] + overlaps <= conflict_budget,
                pops_scaled[:num_active] + (column_pop * union_scale - overlaps * overlap_scale),
                -1,
            )
            position = int(np.argmax(keys))
            if keys[position] >= 0:
                best_position = position
                best_overlap = int(overlaps[position])
        if best_position < 0:
            if num_active == capacity:
                capacity *= 2
                occupied = np.concatenate([occupied, np.zeros_like(occupied)])
                pops_scaled = np.concatenate([pops_scaled, np.zeros_like(pops_scaled)])
                conflicts = np.concatenate([conflicts, np.zeros_like(conflicts)])
                sizes = np.concatenate([sizes, np.zeros_like(sizes)])
            groups.append([column])
            active_ids.append(len(groups) - 1)
            occupied_ints.append(column_int)
            occupied[num_active] = bits
            pops_scaled[num_active] = column_pop * union_scale
            conflicts[num_active] = 0
            sizes[num_active] = 1
        else:
            groups[active_ids[best_position]].append(column)
            conflicts[best_position] += best_overlap
            occupied[best_position] |= bits
            occupied_ints[best_position] |= column_int
            pops_scaled[best_position] += (column_pop - best_overlap) * union_scale
            sizes[best_position] += 1
            if sizes[best_position] == alpha:
                # Retire the full group, keeping the active rows packed in
                # group-id order so argmax ties keep resolving to the
                # lowest group id.
                tail = slice(best_position, num_active - 1)
                shifted = slice(best_position + 1, num_active)
                occupied[tail] = occupied[shifted]
                pops_scaled[tail] = pops_scaled[shifted]
                conflicts[tail] = conflicts[shifted]
                sizes[tail] = sizes[shifted]
                active_ids.pop(best_position)
                occupied_ints.pop(best_position)

    return groups


_ENGINES = {
    "fast": _group_columns_fast,
    "reference": _group_columns_reference,
}


def group_columns(matrix: np.ndarray, alpha: int = 8, gamma: float = 0.5,
                  policy: str = "dense-first",
                  rng: np.random.Generator | None = None,
                  engine: str = "fast") -> ColumnGrouping:
    """Partition the columns of ``matrix`` into combinable groups (Algorithm 2).

    Parameters
    ----------
    matrix:
        The (N x M) sparse filter matrix of a convolutional layer.
    alpha:
        Maximum number of columns per group (degree of MX-cell multiplexing).
    gamma:
        Maximum average number of conflicts per row allowed within a group.
        ``gamma = 0`` forbids conflicts entirely.
    policy:
        Column consideration order: ``"dense-first"`` (the paper's policy),
        ``"first-fit"``, or ``"random"`` (used by the grouping ablation).
    rng:
        Only used by the ``"random"`` policy.
    engine:
        ``"fast"`` (default) for the vectorized bitset engine, or
        ``"reference"`` for the per-group Python loop.  The two produce
        identical groupings; the reference engine exists as the executable
        specification for differential testing.

    Returns
    -------
    :class:`ColumnGrouping` assigning every column to exactly one group,
    where every group has at most ``alpha`` columns and at most
    ``gamma * N`` total conflicts.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    if alpha < 1:
        raise ValueError("alpha must be >= 1")
    if gamma < 0:
        raise ValueError("gamma must be non-negative")
    if engine not in _ENGINES:
        raise ValueError(
            f"unknown grouping engine {engine!r}; expected one of {GROUPING_ENGINES}")
    num_rows, num_columns = matrix.shape
    if num_columns == 0:
        return ColumnGrouping([], 0, num_rows, alpha, gamma, policy)

    nonzero = matrix != 0
    order = _column_order(matrix, policy, rng)
    groups = _ENGINES[engine](nonzero, alpha, gamma, order)
    return ColumnGrouping(groups, num_columns, num_rows, alpha, gamma, policy)
