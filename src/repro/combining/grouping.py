"""Column grouping — Algorithm 2 of the paper.

Given a sparse filter matrix, partition its columns into groups of at most
``alpha`` columns such that each group satisfies the limited-conflict
condition (at most ``gamma`` conflicts per row on average).  Columns are
assigned with the *dense-column-first combining policy*: each candidate
column joins the group that yields the densest combined column among the
groups that can legally accept it, which the paper likens to bin-packing
algorithms that place large items first.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ColumnGrouping:
    """The result of grouping the columns of one filter matrix.

    Attributes
    ----------
    groups:
        List of groups; each group is a list of original column indices in
        the order they were added.
    num_columns:
        Number of columns of the original filter matrix.
    num_rows:
        Number of rows of the original filter matrix.
    alpha / gamma:
        The constraints the grouping was built under.
    """

    groups: list[list[int]]
    num_columns: int
    num_rows: int
    alpha: int
    gamma: float
    policy: str = "dense-first"
    _column_to_group: dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        seen: set[int] = set()
        for group_index, group in enumerate(self.groups):
            for column in group:
                if column in seen:
                    raise ValueError(f"column {column} appears in more than one group")
                if not 0 <= column < self.num_columns:
                    raise ValueError(f"column index {column} out of range")
                seen.add(column)
                self._column_to_group[column] = group_index
        if len(seen) != self.num_columns:
            missing = sorted(set(range(self.num_columns)) - seen)
            raise ValueError(f"columns not assigned to any group: {missing[:10]}")

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def group_of(self, column: int) -> int:
        """Index of the group that contains ``column``."""
        return self._column_to_group[column]

    def group_sizes(self) -> list[int]:
        return [len(group) for group in self.groups]

    def as_assignment(self) -> np.ndarray:
        """Array mapping column index -> group index."""
        assignment = np.empty(self.num_columns, dtype=int)
        for column, group in self._column_to_group.items():
            assignment[column] = group
        return assignment


def _column_order(matrix: np.ndarray, policy: str,
                  rng: np.random.Generator | None) -> np.ndarray:
    """Order in which ungrouped columns are considered."""
    nonzeros_per_column = np.count_nonzero(matrix != 0, axis=0)
    if policy == "dense-first":
        # Densest columns first (stable for determinism), analogous to
        # placing large items first in bin packing.
        return np.argsort(-nonzeros_per_column, kind="stable")
    if policy == "first-fit":
        return np.arange(matrix.shape[1])
    if policy == "random":
        rng = rng if rng is not None else np.random.default_rng(0)
        return rng.permutation(matrix.shape[1])
    raise ValueError(f"unknown grouping policy {policy!r}")


def group_columns(matrix: np.ndarray, alpha: int = 8, gamma: float = 0.5,
                  policy: str = "dense-first",
                  rng: np.random.Generator | None = None) -> ColumnGrouping:
    """Partition the columns of ``matrix`` into combinable groups (Algorithm 2).

    Parameters
    ----------
    matrix:
        The (N x M) sparse filter matrix of a convolutional layer.
    alpha:
        Maximum number of columns per group (degree of MX-cell multiplexing).
    gamma:
        Maximum average number of conflicts per row allowed within a group.
        ``gamma = 0`` forbids conflicts entirely.
    policy:
        Column consideration order: ``"dense-first"`` (the paper's policy),
        ``"first-fit"``, or ``"random"`` (used by the grouping ablation).
    rng:
        Only used by the ``"random"`` policy.

    Returns
    -------
    :class:`ColumnGrouping` assigning every column to exactly one group,
    where every group has at most ``alpha`` columns and at most
    ``gamma * N`` total conflicts.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    if alpha < 1:
        raise ValueError("alpha must be >= 1")
    if gamma < 0:
        raise ValueError("gamma must be non-negative")
    num_rows, num_columns = matrix.shape
    if num_columns == 0:
        return ColumnGrouping([], 0, num_rows, alpha, gamma, policy)

    nonzero = matrix != 0
    conflict_budget = gamma * num_rows

    groups: list[list[int]] = []
    # Per-group bookkeeping: rows occupied by at least one nonzero, and the
    # total number of conflicts accumulated so far.
    occupied: list[np.ndarray] = []
    conflicts: list[int] = []

    for column in _column_order(matrix, policy, rng):
        column = int(column)
        column_rows = nonzero[:, column]
        best_group = -1
        best_density = -1.0
        best_new_conflicts = 0
        for index, group in enumerate(groups):
            if len(group) >= alpha:
                continue
            new_conflicts = int(np.count_nonzero(occupied[index] & column_rows))
            if conflicts[index] + new_conflicts > conflict_budget:
                continue
            combined_density = np.count_nonzero(occupied[index] | column_rows) / num_rows
            better = combined_density > best_density + 1e-12
            tie = abs(combined_density - best_density) <= 1e-12
            if better or (tie and new_conflicts < best_new_conflicts):
                best_group = index
                best_density = combined_density
                best_new_conflicts = new_conflicts
        if best_group < 0:
            groups.append([column])
            occupied.append(column_rows.copy())
            conflicts.append(0)
        else:
            groups[best_group].append(column)
            conflicts[best_group] += best_new_conflicts
            occupied[best_group] |= column_rows

    return ColumnGrouping(groups, num_columns, num_rows, alpha, gamma, policy)
