"""Immutable execution plans: packed inference without module-graph mutation.

:meth:`~repro.combining.inference.PackedModel.forward` executes by
*mutating* the shared nn module graph — installing forward overrides and
swapping ``weight.data``, then restoring — which forces per-model locks
wherever the same model serves concurrent traffic.  An
:class:`ExecutionPlan` is the mutation-free alternative: a read-only,
picklable op tree compiled **once** from a
:class:`~repro.combining.inference.PackedModel` (or its quantized twin)
that owns private copies of everything a forward needs — packed filter
matrices and channel routing, dense/batch-norm/shift parameters, frozen
calibration scales — so any number of threads or processes can call
:meth:`ExecutionPlan.forward` concurrently without touching the source
model, and without locks.

Bit-identity contract
---------------------

``plan.forward(x, mode=m, batch_invariant=b)`` is **bit-identical** to the
legacy mutating path (``PackedModel.forward(x, mode=m, batch_invariant=b)``
and ``QuantizedPackedModel.forward(x, batch_invariant=b)`` for
``mode="quantized"``) for every supported combination: each op replicates
the exact arithmetic — including einsum ``optimize`` flags, reduction
orders, and validation messages — of the module (or forward override) it
replaces.  The differential suite in ``tests/test_combining_plan.py`` pins
this per model family, mode, and engine combination.

Plans are also the serving-side unit of residency: they pickle cleanly
into worker processes (:mod:`repro.serving.procpool`) and deserialize
straight out of V2 packed artifacts without reconstructing the nn model
(:func:`repro.combining.serialization.load_plan`), via the manifest
helpers :func:`manifest_from_plan` / :func:`plan_from_manifest`.

Usage::

    packed = PackedModel.from_model(model, PipelineConfig(alpha=8, gamma=0.5))
    plan = packed.compile_plan()
    outputs = plan.forward(images, batch_invariant=True)   # no locks needed
    assert np.array_equal(outputs, packed.forward(images, batch_invariant=True))
"""

from __future__ import annotations

from time import perf_counter_ns
from typing import Any, Callable, Sequence

import numpy as np

from repro.combining.kernels import (
    DEFAULT_KERNEL,
    invariant_conv_pointwise,
    invariant_matmul,
    validate_kernel,
)
from repro.combining.packing import PackedFilterMatrix
from repro.models.lenet import LeNet5
from repro.models.resnet import BasicBlock, ResNet20, _StridedPointwiseShortcut
from repro.models.vgg import VGG
from repro.nn.layers import (
    SHIFT_DIRECTIONS,
    AvgPool2d,
    BatchNorm2d,
    Dense,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    MaxPool2d,
    PointwiseConv2d,
    ReLU,
    Shift2d,
    ShiftConv2d,
)
from repro.nn.module import Module, Sequential
from repro.quant.linear import LinearQuantizer
from repro.systolic.array import ArrayConfig
from repro.systolic.system import ModelExecutionPlan, SystolicSystem

#: Forward modes an :class:`ExecutionPlan` can support (``"quantized"``
#: requires the plan to carry frozen calibration scales).
PLAN_MODES: tuple[str, ...] = ("exact", "mx", "quantized")


class _Ctx:
    """Per-forward execution context threaded through the op tree.

    Holds the knobs every op dispatches on (``mode``,
    ``batch_invariant``, the batch-invariant ``kernel``), the optional
    per-layer spatial-size recorder (``observed``), the optional
    per-layer wall-time recorder (``profile``, integer nanoseconds per
    packed layer name), and — for quantized plans — the
    :class:`~repro.systolic.system.SystolicSystem` that runs the integer
    packed layers.  One ``_Ctx`` is built per ``forward`` call, so
    concurrent forwards on one plan never share mutable state.
    """

    __slots__ = ("mode", "batch_invariant", "observed", "system", "kernel",
                 "profile")

    def __init__(self, mode: str, batch_invariant: bool,
                 observed: dict[str, tuple[int, int]] | None,
                 system: SystolicSystem | None,
                 kernel: str = DEFAULT_KERNEL,
                 profile: dict[str, int] | None = None):
        self.mode = mode
        self.batch_invariant = batch_invariant
        self.observed = observed
        self.system = system
        self.kernel = kernel
        self.profile = profile


def _frozen(array: np.ndarray) -> np.ndarray:
    """A private, read-only copy decoupled from the source model."""
    copy = np.ascontiguousarray(array).copy()
    copy.setflags(write=False)
    return copy


# -- ops ----------------------------------------------------------------------
class SequenceOp:
    """Run child ops in order (the plan twin of :class:`Sequential`)."""

    def __init__(self, ops: tuple):
        self.ops = tuple(ops)

    def apply(self, x: np.ndarray, ctx: _Ctx) -> np.ndarray:
        for op in self.ops:
            x = op.apply(x, ctx)
        return x


class ResidualOp:
    """Residual block: ``relu(main(x) + shortcut(x))`` (identity shortcut
    when ``shortcut`` is ``None``), matching :meth:`BasicBlock.forward`."""

    def __init__(self, main: SequenceOp, shortcut: Any | None):
        self.main = main
        self.shortcut = shortcut

    def apply(self, x: np.ndarray, ctx: _Ctx) -> np.ndarray:
        out = self.main.apply(x, ctx)
        residual = self.shortcut.apply(x, ctx) if self.shortcut is not None else x
        total = out + residual
        return np.where(total > 0, total, 0.0)


class PackedLayerOp:
    """One packed pointwise layer, executed per the context's mode.

    Owns a private :class:`~repro.combining.packing.PackedFilterMatrix`
    (weights and routing read-only) plus the optional bias and — on
    quantized plans — the layer's frozen quantizer pair.  The dense
    realization for exact mode is computed lazily and cached; the benign
    race of two threads realizing concurrently produces identical arrays.
    """

    def __init__(self, name: str, packed: PackedFilterMatrix,
                 bias: np.ndarray | None, in_channels: int,
                 input_quantizer: LinearQuantizer | None = None,
                 weight_quantizer: LinearQuantizer | None = None):
        self.name = name
        self.packed = packed
        self.bias = bias
        self.in_channels = in_channels
        self.input_quantizer = input_quantizer
        self.weight_quantizer = weight_quantizer
        self._realized: np.ndarray | None = None

    def realized(self) -> np.ndarray:
        dense = self._realized
        if dense is None:
            dense = self.packed.to_sparse()
            dense.setflags(write=False)
            self._realized = dense
        return dense

    def apply(self, x: np.ndarray, ctx: _Ctx) -> np.ndarray:
        if ctx.profile is None:
            return self._apply(x, ctx)
        # Wrapping only: the timed call is the same call, so a profiled
        # forward's arrays are bit-identical to an unprofiled forward's.
        started = perf_counter_ns()
        out = self._apply(x, ctx)
        elapsed = perf_counter_ns() - started
        ctx.profile[self.name] = ctx.profile.get(self.name, 0) + elapsed
        return out

    def _apply(self, x: np.ndarray, ctx: _Ctx) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"PointwiseConv2d expected (batch, {self.in_channels}, H, W), "
                f"got {x.shape}")
        if ctx.observed is not None:
            ctx.observed[self.name] = (x.shape[2], x.shape[3])
        if ctx.mode == "quantized":
            assert ctx.system is not None
            out, _ = ctx.system.run_layer(
                self.packed, x, apply_shift=False, apply_relu=False,
                input_quantizer=self.input_quantizer,
                weight_quantizer=self.weight_quantizer)
        elif ctx.mode == "mx":
            out = self.packed.multiply_activations(x)
        elif ctx.batch_invariant:
            out = invariant_conv_pointwise(x, self.realized(), kernel=ctx.kernel)
        else:
            out = np.einsum("nc,bchw->bnhw", self.realized(), x, optimize=True)
        if self.bias is not None:
            out = out + self.bias[None, :, None, None]
        return out

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_realized"] = None  # re-realized lazily after unpickling
        return state


class PointwiseOp:
    """A non-packed 1x1 convolution (einsum BLAS / shape-stable twins)."""

    def __init__(self, weight: np.ndarray, bias: np.ndarray | None,
                 in_channels: int):
        self.weight = weight
        self.bias = bias
        self.in_channels = in_channels

    def apply(self, x: np.ndarray, ctx: _Ctx) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"PointwiseConv2d expected (batch, {self.in_channels}, H, W), "
                f"got {x.shape}")
        if ctx.batch_invariant:
            out = invariant_conv_pointwise(x, self.weight, kernel=ctx.kernel)
        else:
            out = np.einsum("nc,bchw->bnhw", self.weight, x, optimize=True)
        if self.bias is not None:
            out = out + self.bias[None, :, None, None]
        return out


class DenseOp:
    """Fully connected layer (BLAS matmul / batch-invariant einsum twin)."""

    def __init__(self, weight: np.ndarray, bias: np.ndarray | None,
                 in_features: int):
        self.weight = weight
        self.bias = bias
        self.in_features = in_features

    def apply(self, x: np.ndarray, ctx: _Ctx) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ValueError(
                f"Dense expected input of shape (batch, {self.in_features}), "
                f"got {x.shape}")
        if ctx.batch_invariant:
            out = invariant_matmul(x, self.weight, kernel=ctx.kernel)
        else:
            out = x @ self.weight.T
        if self.bias is not None:
            out = out + self.bias
        return out


class ShiftOp:
    """Parameter-free per-channel spatial shift (:class:`Shift2d` twin)."""

    def __init__(self, assignment: np.ndarray, channels: int):
        self.assignment = assignment
        self.channels = channels

    def apply(self, x: np.ndarray, ctx: _Ctx) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ValueError(
                f"Shift2d expected (batch, {self.channels}, H, W), got {x.shape}")
        out = np.empty_like(x)
        for c in range(self.channels):
            dy, dx = SHIFT_DIRECTIONS[self.assignment[c]]
            out[:, c] = Shift2d._shift_channel(x[:, c], dy, dx)
        return out


class BatchNormOp:
    """Eval-mode batch norm over frozen running statistics."""

    def __init__(self, mean: np.ndarray, var: np.ndarray, gamma: np.ndarray,
                 beta: np.ndarray, eps: float, channels: int):
        self.mean = mean
        self.var = var
        self.gamma = gamma
        self.beta = beta
        self.eps = eps
        self.channels = channels

    def apply(self, x: np.ndarray, ctx: _Ctx) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.channels:
            raise ValueError(
                f"BatchNorm2d expected (batch, {self.channels}, H, W), "
                f"got {x.shape}")
        inv_std = 1.0 / np.sqrt(self.var + self.eps)
        x_hat = (x - self.mean[None, :, None, None]) * inv_std[None, :, None, None]
        return self.gamma[None, :, None, None] * x_hat + self.beta[None, :, None, None]


class ReluOp:
    def apply(self, x: np.ndarray, ctx: _Ctx) -> np.ndarray:
        return np.where(x > 0, x, 0.0)


class IdentityOp:
    def apply(self, x: np.ndarray, ctx: _Ctx) -> np.ndarray:
        return x


class FlattenOp:
    def apply(self, x: np.ndarray, ctx: _Ctx) -> np.ndarray:
        return x.reshape(x.shape[0], -1)


class AvgPoolOp:
    def __init__(self, kernel: int):
        self.kernel = kernel

    def apply(self, x: np.ndarray, ctx: _Ctx) -> np.ndarray:
        k = self.kernel
        batch, channels, height, width = x.shape
        if height % k or width % k:
            raise ValueError(
                f"spatial dims {height}x{width} not divisible by kernel {k}")
        return x.reshape(batch, channels, height // k, k, width // k, k).mean(axis=(3, 5))


class MaxPoolOp:
    def __init__(self, kernel: int):
        self.kernel = kernel

    def apply(self, x: np.ndarray, ctx: _Ctx) -> np.ndarray:
        k = self.kernel
        batch, channels, height, width = x.shape
        if height % k or width % k:
            raise ValueError(
                f"spatial dims {height}x{width} not divisible by kernel {k}")
        windows = x.reshape(batch, channels, height // k, k, width // k, k)
        return windows.max(axis=(3, 5))


class GlobalAvgPoolOp:
    def apply(self, x: np.ndarray, ctx: _Ctx) -> np.ndarray:
        return x.mean(axis=(2, 3))


class StrideOp:
    """Spatial subsampling after a strided shift convolution / shortcut."""

    def __init__(self, stride: int):
        self.stride = stride

    def apply(self, x: np.ndarray, ctx: _Ctx) -> np.ndarray:
        return x[:, :, :: self.stride, :: self.stride]


# -- the plan -----------------------------------------------------------------
class ExecutionPlan:
    """A compiled, immutable, picklable forward pass over packed layers.

    Treat instances as read-only: every array is a private copy (or a
    read-only artifact view) and nothing in :meth:`forward` writes
    instance state, which is what makes one plan safe to share across
    threads and cheap to ship to worker processes.  ``bits`` is set for
    quantized-capable plans; they carry a
    :class:`~repro.systolic.system.SystolicSystem` configured like the
    :class:`~repro.combining.quantized.QuantizedPackedModel` they came
    from, so quantized outputs and cycle accounting match it exactly.
    """

    def __init__(self, root: Any, packed_ops: Sequence[PackedLayerOp],
                 kind: str, array_rows: int, array_cols: int,
                 pipeline_config: Any | None = None,
                 bits: int | None = None,
                 array_config: ArrayConfig | None = None):
        self.root = root
        self.packed_ops = tuple(packed_ops)
        self.kind = kind
        self.array_rows = array_rows
        self.array_cols = array_cols
        self.pipeline_config = pipeline_config
        self.bits = bits
        if bits is not None and array_config is None:
            array_config = ArrayConfig(
                rows=array_rows, cols=array_cols, input_bits=bits,
                alpha=max(1, self.multiplexing_degree()))
        self.array_config = array_config
        self.system = (SystolicSystem(array_config) if bits is not None
                       else None)

    # -- introspection -------------------------------------------------------
    @property
    def modes(self) -> tuple[str, ...]:
        """Forward modes this plan supports (frozen scales gate quantized)."""
        return ("exact", "mx", "quantized") if self.bits is not None \
            else ("exact", "mx")

    @property
    def num_layers(self) -> int:
        return len(self.packed_ops)

    def layer_names(self) -> list[str]:
        return [op.name for op in self.packed_ops]

    def packed_layers(self) -> list[tuple[str, PackedFilterMatrix]]:
        """``(name, packed)`` pairs in layer order (the planners' shape)."""
        return [(op.name, op.packed) for op in self.packed_ops]

    def multiplexing_degree(self) -> int:
        degrees = [op.packed.multiplexing_degree() for op in self.packed_ops]
        return max(degrees) if degrees else 0

    # -- execution -----------------------------------------------------------
    def forward(self, activations: np.ndarray, mode: str = "exact",
                batch_size: int | None = None, batch_invariant: bool = False,
                observed: dict[str, tuple[int, int]] | None = None,
                kernel: str = DEFAULT_KERNEL,
                profile: dict[str, int] | None = None) -> np.ndarray:
        """Run a batched forward pass; bit-identical to the legacy path.

        Mirrors :meth:`PackedModel.forward`'s contract (``mode``,
        ``batch_size`` chunking, ``batch_invariant`` numerics) plus
        ``mode="quantized"`` on quantized-capable plans (bit-identical to
        :meth:`QuantizedPackedModel.forward`).  ``kernel`` selects the
        batch-invariant implementation (see
        :mod:`repro.combining.kernels`); it only affects
        ``batch_invariant=True`` forwards.  Because plans are immutable
        there is no instance-level spatial record; pass a dict as
        ``observed`` to collect each packed layer's (H, W) for
        :meth:`execution_plan`.

        ``profile`` opts into per-layer wall-time accounting: pass a
        dict and each packed layer op accumulates its execution time
        into it, keyed by layer name, in **integer nanoseconds**
        (exact accumulation across ``batch_size`` chunks and across
        merges — see :mod:`repro.obs.metrics`).  Profiling wraps the
        layer call with two perf-counter reads and changes nothing
        else: a profiled forward returns bit-identical arrays to an
        unprofiled one, which the obs test suite pins per mode.
        """
        if mode not in self.modes:
            raise ValueError(f"unknown forward mode {mode!r}; this plan "
                             f"supports {self.modes}")
        validate_kernel(kernel)
        from repro.combining.inference import split_activation_batch
        chunks = split_activation_batch(activations, batch_size)
        ctx = _Ctx(mode, batch_invariant, observed, self.system, kernel,
                   profile)
        outputs = [self.root.apply(chunk, ctx) for chunk in chunks]
        return outputs[0] if len(outputs) == 1 else np.concatenate(outputs, axis=0)

    def predict(self, activations: np.ndarray, mode: str = "exact",
                batch_size: int | None = None,
                batch_invariant: bool = False,
                kernel: str = DEFAULT_KERNEL) -> np.ndarray:
        """Class predictions; accepts a bare ``(C, H, W)`` sample too."""
        from repro.combining.inference import ensure_sample_batch
        batch, unbatched = ensure_sample_batch(activations)
        predictions = np.argmax(
            self.forward(batch, mode=mode, batch_size=batch_size,
                         batch_invariant=batch_invariant, kernel=kernel),
            axis=1)
        return predictions[0] if unbatched else predictions

    # -- cycle / tile accounting ---------------------------------------------
    def execution_plan(self, observed: dict[str, tuple[int, int]] | None = None,
                       spatial_sizes: Sequence[int] | None = None,
                       batch: int = 1,
                       array_config: ArrayConfig | None = None
                       ) -> ModelExecutionPlan:
        """Plan the model on the systolic timing model (stateless).

        The plan twin of :meth:`PackedModel.plan` /
        :meth:`QuantizedPackedModel.plan`: spatial sizes come from an
        ``observed`` map collected by :meth:`forward` (or explicit
        ``spatial_sizes``); the default array configuration matches the
        source model's, so cycle totals are identical to the legacy path.
        """
        if spatial_sizes is None:
            if observed is None or any(op.name not in observed
                                       for op in self.packed_ops):
                raise RuntimeError(
                    "no spatial sizes available; pass the observed map from "
                    "forward(..., observed={}) or spatial_sizes explicitly")
            sizes: list[int] = []
            for op in self.packed_ops:
                height, width = observed[op.name]
                if height != width:
                    raise ValueError(
                        f"layer {op.name!r} saw a non-square {height}x{width} "
                        "activation map; pass spatial_sizes explicitly")
                sizes.append(height)
            spatial_sizes = sizes
        if array_config is None:
            if self.array_config is not None:
                array_config = self.array_config
            else:
                array_config = ArrayConfig(
                    rows=self.array_rows, cols=self.array_cols,
                    alpha=max(1, self.multiplexing_degree()))
        system = (self.system if self.system is not None
                  and array_config is self.array_config
                  else SystolicSystem(array_config))
        return system.plan_model(self.packed_layers(), list(spatial_sizes),
                                 batch=batch)


# -- compilation --------------------------------------------------------------
class _CompileState:
    """Per-compilation bookkeeping: packed ops by module identity."""

    def __init__(self) -> None:
        self.packed: dict[int, PackedLayerOp] = {}
        self.used: set[int] = set()


_MODULE_COMPILERS: dict[type, Callable[[Module, _CompileState], Any]] = {}


def register_plan_compiler(module_type: type):
    """Register a plan-compilation handler for a :class:`Module` subclass.

    The handler receives ``(module, state)`` and returns an op; lookup
    walks the module's MRO, so registering a base class covers subclasses
    without their own handler.  This is the extension point new model
    families plug into.
    """
    def decorator(handler: Callable[[Module, _CompileState], Any]):
        _MODULE_COMPILERS[module_type] = handler
        return handler
    return decorator


def _compile_module(module: Module, state: _CompileState) -> Any:
    for klass in type(module).__mro__:
        handler = _MODULE_COMPILERS.get(klass)
        if handler is not None:
            return handler(module, state)
    raise TypeError(
        f"no plan compiler registered for module type "
        f"{type(module).__name__}; register one with "
        "repro.combining.execplan.register_plan_compiler")


@register_plan_compiler(Sequential)
def _compile_sequential(module: Sequential, state: _CompileState) -> Any:
    return SequenceOp(tuple(_compile_module(child, state) for child in module))


@register_plan_compiler(Shift2d)
def _compile_shift(module: Shift2d, state: _CompileState) -> Any:
    return ShiftOp(_frozen(module.assignment), module.channels)


@register_plan_compiler(PointwiseConv2d)
def _compile_pointwise(module: PointwiseConv2d, state: _CompileState) -> Any:
    packed_op = state.packed.get(id(module))
    if packed_op is not None:
        state.used.add(id(module))
        return packed_op
    bias = None if module.bias is None else _frozen(module.bias.data)
    return PointwiseOp(_frozen(module.weight.data), bias, module.in_channels)


@register_plan_compiler(ShiftConv2d)
def _compile_shiftconv(module: ShiftConv2d, state: _CompileState) -> Any:
    ops = [_compile_module(module.shift, state),
           _compile_module(module.pointwise, state)]
    if module.stride > 1:
        ops.append(StrideOp(module.stride))
    return SequenceOp(tuple(ops))


@register_plan_compiler(_StridedPointwiseShortcut)
def _compile_shortcut(module: _StridedPointwiseShortcut,
                      state: _CompileState) -> Any:
    ops = [_compile_module(module.pointwise, state)]
    if module.stride > 1:
        ops.append(StrideOp(module.stride))
    return SequenceOp(tuple(ops))


@register_plan_compiler(Dense)
def _compile_dense(module: Dense, state: _CompileState) -> Any:
    bias = None if module.bias is None else _frozen(module.bias.data)
    return DenseOp(_frozen(module.weight.data), bias, module.in_features)


@register_plan_compiler(BatchNorm2d)
def _compile_batchnorm(module: BatchNorm2d, state: _CompileState) -> Any:
    return BatchNormOp(_frozen(module.running_mean), _frozen(module.running_var),
                       _frozen(module.gamma.data), _frozen(module.beta.data),
                       module.eps, module.channels)


@register_plan_compiler(ReLU)
def _compile_relu(module: ReLU, state: _CompileState) -> Any:
    return ReluOp()


@register_plan_compiler(Identity)
def _compile_identity(module: Identity, state: _CompileState) -> Any:
    return IdentityOp()


@register_plan_compiler(Dropout)
def _compile_dropout(module: Dropout, state: _CompileState) -> Any:
    return IdentityOp()  # plans execute eval-mode semantics


@register_plan_compiler(Flatten)
def _compile_flatten(module: Flatten, state: _CompileState) -> Any:
    return FlattenOp()


@register_plan_compiler(AvgPool2d)
def _compile_avgpool(module: AvgPool2d, state: _CompileState) -> Any:
    return AvgPoolOp(module.kernel)


@register_plan_compiler(MaxPool2d)
def _compile_maxpool(module: MaxPool2d, state: _CompileState) -> Any:
    return MaxPoolOp(module.kernel)


@register_plan_compiler(GlobalAvgPool2d)
def _compile_globalpool(module: GlobalAvgPool2d, state: _CompileState) -> Any:
    return GlobalAvgPoolOp()


@register_plan_compiler(BasicBlock)
def _compile_basic_block(module: BasicBlock, state: _CompileState) -> Any:
    main = SequenceOp((
        _compile_module(module.conv1, state),
        _compile_module(module.bn1, state),
        _compile_module(module.relu1, state),
        _compile_module(module.conv2, state),
        _compile_module(module.bn2, state),
    ))
    shortcut = (_compile_module(module.shortcut, state)
                if module.shortcut is not None else None)
    return ResidualOp(main, shortcut)


@register_plan_compiler(LeNet5)
def _compile_lenet(module: LeNet5, state: _CompileState) -> Any:
    return SequenceOp((_compile_module(module.features, state),
                       _compile_module(module.classifier, state)))


@register_plan_compiler(VGG)
def _compile_vgg(module: VGG, state: _CompileState) -> Any:
    return SequenceOp((_compile_module(module.features, state),
                       _compile_module(module.pool, state),
                       _compile_module(module.classifier, state)))


@register_plan_compiler(ResNet20)
def _compile_resnet(module: ResNet20, state: _CompileState) -> Any:
    return SequenceOp((_compile_module(module.stem, state),
                       _compile_module(module.stem_bn, state),
                       _compile_module(module.stem_relu, state),
                       _compile_module(module.blocks, state),
                       _compile_module(module.pool, state),
                       _compile_module(module.classifier, state)))


def _copy_packed(packed: PackedFilterMatrix) -> PackedFilterMatrix:
    """A private packed matrix whose arrays the plan owns (read-only)."""
    copy = PackedFilterMatrix(
        weights=packed.weights.copy(),
        channel_index=packed.channel_index.copy(),
        grouping=packed.grouping,
        original_shape=packed.original_shape)
    copy.weights.setflags(write=False)
    copy.channel_index.setflags(write=False)
    return copy


def compile_plan(packed_model: Any,
                 quantizers: dict[str, tuple[LinearQuantizer,
                                             LinearQuantizer]] | None = None,
                 bits: int | None = None,
                 array_config: ArrayConfig | None = None) -> ExecutionPlan:
    """Compile a model-backed :class:`PackedModel` into an :class:`ExecutionPlan`.

    ``quantizers`` maps layer names to frozen ``(input, weight)``
    quantizer pairs and — together with ``bits`` — makes the plan
    quantized-capable; both come from
    :meth:`QuantizedPackedModel.compile_plan`, the usual entry point.
    The compilation snapshots the model's *current* state (weights,
    batch-norm statistics, packed matrices); later training or repacking
    does not affect the plan.
    """
    model = packed_model.model
    if model is None:
        raise RuntimeError(
            "this PackedModel was assembled without an nn model; "
            "compile_plan needs one (use from_model or pass model=...)")
    if (bits is None) != (quantizers is None):
        raise ValueError("bits and quantizers must be given together")
    state = _CompileState()
    packed_ops: list[PackedLayerOp] = []
    for spec in packed_model.specs:
        module = spec.module
        assert module is not None
        pair = quantizers.get(spec.name) if quantizers is not None else None
        if quantizers is not None and pair is None:
            raise ValueError(f"no quantizers supplied for packed layer "
                             f"{spec.name!r}")
        op = PackedLayerOp(
            name=spec.name,
            packed=_copy_packed(spec.packed),
            bias=None if module.bias is None else _frozen(module.bias.data),
            in_channels=module.in_channels,
            input_quantizer=pair[0] if pair is not None else None,
            weight_quantizer=pair[1] if pair is not None else None)
        packed_ops.append(op)
        state.packed[id(module)] = op
    root = _compile_module(model, state)
    missing = [spec.name for spec in packed_model.specs
               if id(spec.module) not in state.used]
    if missing:
        raise ValueError(
            f"plan compilation never reached packed layers {missing}; the "
            "model's compiler handlers do not cover its packable modules")
    return ExecutionPlan(root=root, packed_ops=packed_ops,
                         kind="quantized" if bits is not None else "packed",
                         array_rows=packed_model.array_rows,
                         array_cols=packed_model.array_cols,
                         pipeline_config=packed_model.pipeline_config,
                         bits=bits, array_config=array_config)


# -- manifest (de)serialization ----------------------------------------------
# The V2 packed-artifact format persists the op tree as a JSON manifest so
# load_plan can rebuild an ExecutionPlan without reconstructing the nn
# model.  Arrays are persisted through a ``store(array) -> ref`` callback
# (the artifact's per-dtype blob writer) and rehydrated through
# ``load(ref) -> array``; packed layers are referenced by layer index and
# wired to the artifact's own packed matrices by ``packed_factory``.

def manifest_from_plan(plan: ExecutionPlan,
                       store: Callable[[np.ndarray], Any]) -> dict:
    """Serialize a plan's op tree to a JSON-able manifest."""
    index = {id(op): position for position, op in enumerate(plan.packed_ops)}
    return _serialize_op(plan.root, index, store)


def _serialize_op(op: Any, index: dict[int, int],
                  store: Callable[[np.ndarray], Any]) -> dict:
    def ref(array: np.ndarray | None) -> Any:
        return None if array is None else store(array)

    if isinstance(op, SequenceOp):
        return {"op": "sequence",
                "ops": [_serialize_op(child, index, store) for child in op.ops]}
    if isinstance(op, ResidualOp):
        return {"op": "residual",
                "main": _serialize_op(op.main, index, store),
                "shortcut": (_serialize_op(op.shortcut, index, store)
                             if op.shortcut is not None else None)}
    if isinstance(op, PackedLayerOp):
        return {"op": "packed", "layer": index[id(op)], "bias": ref(op.bias)}
    if isinstance(op, PointwiseOp):
        return {"op": "pointwise", "weight": store(op.weight),
                "bias": ref(op.bias), "in_channels": op.in_channels}
    if isinstance(op, DenseOp):
        return {"op": "dense", "weight": store(op.weight),
                "bias": ref(op.bias), "in_features": op.in_features}
    if isinstance(op, ShiftOp):
        return {"op": "shift", "assignment": store(op.assignment),
                "channels": op.channels}
    if isinstance(op, BatchNormOp):
        return {"op": "batchnorm", "mean": store(op.mean), "var": store(op.var),
                "gamma": store(op.gamma), "beta": store(op.beta),
                "eps": op.eps, "channels": op.channels}
    if isinstance(op, ReluOp):
        return {"op": "relu"}
    if isinstance(op, IdentityOp):
        return {"op": "identity"}
    if isinstance(op, FlattenOp):
        return {"op": "flatten"}
    if isinstance(op, GlobalAvgPoolOp):
        return {"op": "globalavgpool"}
    if isinstance(op, AvgPoolOp):
        return {"op": "avgpool", "kernel": op.kernel}
    if isinstance(op, MaxPoolOp):
        return {"op": "maxpool", "kernel": op.kernel}
    if isinstance(op, StrideOp):
        return {"op": "stride", "stride": op.stride}
    raise TypeError(f"cannot serialize plan op {type(op).__name__}")


def plan_from_manifest(node: dict,
                       packed_factory: Callable[[int, np.ndarray | None],
                                                PackedLayerOp],
                       load: Callable[[Any], np.ndarray | None]) -> Any:
    """Rebuild an op tree from a manifest node.

    ``packed_factory(layer_index, bias)`` supplies each packed layer's op
    (wired to the artifact's packed matrices and quantizers); ``load``
    rehydrates an array ref (and maps ``None`` to ``None``).
    """
    kind = node["op"]
    if kind == "sequence":
        return SequenceOp(tuple(plan_from_manifest(child, packed_factory, load)
                                for child in node["ops"]))
    if kind == "residual":
        shortcut = (plan_from_manifest(node["shortcut"], packed_factory, load)
                    if node["shortcut"] is not None else None)
        return ResidualOp(plan_from_manifest(node["main"], packed_factory, load),
                          shortcut)
    if kind == "packed":
        return packed_factory(int(node["layer"]), load(node["bias"]))
    if kind == "pointwise":
        return PointwiseOp(load(node["weight"]), load(node["bias"]),
                           int(node["in_channels"]))
    if kind == "dense":
        return DenseOp(load(node["weight"]), load(node["bias"]),
                       int(node["in_features"]))
    if kind == "shift":
        return ShiftOp(load(node["assignment"]), int(node["channels"]))
    if kind == "batchnorm":
        return BatchNormOp(load(node["mean"]), load(node["var"]),
                           load(node["gamma"]), load(node["beta"]),
                           float(node["eps"]), int(node["channels"]))
    if kind == "relu":
        return ReluOp()
    if kind == "identity":
        return IdentityOp()
    if kind == "flatten":
        return FlattenOp()
    if kind == "globalavgpool":
        return GlobalAvgPoolOp()
    if kind == "avgpool":
        return AvgPoolOp(int(node["kernel"]))
    if kind == "maxpool":
        return MaxPoolOp(int(node["kernel"]))
    if kind == "stride":
        return StrideOp(int(node["stride"]))
    raise ValueError(f"unknown plan op {kind!r} in manifest")
