"""Tile counting for partitioned matrix multiplication (Section 5.4).

When a layer's filter matrix is larger than the systolic array, the
multiplication runs in multiple passes, one per (array_rows x array_cols)
tile of the filter matrix.  Column combining shrinks the number of columns
from M to the number of groups, reducing the tile count — the effect shown
in Figures 14b and 15a.
"""

from __future__ import annotations

import math

import numpy as np

from repro.combining.grouping import ColumnGrouping, group_columns


def tile_count(num_rows: int, num_columns: int, array_rows: int, array_columns: int) -> int:
    """Number of tiles needed to cover an (num_rows x num_columns) matrix."""
    if num_rows < 0 or num_columns < 0:
        raise ValueError("matrix dimensions must be non-negative")
    if array_rows < 1 or array_columns < 1:
        raise ValueError("array dimensions must be >= 1")
    if num_rows == 0 or num_columns == 0:
        return 0
    return math.ceil(num_rows / array_rows) * math.ceil(num_columns / array_columns)


def tiles_for_layer(matrix: np.ndarray, array_rows: int, array_columns: int,
                    grouping: ColumnGrouping | None = None) -> int:
    """Tile count for one layer, optionally after column combining.

    Without a grouping, the layer occupies all of its original columns
    (zero weights still occupy systolic cells).  With a grouping, the
    packed matrix has one column per group.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    columns = grouping.num_groups if grouping is not None else matrix.shape[1]
    return tile_count(matrix.shape[0], columns, array_rows, array_columns)


def tiles_for_model(matrices: list[np.ndarray], array_rows: int, array_columns: int,
                    alpha: int = 1, gamma: float = 0.0,
                    engine: str = "fast") -> list[int]:
    """Per-layer tile counts for a list of filter matrices.

    ``alpha = 1`` reproduces the baseline (no combining); larger ``alpha``
    groups columns with the given conflict budget before counting tiles.
    ``engine`` selects the grouping engine (see
    :func:`~repro.combining.grouping.group_columns`).
    """
    counts: list[int] = []
    for matrix in matrices:
        if alpha <= 1:
            counts.append(tiles_for_layer(matrix, array_rows, array_columns))
        else:
            grouping = group_columns(matrix, alpha=alpha, gamma=gamma, engine=engine)
            counts.append(tiles_for_layer(matrix, array_rows, array_columns, grouping))
    return counts
