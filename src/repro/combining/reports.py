"""Human-readable packing reports for a column-combined model.

These reports are what a user deploying a network would inspect after
running Algorithm 1: per-layer columns before/after combining, packing
efficiency, multiplexing degree, tile counts on a target array, and the
buffer capacities the deployment needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.combining.packing import PackedFilterMatrix
from repro.combining.tiling import tile_count
from repro.hardware.sram import BufferRequirements, buffer_requirements


@dataclass
class LayerPackingReport:
    """Packing summary of one layer."""

    name: str
    rows: int
    columns_before: int
    columns_after: int
    nonzeros: int
    packing_efficiency: float
    multiplexing_degree: int
    tiles_before: int
    tiles_after: int

    @property
    def column_reduction(self) -> float:
        if self.columns_after == 0:
            return 1.0
        return self.columns_before / self.columns_after

    @property
    def tile_reduction(self) -> float:
        if self.tiles_after == 0:
            return 1.0
        return self.tiles_before / self.tiles_after


@dataclass
class ModelPackingReport:
    """Packing summary of a whole model plus deployment buffer sizing."""

    layers: list[LayerPackingReport] = field(default_factory=list)
    array_rows: int = 32
    array_cols: int = 32
    buffers: BufferRequirements | None = None

    @property
    def total_nonzeros(self) -> int:
        return sum(layer.nonzeros for layer in self.layers)

    @property
    def total_tiles_before(self) -> int:
        return sum(layer.tiles_before for layer in self.layers)

    @property
    def total_tiles_after(self) -> int:
        return sum(layer.tiles_after for layer in self.layers)

    @property
    def overall_packing_efficiency(self) -> float:
        cells = sum(layer.rows * layer.columns_after for layer in self.layers)
        if cells == 0:
            return 0.0
        return self.total_nonzeros / cells

    @property
    def max_multiplexing_degree(self) -> int:
        if not self.layers:
            return 0
        return max(layer.multiplexing_degree for layer in self.layers)

    def to_rows(self) -> list[tuple]:
        """Rows suitable for ``repro.experiments.common.format_table``."""
        return [
            (layer.name, f"{layer.rows}x{layer.columns_before}",
             layer.columns_after, f"{layer.packing_efficiency:.0%}",
             layer.multiplexing_degree, layer.tiles_before, layer.tiles_after)
            for layer in self.layers
        ]


def packing_report(packed_layers: list[tuple[str, PackedFilterMatrix]],
                   array_rows: int = 32, array_cols: int = 32,
                   spatial_sizes: list[int] | None = None) -> ModelPackingReport:
    """Build a :class:`ModelPackingReport` from packed layers.

    ``spatial_sizes`` (one per layer) is only needed for buffer sizing; if
    omitted, buffer requirements are not computed.
    """
    report = ModelPackingReport(array_rows=array_rows, array_cols=array_cols)
    for name, packed in packed_layers:
        rows, groups = packed.weights.shape
        columns_before = packed.original_shape[1]
        report.layers.append(LayerPackingReport(
            name=name,
            rows=rows,
            columns_before=columns_before,
            columns_after=groups,
            nonzeros=int(np.count_nonzero(packed.weights)),
            packing_efficiency=packed.packing_efficiency(),
            multiplexing_degree=packed.multiplexing_degree(),
            tiles_before=tile_count(rows, columns_before, array_rows, array_cols),
            tiles_after=tile_count(rows, groups, array_rows, array_cols),
        ))
    if spatial_sizes is not None:
        if len(spatial_sizes) != len(packed_layers):
            raise ValueError("need one spatial size per packed layer")
        max_spatial = max(spatial_sizes) if spatial_sizes else 1
        max_channels = max(
            max(packed.original_shape[1], packed.num_rows)
            for _, packed in packed_layers
        )
        report.buffers = buffer_requirements(
            [(p.num_rows, p.num_groups) for _, p in packed_layers],
            max_spatial=max_spatial, max_channels=max_channels)
    return report
