"""Column combining: the paper's core contribution.

The public surface mirrors the paper's algorithms:

* :func:`~repro.combining.grouping.group_columns` — Algorithm 2, the
  dense-column-first column grouping under the group-size (α) and
  limited-conflict (γ) constraints.
* :func:`~repro.combining.pruning.column_combine_prune` — Algorithm 3,
  pruning all conflicting weights but the largest-magnitude one per row.
* :class:`~repro.combining.trainer.ColumnCombineTrainer` — Algorithm 1, the
  iterative joint optimization of utilization efficiency and accuracy.
* :class:`~repro.combining.packing.PackedFilterMatrix` — the packed matrix
  plus the per-cell channel indices that an MX-cell systolic array needs.
* :mod:`~repro.combining.permutation` — the row permutation of Section 3.5
  that makes each next-layer group contiguous, removing the switchbox.
* :mod:`~repro.combining.metrics` / :mod:`~repro.combining.tiling` —
  packing / utilization efficiency and tile-count arithmetic.

Engine selection
----------------

:func:`~repro.combining.grouping.group_columns` accepts an ``engine``
keyword choosing between two implementations of Algorithm 2 that produce
bit-identical groupings:

* ``"fast"`` (the default) — the vectorized bitset engine.  Each group's
  occupied-row set lives in a ``(G, ceil(N / 64))`` uint64 bitset matrix
  (:mod:`~repro.combining.bitset`), so one broadcasted ``bitwise_and`` +
  popcount pass scores a candidate column against every open group at
  once.
* ``"reference"`` — the original per-group Python loop, retained as the
  executable specification for differential testing and debugging.

The knob threads through the rest of the stack as
:attr:`~repro.combining.trainer.ColumnCombineConfig.grouping_engine`
(Algorithm 1 training), the ``engine`` parameter of
:func:`~repro.combining.tiling.tiles_for_model`, the ``grouping_engine``
keyword of :func:`repro.experiments.common.combine_config`, and the
``--engine`` flag of the ``pack`` / ``train`` CLI subcommands.  Valid
names are listed in :data:`~repro.combining.grouping.GROUPING_ENGINES`.
"""

from repro.combining.grouping import GROUPING_ENGINES, ColumnGrouping, group_columns
from repro.combining.pruning import column_combine_prune, conflict_mask
from repro.combining.packing import PackedFilterMatrix, pack_filter_matrix
from repro.combining.permutation import (
    permutation_from_groups,
    apply_row_permutation,
    apply_column_permutation,
    remap_groups_contiguous,
    plan_cross_layer_permutations,
)
from repro.combining.metrics import (
    density,
    column_density,
    count_conflicts,
    packing_efficiency,
    utilization_efficiency,
)
from repro.combining.tiling import tile_count, tiles_for_layer, tiles_for_model
from repro.combining.trainer import (
    ColumnCombineConfig,
    ColumnCombineTrainer,
    EpochRecord,
    TrainingHistory,
)
from repro.combining.reports import (
    LayerPackingReport,
    ModelPackingReport,
    packing_report,
)

__all__ = [
    "GROUPING_ENGINES",
    "ColumnGrouping",
    "group_columns",
    "column_combine_prune",
    "conflict_mask",
    "PackedFilterMatrix",
    "pack_filter_matrix",
    "permutation_from_groups",
    "apply_row_permutation",
    "apply_column_permutation",
    "remap_groups_contiguous",
    "plan_cross_layer_permutations",
    "density",
    "column_density",
    "count_conflicts",
    "packing_efficiency",
    "utilization_efficiency",
    "tile_count",
    "tiles_for_layer",
    "tiles_for_model",
    "ColumnCombineConfig",
    "ColumnCombineTrainer",
    "EpochRecord",
    "TrainingHistory",
    "LayerPackingReport",
    "ModelPackingReport",
    "packing_report",
]
