"""Column combining: the paper's core contribution.

The public surface mirrors the paper's algorithms:

* :func:`~repro.combining.grouping.group_columns` — Algorithm 2, the
  dense-column-first column grouping under the group-size (α) and
  limited-conflict (γ) constraints.
* :func:`~repro.combining.pruning.column_combine_prune` — Algorithm 3,
  pruning all conflicting weights but the largest-magnitude one per row.
* :class:`~repro.combining.trainer.ColumnCombineTrainer` — Algorithm 1, the
  iterative joint optimization of utilization efficiency and accuracy.
* :class:`~repro.combining.packing.PackedFilterMatrix` — the packed matrix
  plus the per-cell channel indices that an MX-cell systolic array needs.
* :mod:`~repro.combining.permutation` — the row permutation of Section 3.5
  that makes each next-layer group contiguous, removing the switchbox.
* :mod:`~repro.combining.metrics` / :mod:`~repro.combining.tiling` —
  packing / utilization efficiency and tile-count arithmetic.
* :class:`~repro.combining.pipeline.PackingPipeline` — the end-to-end
  group / conflict-prune / pack / tile flow over a list of layers, with
  optional layer-parallel fan-out over a persistent process pool
  (``workers=N``; spawned lazily, reused across ``run()`` calls, released
  by ``close()`` / the context-manager exit); every figure/table sweep
  routes through it.
* :class:`~repro.combining.inference.PackedModel` — the model-level
  consumer of ``PipelineResult.packed_layers()``: batched multi-layer
  forward passes through the packed representations (bit-exact dense
  realization or MX-cell routing), batched ``to_sparse`` export, and
  per-model cycle / tile accounting via the systolic timing model.
* :class:`~repro.combining.quantized.QuantizedPackedModel` — the
  serving-path integer twin of ``PackedModel``: per-layer quantizers
  calibrated once and frozen, every packed layer chained through
  :meth:`repro.systolic.system.SystolicSystem.run_layer`'s quantized
  execution (``bits``-bit MX routing, 32-bit accumulation, per-layer
  re-quantization), with per-layer error reports and bit-width-aware
  cycle accounting.
* :mod:`~repro.combining.serialization` — the versioned packed-artifact
  format (:func:`~repro.combining.serialization.save_packed` /
  :func:`~repro.combining.serialization.load_packed`): one ``.npz`` file
  persisting the packed matrices, channel routing, grouping, pipeline
  config, nn model state, and frozen calibration scales, with format
  versioning and per-layer fingerprints; loaded models are
  forward-bit-identical to the ones saved.  :mod:`repro.serving` builds
  its model registry / dynamic-batching inference server on top.

Engine selection
----------------

Both greedy algorithms ship two implementations that produce bit-identical
results; the ``"reference"`` variants are the executable specifications
kept for differential testing and debugging.

:func:`~repro.combining.grouping.group_columns` (Algorithm 2) accepts
``engine="fast"`` (the default) or ``engine="reference"``:

* ``"fast"`` — the vectorized bitset engine.  Each group's occupied-row
  set lives in a ``(G, ceil(N / 64))`` uint64 bitset matrix
  (:mod:`~repro.combining.bitset`), so one broadcasted ``bitwise_and`` +
  popcount pass scores a candidate column against every open group at
  once; when only 1-2 groups are open it drops to a scalar Python-int
  micro-path that avoids the vectorized call overhead entirely.
* ``"reference"`` — the original per-group Python loop.

:func:`~repro.combining.pruning.conflict_mask` (Algorithm 3) accepts the
same two names: ``"fast"`` selects every group's row winners in one
``ufunc.at`` scatter pass over the packed nonzero-entry list, while
``"reference"`` is the per-group dense-slice loop.

The knobs thread through the rest of the stack as
:attr:`~repro.combining.trainer.ColumnCombineConfig.grouping_engine` /
:attr:`~repro.combining.trainer.ColumnCombineConfig.prune_engine`
(Algorithm 1 training), the ``engine`` parameters of
:func:`~repro.combining.tiling.tiles_for_model` and
:func:`~repro.combining.packing.pack_filter_matrix`, the
``grouping_engine`` / ``prune_engine`` fields of
:class:`~repro.combining.pipeline.PipelineConfig` and keywords of
:func:`repro.experiments.common.combine_config`, and the ``--engine`` /
``--prune-engine`` flags of the ``pack`` / ``train`` CLI subcommands.
Valid names are listed in
:data:`~repro.combining.grouping.GROUPING_ENGINES` and
:data:`~repro.combining.pruning.PRUNE_ENGINES`.
"""

from repro.combining.grouping import (
    GROUPING_ENGINES,
    GROUPING_POLICIES,
    ColumnGrouping,
    group_columns,
    group_layout,
)
from repro.combining.pruning import (
    PRUNE_ENGINES,
    column_combine_prune,
    conflict_mask,
    pruned_weight_count,
)
from repro.combining.packing import PackedFilterMatrix, pack_filter_matrix
from repro.combining.pipeline import (
    LayerResult,
    PackingPipeline,
    PipelineConfig,
    PipelineResult,
    ordered_pool_map,
)
from repro.combining.inference import (
    FORWARD_MODES,
    PackedLayerSpec,
    PackedModel,
    ensure_sample_batch,
)
from repro.combining.execplan import (
    PLAN_MODES,
    ExecutionPlan,
    compile_plan,
    register_plan_compiler,
)
from repro.combining.kernels import (
    DEFAULT_KERNEL,
    KERNELS,
    invariant_conv_pointwise,
    invariant_matmul,
    kernel_schedule,
    validate_kernel,
)
from repro.combining.serialization import (
    ARTIFACT_KINDS,
    FORMAT_VERSION,
    SUPPORTED_FORMAT_VERSIONS,
    PackedArtifactError,
    artifact_info,
    fingerprint_packed,
    load_packed,
    load_plan,
    save_packed,
    verify_artifact,
)
from repro.combining.quantized import (
    MAX_BITS,
    MIN_BITS,
    LayerCalibration,
    QuantizedLayerReport,
    QuantizedPackedModel,
)
from repro.combining.permutation import (
    permutation_from_groups,
    apply_row_permutation,
    apply_column_permutation,
    remap_groups_contiguous,
    plan_cross_layer_permutations,
)
from repro.combining.metrics import (
    density,
    column_density,
    count_conflicts,
    packing_efficiency,
    utilization_efficiency,
)
from repro.combining.tiling import tile_count, tiles_for_layer, tiles_for_model
from repro.combining.trainer import (
    ColumnCombineConfig,
    ColumnCombineTrainer,
    EpochRecord,
    TrainingHistory,
)
from repro.combining.reports import (
    LayerPackingReport,
    ModelPackingReport,
    packing_report,
)

__all__ = [
    "GROUPING_ENGINES",
    "GROUPING_POLICIES",
    "PRUNE_ENGINES",
    "ColumnGrouping",
    "group_columns",
    "column_combine_prune",
    "conflict_mask",
    "group_layout",
    "pruned_weight_count",
    "PackedFilterMatrix",
    "pack_filter_matrix",
    "FORWARD_MODES",
    "PLAN_MODES",
    "KERNELS",
    "DEFAULT_KERNEL",
    "invariant_matmul",
    "invariant_conv_pointwise",
    "kernel_schedule",
    "validate_kernel",
    "PackedLayerSpec",
    "PackedModel",
    "ExecutionPlan",
    "compile_plan",
    "register_plan_compiler",
    "ensure_sample_batch",
    "ARTIFACT_KINDS",
    "FORMAT_VERSION",
    "SUPPORTED_FORMAT_VERSIONS",
    "PackedArtifactError",
    "artifact_info",
    "fingerprint_packed",
    "load_packed",
    "load_plan",
    "save_packed",
    "verify_artifact",
    "MIN_BITS",
    "MAX_BITS",
    "LayerCalibration",
    "QuantizedLayerReport",
    "QuantizedPackedModel",
    "LayerResult",
    "PackingPipeline",
    "PipelineConfig",
    "PipelineResult",
    "ordered_pool_map",
    "permutation_from_groups",
    "apply_row_permutation",
    "apply_column_permutation",
    "remap_groups_contiguous",
    "plan_cross_layer_permutations",
    "density",
    "column_density",
    "count_conflicts",
    "packing_efficiency",
    "utilization_efficiency",
    "tile_count",
    "tiles_for_layer",
    "tiles_for_model",
    "ColumnCombineConfig",
    "ColumnCombineTrainer",
    "EpochRecord",
    "TrainingHistory",
    "LayerPackingReport",
    "ModelPackingReport",
    "packing_report",
]
