"""Column-combine pruning — Algorithm 3 of the paper.

Within each group of columns, every row may keep at most one nonzero
weight: the one with the largest magnitude.  All other (conflicting)
weights in that row are pruned.  Retraining afterwards (Algorithm 1)
recovers the lost accuracy.
"""

from __future__ import annotations

import numpy as np

from repro.combining.grouping import ColumnGrouping


def conflict_mask(matrix: np.ndarray, grouping: ColumnGrouping) -> np.ndarray:
    """Binary mask of the weights that survive column-combine pruning.

    For each group and each row, the largest-magnitude nonzero among the
    group's columns is kept (ties are broken toward the earliest column in
    the group, matching Algorithm 3's first-found-wins loop); every other
    nonzero in that row/group is marked for pruning.  Weights outside any
    conflict are kept unchanged.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    if grouping.num_columns != matrix.shape[1] or grouping.num_rows != matrix.shape[0]:
        raise ValueError("grouping does not match matrix shape")
    keep = np.zeros(matrix.shape, dtype=bool)
    for group in grouping.groups:
        columns = np.asarray(group, dtype=int)
        submatrix = np.abs(matrix[:, columns])
        # Rows with no nonzero keep nothing from this group.
        row_has_weight = submatrix.max(axis=1) > 0
        winners = submatrix.argmax(axis=1)  # first maximal column wins ties
        rows = np.flatnonzero(row_has_weight)
        keep[rows, columns[winners[rows]]] = True
    return keep.astype(np.float64)


def column_combine_prune(matrix: np.ndarray, grouping: ColumnGrouping
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Apply Algorithm 3 and return ``(pruned_matrix, keep_mask)``.

    ``pruned_matrix`` is a copy of ``matrix`` with conflicting weights set
    to zero; ``keep_mask`` is the binary mask of surviving weights (which
    the trainer installs on the layer's parameter so retraining cannot
    resurrect pruned weights).
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    keep = conflict_mask(matrix, grouping)
    return matrix * keep, keep


def pruned_weight_count(matrix: np.ndarray, grouping: ColumnGrouping) -> int:
    """Number of weights Algorithm 3 would remove for this grouping."""
    matrix = np.asarray(matrix)
    keep = conflict_mask(matrix, grouping)
    return int(np.count_nonzero(matrix) - np.count_nonzero(matrix * keep))
