"""Column-combine pruning — Algorithm 3 of the paper.

Within each group of columns, every row may keep at most one nonzero
weight: the one with the largest magnitude.  All other (conflicting)
weights in that row are pruned.  Retraining afterwards (Algorithm 1)
recovers the lost accuracy.

Two interchangeable engines implement the row-winner selection:

* ``engine="fast"`` (the default) lays the groups out in the packed flat
  format of :func:`~repro.combining.grouping.group_layout` (shared with
  the bitset substrate's
  :func:`~repro.combining.bitset.group_occupancy`) and selects every
  group's row winners in one ``ufunc.at`` scatter pass over the nonzero
  entries — no per-group dense slicing, so the cost scales with the
  number of weights rather than with ``num_groups`` Python iterations.
* ``engine="reference"`` is the straightforward per-group Python loop,
  kept as the executable specification for differential testing.

Both engines produce bit-identical keep masks — same winners, same
tie-breaks (toward the earliest column in each group's order), same
handling of all-zero rows — for every matrix and grouping.
"""

from __future__ import annotations

import numpy as np

from repro.combining.grouping import ColumnGrouping, group_layout

#: Engines accepted by :func:`conflict_mask` / :func:`column_combine_prune`.
PRUNE_ENGINES = ("fast", "reference")


def _conflict_mask_reference(matrix: np.ndarray, grouping: ColumnGrouping
                             ) -> np.ndarray:
    """Per-group Python loop: the executable specification of Algorithm 3."""
    keep = np.zeros(matrix.shape, dtype=bool)
    for group in grouping.groups:
        columns = np.asarray(group, dtype=int)
        submatrix = np.abs(matrix[:, columns])
        # Rows with no nonzero keep nothing from this group.
        row_has_weight = submatrix.max(axis=1) > 0
        winners = submatrix.argmax(axis=1)  # first maximal column wins ties
        rows = np.flatnonzero(row_has_weight)
        keep[rows, columns[winners[rows]]] = True
    return keep


def _conflict_mask_fast(matrix: np.ndarray, grouping: ColumnGrouping
                        ) -> np.ndarray:
    """Scatter engine: every group's row winners selected in one pass.

    Instead of slicing a dense ``(N, len(group))`` submatrix per group, the
    engine extracts the nonzero entries once and scatters them into the
    ``N x G`` grid of (row, group) cells with ``ufunc.at``:

    1. ``maximum.at`` accumulates each cell's largest magnitude;
    2. ``minimum.at`` over the maximal entries finds each cell's earliest
       within-group position — exactly the reference loop's
       first-found-wins ``argmax`` tie-break;
    3. the entry matching that (magnitude, position) pair *is* the cell's
       surviving weight, so the keep mask is one boolean scatter away.

    Cost scales with the number of nonzero entries plus the cell grid, not
    with ``num_groups`` Python iterations over dense slices.
    """
    num_rows, num_columns = matrix.shape
    keep = np.zeros(matrix.shape, dtype=bool)
    if not grouping.groups or num_rows == 0 or num_columns == 0:
        return keep
    num_groups = grouping.num_groups
    _, assignment, position = group_layout(grouping)

    flat = np.flatnonzero(matrix != 0)          # row-major entry list
    if flat.size == 0:
        return keep
    rows = flat // num_columns
    columns = flat - rows * num_columns
    if matrix.flags.c_contiguous:
        values = np.abs(matrix.reshape(-1)[flat])
    else:
        values = np.abs(matrix[rows, columns])
    cells = rows * num_groups + assignment[columns]

    cell_max = np.zeros(num_rows * num_groups, dtype=values.dtype)
    np.maximum.at(cell_max, cells, values)
    is_max = values == cell_max[cells]
    # A NaN magnitude poisons its cell's max (NaN compares unequal to
    # everything, so the cell has no maximal entry); the reference loop
    # keeps nothing from such a cell, and the shortcut's tie count would
    # miscount it, so NaNs always take the explicit tie-break path.
    no_nan = not np.isnan(values.max()) if values.dtype.kind == "f" else True
    if no_nan and np.count_nonzero(is_max) == np.count_nonzero(cell_max):
        # No magnitude ties anywhere: every occupied cell has exactly one
        # maximal entry, which therefore is its winner.
        keep.reshape(-1)[flat] = is_max
        return keep
    # Tie-break toward the earliest within-group position among each
    # cell's maximal entries (the reference argmax's first-found-wins).
    entry_position = np.where(is_max, position[columns], num_columns)
    cell_first = np.full(num_rows * num_groups, num_columns, dtype=np.intp)
    np.minimum.at(cell_first, cells, entry_position)
    keep.reshape(-1)[flat] = is_max & (entry_position == cell_first[cells])
    return keep


_ENGINES = {
    "fast": _conflict_mask_fast,
    "reference": _conflict_mask_reference,
}


def conflict_mask(matrix: np.ndarray, grouping: ColumnGrouping,
                  engine: str = "fast") -> np.ndarray:
    """Binary mask of the weights that survive column-combine pruning.

    For each group and each row, the largest-magnitude nonzero among the
    group's columns is kept (ties are broken toward the earliest column in
    the group, matching Algorithm 3's first-found-wins loop); every other
    nonzero in that row/group is marked for pruning.  Weights outside any
    conflict are kept unchanged.

    ``engine`` selects between the vectorized bitset implementation
    (``"fast"``, the default) and the per-group Python loop
    (``"reference"``); the two produce bit-identical masks.
    """
    matrix = np.asarray(matrix)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    if grouping.num_columns != matrix.shape[1] or grouping.num_rows != matrix.shape[0]:
        raise ValueError("grouping does not match matrix shape")
    if engine not in _ENGINES:
        raise ValueError(
            f"unknown prune engine {engine!r}; expected one of {PRUNE_ENGINES}")
    return _ENGINES[engine](matrix, grouping).astype(np.float64)


def column_combine_prune(matrix: np.ndarray, grouping: ColumnGrouping,
                         engine: str = "fast"
                         ) -> tuple[np.ndarray, np.ndarray]:
    """Apply Algorithm 3 and return ``(pruned_matrix, keep_mask)``.

    ``pruned_matrix`` is a copy of ``matrix`` with conflicting weights set
    to zero; ``keep_mask`` is the binary mask of surviving weights (which
    the trainer installs on the layer's parameter so retraining cannot
    resurrect pruned weights).  ``engine`` selects the
    :func:`conflict_mask` implementation.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    keep = conflict_mask(matrix, grouping, engine=engine)
    return matrix * keep, keep


def pruned_weight_count(matrix: np.ndarray, grouping: ColumnGrouping,
                        engine: str = "fast") -> int:
    """Number of weights Algorithm 3 would remove for this grouping."""
    matrix = np.asarray(matrix)
    keep = conflict_mask(matrix, grouping, engine=engine)
    return int(np.count_nonzero(matrix) - np.count_nonzero(matrix * keep))
