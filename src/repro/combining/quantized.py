"""Whole-model quantized inference on the packed systolic representations.

:class:`~repro.combining.inference.PackedModel` runs batched forwards on
the float nn path; :class:`QuantizedPackedModel` is the serving-path
counterpart that executes every packed layer the way the hardware of
Figure 6 / Figure 12 does — through
:meth:`repro.systolic.system.SystolicSystem.run_layer`'s quantized
execution:

* **Calibration** — :meth:`QuantizedPackedModel.calibrate` runs one float
  forward over a calibration batch, records the activations every packed
  layer observes, and fits a frozen per-layer
  :class:`~repro.quant.linear.LinearQuantizer` pair (inputs and weights)
  once.  Inference then reuses the frozen scales instead of
  ``run_layer``'s per-call refit — what a deployed array does, since the
  hardware cannot re-derive scales from data it has not seen yet.
  Activation scales honour the ``calibration`` strategy (``"max"`` or the
  outlier-robust ``"percentile"``); weight scales always use the exact
  max-magnitude fit, since the weights are fully known at pack time.
* **Batched integer forwards** — :meth:`QuantizedPackedModel.forward`
  runs the whole network with every packed layer computed as the array
  would: ``bits``-bit quantized activations and weights routed through
  the MX cells of the tiled packed array, 32-bit integer accumulation,
  and dequantization by the product of the frozen scales.  The spatial
  shift runs inside the model's own shift layers (bit-exact with
  :class:`~repro.systolic.blocks.ShiftBlock`); ReLU and the 8-bit
  re-quantization feeding the next packed layer happen in the module
  graph and at the next layer's frozen input quantizer respectively.
  Non-packable modules (batch norm, pooling, classifier heads) run in
  float, as on the host.
* **Per-layer error accounting** — :meth:`QuantizedPackedModel.layer_report`
  reports, for the last forward, each layer's quantization RMSE,
  saturation rates, and the divergence between its quantized output and
  the exact packed computation on the same inputs;
  :meth:`QuantizedPackedModel.prediction_agreement` compares top-1
  predictions against :meth:`PackedModel.predict`'s exact mode.
* **Cycle / tile accounting** — ``bits`` threads into the systolic timing
  model (bit-serial MACs stream fewer cycles at lower widths), so
  :meth:`QuantizedPackedModel.plan` / :meth:`QuantizedPackedModel.summary`
  report the cycle cost of the chosen width alongside the error metrics.

Usage::

    from repro.combining import PipelineConfig, QuantizedPackedModel
    from repro.models import build_model

    model = build_model("lenet5", image_size=12)
    quantized = QuantizedPackedModel.from_model(
        model, PipelineConfig(alpha=8, gamma=0.5), bits=8)
    quantized.calibrate(calibration_images)
    outputs = quantized.forward(images)          # integer systolic execution
    agreement = quantized.prediction_agreement(images)
    for report in quantized.layer_report():
        print(report.name, report.divergence_rmse, report.input_saturation)
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

import numpy as np

from repro.combining.inference import (
    PackedLayerSpec,
    PackedModel,
    ensure_sample_batch,
    split_activation_batch,
)
from repro.combining.kernels import DEFAULT_KERNEL
from repro.combining.pipeline import PackingPipeline, PipelineConfig, PipelineResult
from repro.nn import Module, PointwiseConv2d
from repro.quant.linear import CALIBRATIONS, LinearQuantizer
from repro.systolic.array import ArrayConfig
from repro.systolic.system import ModelExecutionPlan, SystolicSystem

#: Bit widths the bit-serial MX cells support (the paper's design space).
MIN_BITS, MAX_BITS = 2, 8


@dataclass(frozen=True)
class LayerCalibration:
    """Frozen per-layer quantizers, fit once by :meth:`QuantizedPackedModel.calibrate`.

    ``weight_rmse`` / ``weight_saturation`` are computed at calibration
    time — the weights do not change between forwards, so neither do they.
    """

    name: str
    input_quantizer: LinearQuantizer
    weight_quantizer: LinearQuantizer
    weight_rmse: float
    weight_saturation: float


@dataclass
class QuantizedLayerReport:
    """Per-layer error / execution accounting of the last quantized forward.

    ``divergence_rmse`` / ``divergence_max`` measure the quantized layer
    output against the **exact** packed computation on the same inputs, so
    they isolate each layer's own quantization error from error the layer
    inherited from upstream.
    """

    name: str
    bits: int
    weight_rmse: float
    weight_saturation: float
    input_rmse: float
    input_saturation: float
    divergence_rmse: float
    divergence_max: float
    num_tiles: int
    cycles: int


class _LayerStats:
    """Accumulates one layer's statistics across the chunks of a forward.

    Execution accounting (tiles, cycles, saturation) comes free with every
    chunk; the error terms (divergence vs the exact shadow computation,
    input quantization RMSE) are only accumulated when the forward tracks
    them — untracked forwards report them as NaN.
    """

    __slots__ = ("tracked", "elements", "squared_divergence", "max_divergence",
                 "input_squared_error", "saturated_inputs", "input_elements",
                 "num_tiles", "cycles")

    def __init__(self) -> None:
        self.tracked = False
        self.elements = 0
        self.squared_divergence = 0.0
        self.max_divergence = 0.0
        self.input_squared_error = 0.0
        self.saturated_inputs = 0.0
        self.input_elements = 0
        self.num_tiles = 0
        self.cycles = 0

    def accumulate(self, inputs: np.ndarray, info: dict,
                   divergence: np.ndarray | None = None,
                   input_quantizer: LinearQuantizer | None = None) -> None:
        self.saturated_inputs += info["input_saturation"] * inputs.size
        self.input_elements += inputs.size
        self.num_tiles += info["num_tiles"]
        self.cycles += info["cycles"]
        if divergence is None:
            return
        assert input_quantizer is not None
        self.tracked = True
        self.elements += divergence.size
        self.squared_divergence += float(np.sum(divergence ** 2))
        self.max_divergence = max(self.max_divergence,
                                  float(np.max(np.abs(divergence)))
                                  if divergence.size else 0.0)
        residual = input_quantizer.roundtrip(inputs) - inputs
        self.input_squared_error += float(np.sum(residual ** 2))

    def divergence_rmse(self) -> float:
        if not self.tracked:
            return float("nan")
        if self.elements == 0:
            return 0.0
        return float(np.sqrt(self.squared_divergence / self.elements))

    def divergence_max(self) -> float:
        return self.max_divergence if self.tracked else float("nan")

    def input_rmse(self) -> float:
        if not self.tracked:
            return float("nan")
        if self.input_elements == 0:
            return 0.0
        return float(np.sqrt(self.input_squared_error / self.input_elements))

    def input_saturation(self) -> float:
        if self.input_elements == 0:
            return 0.0
        return self.saturated_inputs / self.input_elements


class QuantizedPackedModel:
    """A :class:`PackedModel` executed with the hardware's integer arithmetic.

    Wraps a model-backed :class:`PackedModel` and runs its packed layers
    through a :class:`~repro.systolic.system.SystolicSystem` configured
    for ``bits``-bit cells (2-8; the paper's arrays are 8-bit).  Assemble
    with :meth:`from_model` / :meth:`from_pipeline_result` (mirroring
    :class:`PackedModel`), or wrap an existing packed model directly.
    :meth:`calibrate` must run before :meth:`forward`.
    """

    def __init__(self, packed: PackedModel, bits: int = 8,
                 calibration: str = "max", percentile: float = 99.5,
                 array_config: ArrayConfig | None = None):
        if not MIN_BITS <= bits <= MAX_BITS:
            raise ValueError(
                f"bits must be in [{MIN_BITS}, {MAX_BITS}], got {bits}")
        if calibration not in CALIBRATIONS:
            raise ValueError(f"unknown calibration {calibration!r}; "
                             f"expected one of {CALIBRATIONS}")
        if packed.model is None:
            raise ValueError(
                "QuantizedPackedModel needs a model-backed PackedModel "
                "(assemble it with from_model or pass model=...)")
        if array_config is None:
            array_config = ArrayConfig(
                rows=packed.array_rows, cols=packed.array_cols,
                input_bits=bits, alpha=max(1, packed.multiplexing_degree()))
        elif array_config.input_bits != bits:
            raise ValueError(
                f"array_config.input_bits={array_config.input_bits} "
                f"disagrees with bits={bits}")
        self.packed = packed
        self.bits = bits
        self.calibration = calibration
        self.percentile = percentile
        self.system = SystolicSystem(array_config)
        self._calibrations: dict[str, LayerCalibration] | None = None
        self._stats: dict[str, _LayerStats] | None = None
        self._track_errors = True
        self._last_layer_outputs: dict[str, list[np.ndarray]] | None = None

    # -- construction -------------------------------------------------------
    @classmethod
    def from_model(cls, model: Module, config: PipelineConfig | None = None,
                   pipeline: PackingPipeline | None = None, *, bits: int = 8,
                   calibration: str = "max", percentile: float = 99.5
                   ) -> "QuantizedPackedModel":
        """Pack an nn model's packable layers and wrap them for quantized runs."""
        packed = PackedModel.from_model(model, config=config, pipeline=pipeline)
        return cls(packed, bits=bits, calibration=calibration,
                   percentile=percentile)

    @classmethod
    def from_pipeline_result(cls, result: PipelineResult, model: Module, *,
                             bits: int = 8, calibration: str = "max",
                             percentile: float = 99.5) -> "QuantizedPackedModel":
        """Assemble from an already-run pipeline (layers matched to ``model``)."""
        packed = PackedModel.from_pipeline_result(result, model=model)
        return cls(packed, bits=bits, calibration=calibration,
                   percentile=percentile)

    # -- calibration --------------------------------------------------------
    @property
    def calibrated(self) -> bool:
        return self._calibrations is not None

    def calibrate(self, batch: np.ndarray) -> "QuantizedPackedModel":
        """Fit and freeze the per-layer quantizers on one calibration batch.

        Runs a single **exact** (float, conflict-pruned) forward over
        ``batch``, records the activations each packed layer observes, and
        fits every layer's input quantizer on them; weight quantizers are
        fit on the packed weights directly.  The frozen scales are what
        every subsequent :meth:`forward` uses — recalibrating replaces
        them.  Returns ``self`` so assembly and calibration chain.
        """
        batch, = split_activation_batch(batch)
        observed: dict[str, np.ndarray] = {}

        def factory(spec: PackedLayerSpec, module: PointwiseConv2d
                    ) -> Callable[[np.ndarray], np.ndarray]:
            def forward(x: np.ndarray) -> np.ndarray:
                module.check_input(x)
                observed[spec.name] = x
                return _exact_layer_output(spec, module, x)
            return forward

        model = self.packed.model
        assert model is not None
        with self.packed.custom_forwards(factory):
            model.forward(batch)
        missing = [spec.name for spec in self.packed.specs
                   if spec.name not in observed]
        if missing:
            raise RuntimeError(
                f"calibration forward never reached packed layers {missing}")
        calibrations: dict[str, LayerCalibration] = {}
        for spec in self.packed.specs:
            inputs = observed[spec.name]
            input_quantizer = LinearQuantizer.fit(
                inputs, bits=self.bits, calibration=self.calibration,
                percentile=self.percentile)
            weight_quantizer = LinearQuantizer.fit(spec.packed.weights,
                                                   bits=self.bits)
            calibrations[spec.name] = LayerCalibration(
                name=spec.name,
                input_quantizer=input_quantizer,
                weight_quantizer=weight_quantizer,
                weight_rmse=weight_quantizer.rmse(spec.packed.weights),
                weight_saturation=weight_quantizer.saturation_rate(
                    spec.packed.weights),
            )
        self._calibrations = calibrations
        return self

    def layer_calibrations(self) -> list[LayerCalibration]:
        """The frozen per-layer calibrations, in layer order."""
        self._require_calibrated()
        assert self._calibrations is not None
        return [self._calibrations[spec.name] for spec in self.packed.specs]

    def restore_calibrations(self, calibrations: Sequence[LayerCalibration]
                             ) -> "QuantizedPackedModel":
        """Install previously frozen calibrations without a calibration run.

        The artifact-loading path
        (:func:`repro.combining.serialization.load_packed`): a served model
        cold-starts from the scales frozen at save time instead of needing
        a calibration batch.  ``calibrations`` must cover exactly this
        model's packed layers (any order) at this model's bit width.
        Returns ``self``, mirroring :meth:`calibrate`.
        """
        by_name = {calibration.name: calibration for calibration in calibrations}
        expected = [spec.name for spec in self.packed.specs]
        if sorted(by_name) != sorted(expected):
            raise ValueError(
                f"calibrations cover layers {sorted(by_name)} but the packed "
                f"model has layers {sorted(expected)}")
        for calibration in calibrations:
            for role, quantizer in (("input", calibration.input_quantizer),
                                    ("weight", calibration.weight_quantizer)):
                if quantizer.bits != self.bits:
                    raise ValueError(
                        f"layer {calibration.name!r}: {role} quantizer is "
                        f"{quantizer.bits}-bit but this model runs at "
                        f"{self.bits} bits")
        self._calibrations = {name: by_name[name] for name in expected}
        return self

    # -- quantized batched forward ------------------------------------------
    def forward(self, activations: np.ndarray, batch_size: int | None = None,
                capture_layer_outputs: bool = False,
                track_errors: bool = True,
                batch_invariant: bool = False,
                kernel: str = DEFAULT_KERNEL) -> np.ndarray:
        """Run a batched integer forward through every packed layer.

        Mirrors :meth:`PackedModel.forward`'s batching contract
        (``batch_size`` chunks the batch; every layer is per-sample in
        eval mode).  Each packed layer executes on the systolic system
        with the frozen calibration; per-layer statistics for
        :meth:`layer_report` are (re)collected over the whole call.
        ``track_errors=False`` skips the exact shadow computation and the
        input-roundtrip pass behind the divergence / input-RMSE columns —
        roughly halving the per-layer cost when only the outputs matter
        (:meth:`predict` uses this) — leaving those columns NaN while
        tiles / cycles / saturation are still collected.  With
        ``capture_layer_outputs`` the per-layer quantized outputs are kept
        for :meth:`layer_outputs` — the differential tests' hook.
        The quantized outputs themselves are bit-identical however the
        accounting knobs are set.  ``batch_invariant=True`` is the serving
        numerics (see :meth:`PackedModel.forward`): the packed integer
        execution is already batch-invariant by construction (frozen
        scales make its sums exact), so the flag switches the surrounding
        float modules (classifier heads) to their batch-invariant twins
        running the selected ``kernel`` (see
        :mod:`repro.combining.kernels`), making the whole chain
        bit-identical per sample under any request coalescing.
        """
        self._require_calibrated()
        chunks = split_activation_batch(activations, batch_size)
        self._stats = {spec.name: _LayerStats() for spec in self.packed.specs}
        self._track_errors = track_errors
        self._last_layer_outputs = (
            {spec.name: [] for spec in self.packed.specs}
            if capture_layer_outputs else None)
        self.packed._observed_spatial = {}
        model = self.packed.model
        assert model is not None
        with self.packed.custom_forwards(self._quantized_factory,
                                         batch_invariant=batch_invariant,
                                         kernel=kernel):
            outputs = [model.forward(chunk) for chunk in chunks]
        return outputs[0] if len(outputs) == 1 else np.concatenate(outputs, axis=0)

    def predict(self, activations: np.ndarray, batch_size: int | None = None,
                batch_invariant: bool = False,
                kernel: str = DEFAULT_KERNEL) -> np.ndarray:
        """Class predictions (argmax over the final logits).

        Mirrors :meth:`PackedModel.predict`: a single unbatched
        ``(C, H, W)`` sample — the natural unit of a serving request — is
        auto-expanded to a one-sample batch and the prediction squeezed
        back to a scalar.
        """
        batch, unbatched = ensure_sample_batch(activations)
        predictions = np.argmax(
            self.forward(batch, batch_size=batch_size, track_errors=False,
                         batch_invariant=batch_invariant, kernel=kernel),
            axis=1)
        return predictions[0] if unbatched else predictions

    def prediction_agreement(self, activations: np.ndarray,
                             batch_size: int | None = None) -> float:
        """Fraction of top-1 predictions matching the exact packed forward."""
        quantized = self.predict(activations, batch_size=batch_size)
        exact = self.packed.predict(activations, batch_size=batch_size)
        return float(np.mean(quantized == exact))

    def layer_outputs(self) -> dict[str, np.ndarray]:
        """Per-layer quantized outputs captured by the last :meth:`forward`.

        Requires ``forward(..., capture_layer_outputs=True)``; chunked
        forwards concatenate each layer's chunk outputs in batch order.
        """
        if self._last_layer_outputs is None:
            raise RuntimeError(
                "no layer outputs captured; run "
                "forward(..., capture_layer_outputs=True) first")
        return {name: (pieces[0] if len(pieces) == 1
                       else np.concatenate(pieces, axis=0))
                for name, pieces in self._last_layer_outputs.items()}

    def _quantized_factory(self, spec: PackedLayerSpec,
                           module: PointwiseConv2d
                           ) -> Callable[[np.ndarray], np.ndarray]:
        assert self._calibrations is not None and self._stats is not None
        calibration = self._calibrations[spec.name]
        stats = self._stats[spec.name]

        def forward(x: np.ndarray) -> np.ndarray:
            module.check_input(x)
            self.packed._observed_spatial[spec.name] = (x.shape[2], x.shape[3])
            # The model's own shift layer already moved the pixels (it is
            # bit-exact with the hardware ShiftBlock), so the systolic run
            # starts at quantization + MX routing.
            output, info = self.system.run_layer(
                spec.packed, x, apply_shift=False, apply_relu=False,
                input_quantizer=calibration.input_quantizer,
                weight_quantizer=calibration.weight_quantizer)
            if self._track_errors:
                exact = _exact_layer_output(spec, module, x, bias=False)
                stats.accumulate(x, info, divergence=output - exact,
                                 input_quantizer=calibration.input_quantizer)
            else:
                stats.accumulate(x, info)
            if module.bias is not None:
                output = output + module.bias.data[None, :, None, None]
            if self._last_layer_outputs is not None:
                self._last_layer_outputs[spec.name].append(output)
            return output

        return forward

    def compile_plan(self) -> Any:
        """Compile an immutable quantized-capable execution plan.

        The returned :class:`~repro.combining.execplan.ExecutionPlan`
        carries the packed matrices **and** the frozen per-layer
        quantizer pairs, so ``plan.forward(x, mode="quantized")`` is
        bit-identical to :meth:`forward` (and its exact / mx modes to
        :meth:`PackedModel.forward`) without touching this model — no
        module-graph mutation, no locks, picklable into worker processes.
        Error accounting (:meth:`layer_report`) stays on the mutating
        path; plans only compute outputs and cycle plans.
        """
        self._require_calibrated()
        assert self._calibrations is not None
        from repro.combining.execplan import compile_plan as _compile_plan
        quantizers = {
            spec.name: (self._calibrations[spec.name].input_quantizer,
                        self._calibrations[spec.name].weight_quantizer)
            for spec in self.packed.specs}
        return _compile_plan(self.packed, quantizers=quantizers,
                             bits=self.bits, array_config=self.system.config)

    # -- error / accuracy accounting ----------------------------------------
    def layer_report(self) -> list[QuantizedLayerReport]:
        """Per-layer quantization accounting for the last :meth:`forward`."""
        self._require_calibrated()
        if self._stats is None:
            raise RuntimeError("no quantized forward has run yet; "
                               "call forward() before layer_report()")
        assert self._calibrations is not None
        reports: list[QuantizedLayerReport] = []
        for spec in self.packed.specs:
            calibration = self._calibrations[spec.name]
            stats = self._stats[spec.name]
            reports.append(QuantizedLayerReport(
                name=spec.name,
                bits=self.bits,
                weight_rmse=calibration.weight_rmse,
                weight_saturation=calibration.weight_saturation,
                input_rmse=stats.input_rmse(),
                input_saturation=stats.input_saturation(),
                divergence_rmse=stats.divergence_rmse(),
                divergence_max=stats.divergence_max(),
                num_tiles=stats.num_tiles,
                cycles=stats.cycles,
            ))
        return reports

    # -- cycle / tile accounting --------------------------------------------
    def plan(self, spatial_sizes: Sequence[int] | None = None,
             batch: int = 1,
             array_config: ArrayConfig | None = None) -> ModelExecutionPlan:
        """Plan the model on the quantized array's timing configuration.

        Defaults to this model's own :class:`~repro.systolic.array.ArrayConfig`,
        so the bit-serial cycle counts reflect ``bits`` (lower widths
        stream fewer cycles per word).  Spatial sizes fall back to the
        ones observed during the last forward (quantized or exact).
        """
        if array_config is None:
            array_config = self.system.config
        return self.packed.plan(spatial_sizes=spatial_sizes, batch=batch,
                                array_config=array_config)

    def summary(self, plan: ModelExecutionPlan | None = None) -> dict[str, Any]:
        """Aggregate accounting: the packed-model summary plus quantization."""
        result = self.packed.summary(plan)
        result.update({
            "bits": self.bits,
            "calibration": self.calibration,
            "calibrated": self.calibrated,
        })
        if self._stats is not None:
            stats = [self._stats[spec.name] for spec in self.packed.specs]
            elements = sum(s.elements for s in stats)
            squared = sum(s.squared_divergence for s in stats)
            if not any(s.tracked for s in stats):
                divergence = float("nan")  # last forward ran track_errors=False
            elif elements == 0:
                divergence = 0.0
            else:
                divergence = float(np.sqrt(squared / elements))
            result.update({
                "quantized_tiles": sum(s.num_tiles for s in stats),
                "quantized_cycles": sum(s.cycles for s in stats),
                "divergence_rmse": divergence,
            })
        return result

    # -- plumbing ------------------------------------------------------------
    @property
    def num_layers(self) -> int:
        return self.packed.num_layers

    def layer_names(self) -> list[str]:
        return self.packed.layer_names()

    def _require_calibrated(self) -> None:
        if not self.calibrated:
            raise RuntimeError(
                "QuantizedPackedModel is not calibrated; run "
                "calibrate(batch) once before quantized inference")


def _exact_layer_output(spec: PackedLayerSpec, module: PointwiseConv2d,
                        x: np.ndarray, bias: bool = True) -> np.ndarray:
    """The exact (float) packed layer computation on the same inputs.

    Identical arithmetic to :class:`~repro.nn.layers.PointwiseConv2d` with
    the conflict-pruned weights installed, so calibration forwards are
    bit-identical to :meth:`PackedModel.forward`'s exact mode.
    """
    out = np.einsum("nc,bchw->bnhw", spec.realized(), x, optimize=True)
    if bias and module.bias is not None:
        out = out + module.bias.data[None, :, None, None]
    return out
