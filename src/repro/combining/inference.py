"""Model-level batched inference over packed filter matrices.

The rest of :mod:`repro.combining` stops at per-layer
:class:`~repro.combining.packing.PackedFilterMatrix` objects;
:class:`PackedModel` is the model-level consumer.  It assembles from a
:class:`~repro.combining.pipeline.PipelineResult` (or directly from an nn
model via :class:`~repro.combining.pipeline.PackingPipeline`) and provides:

* **Batched forward passes** — :meth:`PackedModel.forward` runs the whole
  network (shift blocks, batch norm, pooling, classifier heads) with each
  packable pointwise layer computed from its packed representation, in
  one of two modes:

  - ``"exact"`` (default): the packed weights are realized back into the
    layer's dense filter matrix via
    :meth:`~repro.combining.packing.PackedFilterMatrix.to_sparse` (an
    exact reconstruction of the conflict-pruned matrix, cached per layer
    across forwards — see :meth:`PackedLayerSpec.realized`) and the
    model's own module graph runs unchanged.  The output is therefore
    **bit-identical** to the dense reference forward of a model holding
    the pruned weights — any corruption of the channel routing, group
    assignment, or layer ordering changes the output.
  - ``"mx"``: every packed layer runs the true MX-cell computation
    (:meth:`~repro.combining.packing.PackedFilterMatrix.multiply_activations`):
    each cell multiplies its stored weight by the input channel it routes
    and the group outputs are summed.  This matches the dense forward up
    to floating-point summation order (the hardware sums across groups,
    a dense matmul across channels).

  Both modes also accept ``batch_invariant=True``, the serving-path
  numerics: every weight-bearing computation runs through the
  batch-invariant kernels of :mod:`repro.combining.kernels` instead of
  BLAS calls whose blocking (and therefore whose float summation order)
  depends on the batch dimension.  Batch-invariant outputs are
  *bit-identical per sample no matter how samples are batched* —
  ``forward(batch)[i:j]`` equals ``forward(batch[i:j])`` exactly — which
  is what lets :mod:`repro.serving`'s dynamic batcher coalesce arbitrary
  requests into one forward while each response stays bit-identical to
  the direct single-request call.  The ``kernel`` knob selects the
  implementation: ``"blocked"`` (default) dispatches fixed-shape blocks
  to BLAS and runs within a small factor of the unconstrained path;
  ``"loops"`` is the original ``np.einsum(optimize=False)`` reduction
  loops, retained as the differential reference.  The trade-off is
  numerics-only: batch-invariant results are numerically equivalent to
  the default path (same arithmetic up to float summation order), not
  bitwise equal to it — and the two kernels are likewise equivalent but
  not bitwise equal to each other.

* **Batched sparse export** — :meth:`PackedModel.to_sparse` reconstructs
  every layer's pruned dense filter matrix in one call.

* **Model-level cycle / tile accounting** — :meth:`PackedModel.plan` runs
  the systolic timing model (:meth:`repro.systolic.system.SystolicSystem.plan_model`)
  over all packed layers and :meth:`PackedModel.summary` aggregates tiles,
  cycles, utilization, packing efficiency, and pruned-weight counts per
  model.

Usage::

    from repro.combining import PackedModel, PipelineConfig
    from repro.models import build_model

    model = build_model("lenet5", image_size=12)
    packed = PackedModel.from_model(model, PipelineConfig(alpha=8, gamma=0.5))
    outputs = packed.forward(images)              # bit-exact packed inference
    mx_outputs = packed.forward(images, mode="mx")  # MX-cell routing semantics
    plan = packed.plan(spatial_sizes=[12, 6])
    print(packed.summary(plan))
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Sequence

import numpy as np

from repro.combining.kernels import (
    DEFAULT_KERNEL,
    invariant_conv_pointwise,
    invariant_matmul,
    validate_kernel,
)
from repro.combining.packing import PackedFilterMatrix
from repro.combining.pipeline import (
    PackingPipeline,
    PipelineConfig,
    PipelineResult,
)
from repro.models.registry import packable_layers as _model_packable_layers
from repro.nn import Dense, Module, PointwiseConv2d
from repro.systolic.array import ArrayConfig
from repro.systolic.system import ModelExecutionPlan, SystolicSystem

#: Forward-pass modes of :meth:`PackedModel.forward`.
FORWARD_MODES: tuple[str, ...] = ("exact", "mx")


@dataclass
class PackedLayerSpec:
    """One packed layer of a :class:`PackedModel`.

    ``module`` is the live :class:`~repro.nn.layers.PointwiseConv2d` the
    packing came from, when the model was assembled from an nn model; it is
    ``None`` for pure matrix workloads (e.g. the structural experiments'
    :func:`~repro.experiments.workloads.sparse_network` layers).
    """

    name: str
    packed: PackedFilterMatrix
    module: PointwiseConv2d | None = None
    #: cache of :meth:`realized` — the dense matrix and the fingerprint of
    #: the packed weights / routing it was realized from.
    _realized: np.ndarray | None = field(default=None, repr=False, compare=False)
    _realized_key: bytes | None = field(default=None, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.module is not None:
            expected = (self.module.out_channels, self.module.in_channels)
            if self.packed.original_shape != expected:
                raise ValueError(
                    f"layer {self.name!r}: packed original_shape "
                    f"{self.packed.original_shape} does not match the module's "
                    f"filter matrix shape {expected}")

    @property
    def nonzeros(self) -> int:
        """Nonzero weights surviving in the packed representation."""
        return int(np.count_nonzero(self.packed.weights))

    def _fingerprint(self) -> bytes:
        """Digest of the packed weights and channel routing.

        Fingerprinting the packed arrays is O(N x G) — much cheaper than
        realizing the (N x M) dense matrix, whose zero-fill and scatter
        the cache exists to avoid (G is the combined column count, a
        fraction of M on the sparse layers this library targets).
        """
        digest = hashlib.blake2b(digest_size=16)
        digest.update(self.packed.weights.tobytes())
        digest.update(self.packed.channel_index.tobytes())
        return digest.digest()

    def realized(self) -> np.ndarray:
        """The pruned dense filter matrix, cached across calls.

        Repeated exact-mode forwards reuse one realization instead of
        re-running :meth:`~repro.combining.packing.PackedFilterMatrix.to_sparse`
        per call; mutating the packed weights (or routing) invalidates the
        cache on the next call.  The returned array is shared and marked
        read-only — copy it before writing.
        """
        key = self._fingerprint()
        if self._realized is None or key != self._realized_key:
            dense = self.packed.to_sparse()
            dense.setflags(write=False)
            self._realized = dense
            self._realized_key = key
        return self._realized


class PackedModel:
    """A whole network in packed form: the unit of work is the model.

    Assemble with :meth:`from_pipeline_result` (matrix workloads or an
    already-run pipeline) or :meth:`from_model` (packs an nn model's
    packable layers through a :class:`PackingPipeline`).  Specs preserve
    the pipeline's layer order, which in turn preserves the input layer
    order even under parallel fan-out (see
    :meth:`~repro.combining.pipeline.PipelineResult.packed_layers`).
    """

    def __init__(self, specs: Sequence[PackedLayerSpec],
                 model: Module | None = None,
                 array_rows: int = 32, array_cols: int = 32,
                 pipeline_config: PipelineConfig | None = None):
        if array_rows < 1 or array_cols < 1:
            raise ValueError("array dimensions must be >= 1")
        self.specs = list(specs)
        self.model = model
        self.array_rows = array_rows
        self.array_cols = array_cols
        #: the :class:`PipelineConfig` the packing ran under, when known —
        #: persisted into packed artifacts so a served model records how it
        #: was packed (see :mod:`repro.combining.serialization`).
        self.pipeline_config = pipeline_config
        #: per-layer (H, W) observed during the last :meth:`forward` call.
        self._observed_spatial: dict[str, tuple[int, int]] = {}
        if model is not None and any(spec.module is None for spec in self.specs):
            raise ValueError("model-backed PackedModel needs a module per spec")

    # -- construction -------------------------------------------------------
    @classmethod
    def from_pipeline_result(cls, result: PipelineResult,
                             model: Module | None = None) -> "PackedModel":
        """Assemble from a pipeline run's ordered per-layer results.

        With ``model``, the result's layers are matched positionally to the
        model's ``packable_layers()`` (both are in forward order), enabling
        :meth:`forward`; shape mismatches raise ``ValueError``.
        """
        modules: list[PointwiseConv2d | None]
        if model is not None:
            layers = _model_packable_layers(model)
            if len(layers) != len(result.layers):
                raise ValueError(
                    f"pipeline result has {len(result.layers)} layers but the "
                    f"model has {len(layers)} packable layers")
            modules = [module for _, module in layers]
        else:
            modules = [None] * len(result.layers)
        specs = [PackedLayerSpec(layer.name, layer.packed, module)
                 for layer, module in zip(result.layers, modules)]
        return cls(specs, model=model,
                   array_rows=result.config.array_rows,
                   array_cols=result.config.array_cols,
                   pipeline_config=result.config)

    @classmethod
    def from_model(cls, model: Module,
                   config: PipelineConfig | None = None,
                   pipeline: PackingPipeline | None = None) -> "PackedModel":
        """Pack an nn model's packable layers and assemble the packed model.

        The packing snapshots the model's *current* weights; training the
        model afterwards does not update the packed matrices.  Pass an
        existing ``pipeline`` to reuse its (persistent) worker pool; when
        omitted a temporary pipeline is built from ``config`` and closed
        after the run.
        """
        layers = _model_packable_layers(model)
        if not layers:
            raise ValueError("model has no packable layers")
        owns_pipeline = pipeline is None
        if pipeline is None:
            pipeline = PackingPipeline(config)
        elif config is not None:
            raise ValueError("pass either config or pipeline, not both")
        try:
            result = pipeline.run([(name, module.weight.data)
                                   for name, module in layers])
        finally:
            if owns_pipeline:
                pipeline.close()
        return cls.from_pipeline_result(result, model=model)

    # -- batched forward ----------------------------------------------------
    def forward(self, activations: np.ndarray, mode: str = "exact",
                batch_size: int | None = None,
                batch_invariant: bool = False,
                kernel: str = DEFAULT_KERNEL) -> np.ndarray:
        """Run a batched forward pass through the packed network.

        ``activations`` is an NCHW batch.  ``mode`` selects the packed
        computation (see the module docstring): ``"exact"`` is bit-identical
        to the dense forward over the pruned weights *for the same batch*;
        ``"mx"`` runs the MX-cell routing semantics.  ``batch_size``
        optionally splits the batch into chunks whose outputs are
        concatenated; every layer is a per-sample computation in eval
        mode, so chunking changes the result only through BLAS summation
        order (numerically equivalent, not necessarily the same bits as
        the unchunked batch).  ``batch_invariant=True`` switches every
        weight-bearing layer to the batch-invariant ``kernel`` (see
        :mod:`repro.combining.kernels`) so the result is bit-identical per
        sample regardless of batching — ``forward(x)[i:j] ==
        forward(x[i:j])`` exactly, for either mode — the property
        :mod:`repro.serving`'s dynamic batcher relies on (see the module
        docstring).
        """
        if self.model is None:
            raise RuntimeError(
                "this PackedModel was assembled without an nn model; "
                "forward needs one (use from_model or pass model=...)")
        if mode not in FORWARD_MODES:
            raise ValueError(f"unknown forward mode {mode!r}; "
                             f"expected one of {FORWARD_MODES}")
        validate_kernel(kernel)
        chunks = split_activation_batch(activations, batch_size)
        self._observed_spatial = {}
        with self._packed_layers_installed(mode, batch_invariant=batch_invariant,
                                           kernel=kernel):
            outputs = [self.model.forward(chunk) for chunk in chunks]
        return outputs[0] if len(outputs) == 1 else np.concatenate(outputs, axis=0)

    def predict(self, activations: np.ndarray, mode: str = "exact",
                batch_size: int | None = None,
                batch_invariant: bool = False,
                kernel: str = DEFAULT_KERNEL) -> np.ndarray:
        """Class predictions (argmax over the final logits).

        Accepts either an NCHW batch (returns one prediction per sample)
        or a single unbatched ``(C, H, W)`` sample — the natural unit of a
        serving request — which is auto-expanded to a one-sample batch and
        squeezed back to a scalar prediction.
        """
        batch, unbatched = ensure_sample_batch(activations)
        predictions = np.argmax(self.forward(batch, mode=mode,
                                             batch_size=batch_size,
                                             batch_invariant=batch_invariant,
                                             kernel=kernel),
                                axis=1)
        return predictions[0] if unbatched else predictions

    def compile_plan(self) -> "Any":
        """Compile an immutable :class:`~repro.combining.execplan.ExecutionPlan`.

        The plan snapshots the packed matrices, module topology, and all
        non-packed parameters into a read-only, picklable op tree whose
        :meth:`~repro.combining.execplan.ExecutionPlan.forward` is
        bit-identical to :meth:`forward` for every mode /
        ``batch_invariant`` combination — without installing anything
        into (or locking) this model's module graph, so one plan can run
        concurrently from any number of threads or processes.
        """
        from repro.combining.execplan import compile_plan as _compile_plan
        return _compile_plan(self)

    @contextmanager
    def _model_snapshot(self) -> Iterator[None]:
        """Eval-mode window over the model, restoring all module state after.

        Snapshots every module's instance dict: it holds the training flag,
        the activation caches layers keep for backward (which a packed
        forward must neither clobber for a pending training backward nor
        retain afterwards), and is where forward overrides are installed.
        Parameter *objects* are shared with the snapshot, so callers that
        swap ``weight.data`` must restore it themselves.
        """
        model = self.model
        assert model is not None
        saved_attributes = [(module, vars(module).copy())
                            for module in model.modules()]
        model.eval()
        try:
            yield
        finally:
            for module, attributes in saved_attributes:
                vars(module).clear()
                vars(module).update(attributes)

    @contextmanager
    def _packed_layers_installed(self, mode: str,
                                 batch_invariant: bool = False,
                                 kernel: str = DEFAULT_KERNEL
                                 ) -> Iterator[None]:
        """Temporarily run the model in eval mode with packed layers installed.

        ``"exact"`` swaps each packable layer's weight data for the (cached)
        packed reconstruction; ``"mx"`` overrides the layer's ``forward``
        with the MX-cell multiply.  Both record the spatial size each packed
        layer observes (for :meth:`plan`) and restore the model afterwards.
        With ``batch_invariant`` the exact mode computes the packed layers
        through the selected batch-invariant ``kernel`` instead of the
        module's own (BLAS-backed) forward, and every other weight-bearing
        module is switched to its batch-invariant twin too (see
        :meth:`_install_batch_invariant_modules`).
        """
        with self._model_snapshot():
            saved_weights: list[tuple[PointwiseConv2d, np.ndarray]] = []
            try:
                for spec in self.specs:
                    module = spec.module
                    assert module is not None
                    if mode == "exact" and not batch_invariant:
                        saved_weights.append((module, module.weight.data))
                        module.weight.data = spec.realized()
                        module.forward = _recording_forward(module, spec,
                                                            self._observed_spatial)
                    elif mode == "exact":
                        module.forward = _invariant_pointwise_forward(
                            module, weights=spec.realized(), spec=spec,
                            observed=self._observed_spatial, kernel=kernel)
                    else:
                        module.forward = _mx_forward(module, spec,
                                                     self._observed_spatial)
                if batch_invariant:
                    self._install_batch_invariant_modules(kernel)
                yield
            finally:
                for module, weights in saved_weights:
                    module.weight.data = weights

    def _install_batch_invariant_modules(self, kernel: str = DEFAULT_KERNEL
                                         ) -> None:
        """Swap the non-packed weight-bearing modules to invariant forwards.

        The only batch-variant operations in the module graph are the
        BLAS-backed matmuls (``Dense``, and ``PointwiseConv2d``'s
        ``optimize=True`` einsum, which may dispatch to BLAS): general
        GEMM kernels choose their blocking — and therefore their float
        summation order — from the full operand shapes, so a sample's
        bits change with the batch it rides in.  Everything else
        (batch-norm statistics in eval mode, pooling means, shifts, ReLU)
        reduces per sample with shape-independent order.  Both module
        kinds share the :mod:`repro.combining.kernels` family — ``Dense``
        through :func:`invariant_matmul`, ``PointwiseConv2d`` through
        :func:`invariant_conv_pointwise`.  Must run inside
        :meth:`_model_snapshot` (forward overrides are undone by the
        snapshot restore); packable modules were already handled by the
        caller, and any module whose forward was already overridden this
        context is left alone.
        """
        model = self.model
        assert model is not None
        for module in model.modules():
            if "forward" in vars(module):
                continue  # packed / custom forward already installed
            if isinstance(module, Dense):
                module.forward = _invariant_dense_forward(module, kernel=kernel)
            elif isinstance(module, PointwiseConv2d):
                module.forward = _invariant_pointwise_forward(module,
                                                              kernel=kernel)

    @contextmanager
    def custom_forwards(self, factory: Callable[["PackedLayerSpec",
                                                 PointwiseConv2d],
                                                Callable[[np.ndarray],
                                                         np.ndarray]],
                        batch_invariant: bool = False,
                        kernel: str = DEFAULT_KERNEL) -> Iterator[None]:
        """Run the model with each packable layer's forward replaced.

        ``factory(spec, module)`` returns the substitute forward installed
        on ``module`` for the duration of the context; module state
        (training flags, activation caches, the overrides themselves) is
        restored on exit exactly as for :meth:`forward`.  This is the
        extension point other packed-execution semantics build on — the
        quantized integer path of
        :class:`~repro.combining.quantized.QuantizedPackedModel` installs
        its per-layer systolic execution through it.  With
        ``batch_invariant`` the *non-packed* weight-bearing modules run
        their batch-invariant twins using ``kernel`` (the factory's own
        forwards are untouched — the quantized integer path is
        batch-invariant by construction, its sums being exact).
        """
        if self.model is None:
            raise RuntimeError(
                "this PackedModel was assembled without an nn model; "
                "custom_forwards needs one (use from_model or pass model=...)")
        with self._model_snapshot():
            for spec in self.specs:
                module = spec.module
                assert module is not None
                module.forward = factory(spec, module)
            if batch_invariant:
                self._install_batch_invariant_modules(kernel)
            yield

    # -- batched exports ----------------------------------------------------
    def packed_layers(self) -> list[tuple[str, PackedFilterMatrix]]:
        """``(name, packed)`` pairs in layer order (the planners' shape)."""
        return [(spec.name, spec.packed) for spec in self.specs]

    def to_sparse(self) -> list[tuple[str, np.ndarray]]:
        """Reconstruct every layer's pruned dense filter matrix, in order.

        Returns writable copies of the cached realizations (see
        :meth:`PackedLayerSpec.realized`), so callers may mutate them
        freely without corrupting later exact-mode forwards.
        """
        return [(spec.name, spec.realized().copy()) for spec in self.specs]

    def layer_names(self) -> list[str]:
        return [spec.name for spec in self.specs]

    # -- aggregate metrics ---------------------------------------------------
    @property
    def num_layers(self) -> int:
        return len(self.specs)

    def packing_efficiency(self) -> float:
        """Cell-weighted packing efficiency across all packed layers."""
        total_cells = sum(spec.packed.weights.size for spec in self.specs)
        if total_cells == 0:
            return 0.0
        nonzero = sum(spec.nonzeros for spec in self.specs)
        return nonzero / total_cells

    def total_nonzeros(self) -> int:
        """Nonzero weights across all packed layers (after conflict pruning)."""
        return sum(spec.nonzeros for spec in self.specs)

    def multiplexing_degree(self) -> int:
        """Largest MX fan-in any layer needs."""
        degrees = [spec.packed.multiplexing_degree() for spec in self.specs]
        return max(degrees) if degrees else 0

    # -- cycle / tile accounting --------------------------------------------
    def observed_spatial_map(self) -> dict[str, tuple[int, int]]:
        """Per-layer (H, W) recorded by the last forward (possibly partial).

        Unlike :meth:`observed_spatial_sizes` this never raises — it is
        the raw observation record, used e.g. by the serving layer to key
        its plan cache on the spatial shapes a batch actually ran at.
        """
        return dict(self._observed_spatial)

    def observed_spatial_sizes(self) -> list[int]:
        """Linear spatial sizes recorded by the last :meth:`forward` call."""
        if len(self._observed_spatial) != len(self.specs):
            raise RuntimeError(
                "no spatial sizes observed yet; run forward() first or pass "
                "spatial_sizes to plan()")
        sizes: list[int] = []
        for spec in self.specs:
            height, width = self._observed_spatial[spec.name]
            if height != width:
                raise ValueError(
                    f"layer {spec.name!r} saw a non-square {height}x{width} "
                    "activation map; pass spatial_sizes to plan() explicitly")
            sizes.append(height)
        return sizes

    def plan(self, spatial_sizes: Sequence[int] | None = None,
             batch: int = 1,
             array_config: ArrayConfig | None = None) -> ModelExecutionPlan:
        """Plan the whole model on a systolic array via the timing model.

        ``spatial_sizes[i]`` is layer i's linear activation-map size (1 for
        fully connected layers); when omitted, the sizes observed during
        the last :meth:`forward` call are used.  The returned
        :class:`~repro.systolic.system.ModelExecutionPlan` aggregates
        tiles, cycles, and MAC counts across layers.
        """
        if spatial_sizes is None:
            spatial_sizes = self.observed_spatial_sizes()
        if array_config is None:
            array_config = ArrayConfig(rows=self.array_rows, cols=self.array_cols,
                                       alpha=max(1, self.multiplexing_degree()))
        system = SystolicSystem(array_config)
        return system.plan_model(self.packed_layers(), list(spatial_sizes),
                                 batch=batch)

    def summary(self, plan: ModelExecutionPlan | None = None) -> dict[str, Any]:
        """Aggregate packed-model accounting, optionally with a timing plan."""
        result: dict[str, Any] = {
            "num_layers": self.num_layers,
            "packing_efficiency": self.packing_efficiency(),
            "total_nonzeros": self.total_nonzeros(),
            "multiplexing_degree": self.multiplexing_degree(),
        }
        if plan is not None:
            result.update({
                "total_tiles": plan.total_tiles,
                "total_cycles": plan.total_cycles,
                "utilization": plan.utilization,
            })
        return result


def ensure_sample_batch(activations: np.ndarray) -> tuple[np.ndarray, bool]:
    """Promote a single ``(C, H, W)`` sample to a one-sample NCHW batch.

    Returns ``(batch, unbatched)`` where ``unbatched`` records whether the
    input was a bare sample (so callers can squeeze their result back).
    Anything already 4-D passes through untouched; other ranks raise the
    usual batching error downstream.
    """
    activations = np.asarray(activations, dtype=np.float64)
    if activations.ndim == 3:
        return activations[None, ...], True
    return activations, False


def split_activation_batch(activations: np.ndarray,
                           batch_size: int | None = None) -> list[np.ndarray]:
    """Validate an NCHW batch and split it into forward-sized chunks.

    The single home of the batching contract both :meth:`PackedModel.forward`
    and :meth:`~repro.combining.quantized.QuantizedPackedModel.forward`
    honour: ``batch_size=None`` (or a size covering the batch) yields one
    chunk, otherwise consecutive slices of at most ``batch_size`` samples.
    """
    activations = np.asarray(activations, dtype=np.float64)
    if activations.ndim != 4:
        raise ValueError("activations must be (batch, channels, H, W)")
    if batch_size is not None and batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    total = activations.shape[0]
    if batch_size is None or total <= batch_size:
        return [activations]
    return [activations[start:start + batch_size]
            for start in range(0, total, batch_size)]


def _recording_forward(module: PointwiseConv2d, spec: PackedLayerSpec,
                       observed: dict[str, tuple[int, int]]):
    """The module's own forward, plus spatial-size recording.

    Runs the *original class* forward on the (swapped-in) pruned weights,
    so the computation — and therefore the bits of the output — is exactly
    the dense reference forward.
    """
    def forward(x: np.ndarray) -> np.ndarray:
        if x.ndim == 4:
            observed[spec.name] = (x.shape[2], x.shape[3])
        return PointwiseConv2d.forward(module, x)
    return forward


def _mx_forward(module: PointwiseConv2d, spec: PackedLayerSpec,
                observed: dict[str, tuple[int, int]]):
    """Forward through the MX-cell multiply (hardware routing semantics)."""
    def forward(x: np.ndarray) -> np.ndarray:
        module.check_input(x)
        observed[spec.name] = (x.shape[2], x.shape[3])
        out = spec.packed.multiply_activations(x)
        if module.bias is not None:
            out = out + module.bias.data[None, :, None, None]
        return out
    return forward


def _invariant_pointwise_forward(module: PointwiseConv2d,
                                 weights: np.ndarray | None = None,
                                 spec: PackedLayerSpec | None = None,
                                 observed: dict[str, tuple[int, int]] | None = None,
                                 kernel: str = DEFAULT_KERNEL):
    """Batch-invariant pointwise forward over a fixed weight matrix.

    The contraction runs through
    :func:`repro.combining.kernels.invariant_conv_pointwise`, whose
    per-sample summation order never depends on the batch dimension, so a
    sample's output bits are independent of which batch it was coalesced
    into.  ``weights`` defaults to the module's own (the non-packed-layer
    case); packed layers pass their realized matrix plus ``spec`` /
    ``observed`` for spatial-size recording.
    """
    if weights is None:
        weights = module.weight.data

    def forward(x: np.ndarray) -> np.ndarray:
        module.check_input(x)
        if observed is not None:
            assert spec is not None
            observed[spec.name] = (x.shape[2], x.shape[3])
        out = invariant_conv_pointwise(x, weights, kernel=kernel)
        if module.bias is not None:
            out = out + module.bias.data[None, :, None, None]
        return out
    return forward


def _invariant_dense_forward(module: Dense, kernel: str = DEFAULT_KERNEL):
    """Batch-invariant twin of :meth:`Dense.forward`.

    Shares :func:`repro.combining.kernels.invariant_matmul` with the
    pointwise path rather than carrying its own einsum shape, so every
    weight-bearing module runs the same kernel family.
    """
    def forward(x: np.ndarray) -> np.ndarray:
        if x.ndim != 2 or x.shape[1] != module.in_features:
            raise ValueError(
                f"Dense expected input of shape (batch, {module.in_features}), "
                f"got {x.shape}")
        out = invariant_matmul(x, module.weight.data, kernel=kernel)
        if module.bias is not None:
            out = out + module.bias.data
        return out
    return forward
