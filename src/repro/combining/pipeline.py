"""End-to-end packing pipeline: group -> conflict-prune -> pack -> tile.

Every figure/table sweep runs the same per-layer flow — Algorithm 2
grouping under (α, γ), Algorithm 3 conflict pruning, packing into the
MX-cell layout, and tile counting for a systolic array — over a list of
layers.  :class:`PackingPipeline` is that flow as a reusable subsystem: it
takes ``(name_or_shape, matrix)`` layers plus a :class:`PipelineConfig`
and returns one :class:`LayerResult` per layer, optionally fanning the
layers out over a ``ProcessPoolExecutor``.

``workers=1`` (the default) runs serially and is deterministic by
construction; ``workers=N`` runs layers concurrently but returns results
in layer order, and every layer's work is seeded independently of its
schedule (the ``"random"`` grouping policy derives a per-layer generator
from ``(config.seed, layer_index)``), so parallel results are identical
to serial ones.  The worker pool is persistent: it is spawned lazily on
the first parallel ``run()`` and reused by later calls until
:meth:`PackingPipeline.close` (or the context-manager exit) shuts it
down, so repeated sweeps do not re-pay the process fork cost.

Usage::

    import numpy as np
    from repro.combining.pipeline import PackingPipeline, PipelineConfig

    rng = np.random.default_rng(0)
    matrix = rng.normal(size=(96, 94)) * (rng.random((96, 94)) < 0.16)
    pipeline = PackingPipeline(PipelineConfig(alpha=8, gamma=0.5,
                                              array_rows=32, array_cols=32,
                                              workers=4))
    result = pipeline.run([("conv3", matrix)])
    layer = result.layers[0]
    print(layer.columns_before, "->", layer.columns_after,
          f"tiles {layer.tiles_before} -> {layer.tiles_after}")

Both engine knobs thread through: ``grouping_engine`` selects the
Algorithm 2 implementation (:data:`~repro.combining.grouping.GROUPING_ENGINES`)
and ``prune_engine`` the Algorithm 3 one
(:data:`~repro.combining.pruning.PRUNE_ENGINES`).
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Sequence, TypeVar

import numpy as np

from repro.combining.grouping import (
    GROUPING_ENGINES,
    GROUPING_POLICIES,
    ColumnGrouping,
    group_columns,
)
from repro.combining.packing import PackedFilterMatrix, pack_filter_matrix
from repro.combining.pruning import PRUNE_ENGINES, column_combine_prune
from repro.combining.tiling import tile_count
from repro.obs.metrics import MetricsRegistry

#: The per-layer flow's stages, in execution order.  Stage spans and the
#: ``packing_stage_seconds{stage=...}`` histograms use these names.
PIPELINE_STAGES = ("group", "prune", "pack", "tile")

_ItemT = TypeVar("_ItemT")
_ResultT = TypeVar("_ResultT")


def ordered_pool_map(function: Callable[[_ItemT], _ResultT],
                     items: Iterable[_ItemT], workers: int = 1,
                     initializer: Callable[..., None] | None = None,
                     initargs: tuple = (),
                     pool: ProcessPoolExecutor | None = None) -> list[_ResultT]:
    """Map ``function`` over ``items``, optionally on a process pool.

    ``workers <= 1`` (or a single item) runs serially in-process; larger
    values fan out over a ``ProcessPoolExecutor``.  Results always come
    back in input order, and the serial path calls the *same* function on
    the same items, so parallel and serial runs are interchangeable as
    long as ``function`` is deterministic.  For ``workers > 1`` the
    function, items, and ``initargs`` must be picklable (module-level
    function, plain data arguments).

    ``initializer(*initargs)`` runs once per worker process (and once
    up-front on the serial path) — the place to install shared read-only
    context (e.g. datasets) so it is shipped per worker rather than
    pickled into every item.

    ``pool`` lends an already-running executor: the map runs on it and the
    caller keeps ownership (it is not shut down here), which is how
    :class:`PackingPipeline` reuses one persistent pool across ``run()``
    calls.  A lent pool must already carry any initializer it needs, so
    combining ``pool`` with ``initializer`` is rejected — the lent pool's
    workers were spawned long before this call and would silently skip it.
    """
    if pool is not None and initializer is not None:
        raise ValueError(
            "pass either initializer or pool, not both: a lent pool's workers "
            "are already running and would never execute the initializer")
    items = list(items)
    if workers <= 1 or len(items) <= 1:
        if initializer is not None:
            initializer(*initargs)
        return [function(item) for item in items]
    if pool is not None:
        return list(pool.map(function, items))
    with ProcessPoolExecutor(max_workers=min(workers, len(items)),
                             initializer=initializer,
                             initargs=initargs) as fresh_pool:
        return list(fresh_pool.map(function, items))


@dataclass(frozen=True)
class PipelineConfig:
    """Knobs of the per-layer packing flow plus the layer fan-out.

    ``alpha`` / ``gamma`` / ``policy`` parameterize Algorithm 2,
    ``grouping_engine`` / ``prune_engine`` select the Algorithm 2 / 3
    implementations, ``array_rows`` / ``array_cols`` size the systolic
    array the tile counts are computed for, ``workers`` is the number of
    layer-parallel processes (1 = serial), and ``seed`` feeds the
    per-layer generators of the ``"random"`` grouping policy.
    """

    alpha: int = 8
    gamma: float = 0.5
    policy: str = "dense-first"
    grouping_engine: str = "fast"
    prune_engine: str = "fast"
    array_rows: int = 32
    array_cols: int = 32
    workers: int = 1
    seed: int = 0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready mapping of every knob (the packed-artifact footprint).

        :func:`repro.combining.serialization.save_packed` embeds this in the
        artifact metadata so a served model records the exact pipeline
        settings it was packed under; :meth:`from_dict` round-trips it.
        """
        return {
            "alpha": self.alpha,
            "gamma": self.gamma,
            "policy": self.policy,
            "grouping_engine": self.grouping_engine,
            "prune_engine": self.prune_engine,
            "array_rows": self.array_rows,
            "array_cols": self.array_cols,
            "workers": self.workers,
            "seed": self.seed,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PipelineConfig":
        """Reconstruct a config from :meth:`to_dict` output (validated as usual)."""
        known = {field_name for field_name in cls.__dataclass_fields__}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown PipelineConfig fields: {unknown}")
        return cls(**data)

    def __post_init__(self) -> None:
        if self.alpha < 1:
            raise ValueError("alpha must be >= 1")
        if self.gamma < 0:
            raise ValueError("gamma must be non-negative")
        if self.policy not in GROUPING_POLICIES:
            raise ValueError(
                f"unknown grouping policy {self.policy!r}; "
                f"expected one of {GROUPING_POLICIES}")
        if self.grouping_engine not in GROUPING_ENGINES:
            raise ValueError(
                f"unknown grouping engine {self.grouping_engine!r}; "
                f"expected one of {GROUPING_ENGINES}")
        if self.prune_engine not in PRUNE_ENGINES:
            raise ValueError(
                f"unknown prune engine {self.prune_engine!r}; "
                f"expected one of {PRUNE_ENGINES}")
        if self.array_rows < 1 or self.array_cols < 1:
            raise ValueError("array dimensions must be >= 1")
        if self.workers < 1:
            raise ValueError("workers must be >= 1")


@dataclass
class LayerResult:
    """Everything the prune/group/pack/tile flow produced for one layer."""

    name: str
    rows: int
    columns_before: int
    columns_after: int
    density_before: float
    packing_efficiency: float
    tiles_before: int
    tiles_after: int
    grouping: ColumnGrouping
    packed: PackedFilterMatrix
    #: nonzero weights in the input matrix / surviving after Algorithm 3.
    nonzeros_before: int = 0
    nonzeros_after: int = 0
    #: Per-stage wall durations in integer nanoseconds, keyed by
    #: :data:`PIPELINE_STAGES`.  Integer ns ride home picklable from pool
    #: workers and fold into histograms independent of layer schedule.
    stage_ns: dict[str, int] = field(default_factory=dict)
    #: ``(stage, start_ns, end_ns)`` offsets relative to the layer's
    #: start, for timeline export (:func:`repro.obs.export.chrome_trace_from_pipeline`).
    stage_spans: list[tuple[str, int, int]] = field(default_factory=list)
    #: Wall-clock time the layer's flow started (anchors stage_spans).
    epoch: float = 0.0
    #: OS pid that packed this layer (shows pool fan-out in timelines).
    worker_pid: int = 0

    @property
    def tile_reduction(self) -> float:
        """Tile-count reduction factor (>= 1 when combining helps)."""
        return self.tiles_before / max(1, self.tiles_after)

    @property
    def pruned_weights(self) -> int:
        """Weights Algorithm 3 dropped to make every group conflict-free."""
        return self.nonzeros_before - self.nonzeros_after


@dataclass
class PipelineResult:
    """Ordered per-layer results of one :meth:`PackingPipeline.run` call."""

    config: PipelineConfig
    layers: list[LayerResult] = field(default_factory=list)

    def layer_names(self) -> list[str]:
        return [layer.name for layer in self.layers]

    def packed_layers(self) -> list[tuple[str, PackedFilterMatrix]]:
        """``(name, packed)`` pairs, the shape the systolic planners take.

        Ordering guarantee: pairs appear in the *input layer order* of the
        :meth:`PackingPipeline.run` call that produced this result —
        ``packed_layers()[i]`` is the packing of ``layers[i]`` — even when
        the run fanned layers out over a process pool (``workers > 1``),
        because :func:`ordered_pool_map` returns results in input order
        regardless of completion order.  Consumers that depend on forward
        order (cross-layer permutation, :class:`~repro.combining.inference.PackedModel`
        assembly, the systolic planners' per-layer spatial sizes) may rely
        on this.
        """
        return [(layer.name, layer.packed) for layer in self.layers]

    def tiles_before(self) -> list[int]:
        return [layer.tiles_before for layer in self.layers]

    def tiles_after(self) -> list[int]:
        return [layer.tiles_after for layer in self.layers]

    @property
    def total_tiles_before(self) -> int:
        return sum(layer.tiles_before for layer in self.layers)

    @property
    def total_tiles_after(self) -> int:
        return sum(layer.tiles_after for layer in self.layers)

    def stage_ns_totals(self) -> dict[str, int]:
        """Exact per-stage nanosecond totals across all layers.

        Integer adds over the per-layer ``stage_ns`` records, so the
        totals are identical whichever workers packed which layers.
        """
        totals = {stage: 0 for stage in PIPELINE_STAGES}
        for layer in self.layers:
            for stage, nanoseconds in layer.stage_ns.items():
                totals[stage] = totals.get(stage, 0) + int(nanoseconds)
        return totals


def _layer_name(layer_id: Any, index: int) -> str:
    """Display name for a layer: LayerShape.name, a string, or a default."""
    name = getattr(layer_id, "name", layer_id)
    if isinstance(name, str):
        return name
    return f"layer{index}"


def _pack_one_layer(task: tuple[PipelineConfig, str, np.ndarray, int]
                    ) -> LayerResult:
    """Run the whole per-layer flow; module-level so process pools can pickle it.

    Each stage (group / prune / pack / tile) is timed with
    ``perf_counter_ns``; the integer durations and span offsets travel
    back with the :class:`LayerResult`, so a parallel run's telemetry is
    folded together in the parent exactly like the serving path folds
    worker snapshots — integer adds, independent of which worker ran
    which layer.  The prune stage calls Algorithm 3 explicitly and hands
    the pruned matrix to the packer (``prune_conflicts=False``), which
    scatters the same entries the fused call would — packings are
    bit-identical to the un-instrumented flow.
    """
    config, name, matrix, layer_index = task
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"layer {name!r}: matrix must be 2-D")
    rng = None
    if config.policy == "random":
        # Seeded per layer (not shared across layers) so results do not
        # depend on which worker processes which layer.
        rng = np.random.default_rng((config.seed, layer_index))

    epoch = time.time()
    started = time.perf_counter_ns()
    spans: list[tuple[str, int, int]] = []

    def _staged(stage: str, call):
        start = time.perf_counter_ns() - started
        value = call()
        spans.append((stage, start, time.perf_counter_ns() - started))
        return value

    grouping = _staged("group", lambda: group_columns(
        matrix, alpha=config.alpha, gamma=config.gamma,
        policy=config.policy, rng=rng, engine=config.grouping_engine))
    pruned = _staged("prune", lambda: column_combine_prune(
        matrix, grouping, engine=config.prune_engine)[0])
    packed = _staged("pack", lambda: pack_filter_matrix(
        pruned, grouping, prune_conflicts=False))
    tiles = _staged("tile", lambda: (
        tile_count(matrix.shape[0], matrix.shape[1],
                   config.array_rows, config.array_cols),
        tile_count(matrix.shape[0], grouping.num_groups,
                   config.array_rows, config.array_cols)))
    return LayerResult(
        name=name,
        rows=matrix.shape[0],
        columns_before=matrix.shape[1],
        columns_after=grouping.num_groups,
        density_before=(float(np.count_nonzero(matrix) / matrix.size)
                        if matrix.size else 0.0),
        packing_efficiency=packed.packing_efficiency(),
        tiles_before=tiles[0],
        tiles_after=tiles[1],
        grouping=grouping,
        packed=packed,
        nonzeros_before=int(np.count_nonzero(matrix)),
        nonzeros_after=int(np.count_nonzero(packed.weights)),
        stage_ns={stage: end - start for stage, start, end in spans},
        stage_spans=spans,
        epoch=epoch,
        worker_pid=os.getpid(),
    )


class PackingPipeline:
    """Runs group -> conflict-prune -> pack -> tile over a list of layers.

    With ``workers > 1`` the pipeline owns a **persistent**
    ``ProcessPoolExecutor``: it is spawned lazily on the first parallel
    :meth:`run` and reused by every subsequent call, so sweeps that call
    the pipeline many times (fig15a's three settings, table2's measured +
    baseline plans, fig16's settings x networks grid) pay the ~100 ms
    worker fork cost once instead of per call.  The pool holds OS
    processes, so use the pipeline as a context manager (or call
    :meth:`close`) when its lifetime is scoped::

        with PackingPipeline(PipelineConfig(workers=4)) as pipeline:
            for layers in sweeps:
                results.append(pipeline.run(layers))

    ``close()`` is idempotent and a closed pipeline may keep running —
    serial runs never need the pool, and the next parallel ``run()``
    simply spawns a fresh one.  Results are identical whether the pool is
    fresh, reused, borrowed, or absent (``workers=1``).

    Several pipelines with *different* configs can also share one
    executor: pass a running ``ProcessPoolExecutor`` as ``pool`` and the
    pipeline borrows it instead of spawning its own (the borrower never
    shuts it down — the lender keeps ownership).  The figure/table sweeps
    that plan multiple (α, γ) settings per run (fig15a, table2) fork one
    pool this way instead of one per setting.
    """

    def __init__(self, config: PipelineConfig | None = None,
                 pool: ProcessPoolExecutor | None = None,
                 metrics: MetricsRegistry | None = None):
        self.config = config if config is not None else PipelineConfig()
        self._pool = pool
        self._owns_pool = pool is None
        #: Pipeline telemetry: ``packing_stage_seconds{stage=...}``
        #: histograms plus layer/column/tile counters.  Stage timings are
        #: measured inside the (possibly pooled) per-layer flow and ride
        #: home as integers on each :class:`LayerResult`, then fold in
        #: here — the same exact, schedule-independent merge the serving
        #: path uses for worker snapshots.  Pass a shared registry to
        #: aggregate several pipelines into one exposition.
        self.metrics = metrics if metrics is not None else MetricsRegistry()

    def _record_layer_metrics(self, layers: Iterable[LayerResult]) -> None:
        for layer in layers:
            for stage, nanoseconds in layer.stage_ns.items():
                self.metrics.histogram("packing_stage_seconds",
                                       labels={"stage": stage}
                                       ).record(nanoseconds / 1e9)
            self.metrics.counter("packing_layers").inc()
            self.metrics.counter("packing_columns_before"
                                 ).inc(layer.columns_before)
            self.metrics.counter("packing_columns_after"
                                 ).inc(layer.columns_after)
            self.metrics.counter("packing_tiles_saved"
                                 ).inc(max(0, layer.tiles_before
                                           - layer.tiles_after))
            self.metrics.counter("packing_pruned_weights"
                                 ).inc(layer.pruned_weights)

    # -- persistent-pool lifecycle ------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        """The persistent executor: borrowed, or spawned (once) on first use."""
        if self._pool is None:
            self._pool = ProcessPoolExecutor(max_workers=self.config.workers)
            self._owns_pool = True
        return self._pool

    @property
    def pool_active(self) -> bool:
        """Whether a worker pool (owned or borrowed) is currently attached."""
        return self._pool is not None

    def close(self) -> None:
        """Release the worker pool: shut it down if owned, detach if borrowed."""
        pool, self._pool = self._pool, None
        owned, self._owns_pool = self._owns_pool, True
        if pool is not None and owned:
            pool.shutdown(wait=True)

    def __enter__(self) -> "PackingPipeline":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - interpreter-dependent
        try:
            self.close()
        except Exception:
            pass

    # -- running ------------------------------------------------------------
    def run_layer(self, name: str, matrix: np.ndarray,
                  layer_index: int = 0) -> LayerResult:
        """The per-layer flow for a single matrix, always in-process."""
        result = _pack_one_layer((self.config, name, matrix, layer_index))
        self._record_layer_metrics([result])
        return result

    def run(self, layers: Sequence[tuple[Any, np.ndarray] | np.ndarray]
            ) -> PipelineResult:
        """Run every layer through the flow, fanning out when ``workers > 1``.

        ``layers`` items may be ``(LayerShape, matrix)`` pairs (as produced
        by :func:`repro.experiments.workloads.sparse_network`),
        ``(name, matrix)`` pairs, or bare matrices (named ``layerN``).
        Results come back in input layer order (see
        :meth:`PipelineResult.packed_layers`).
        """
        tasks = []
        for index, item in enumerate(layers):
            if isinstance(item, tuple):
                layer_id, matrix = item
            else:
                layer_id, matrix = None, item
            tasks.append((self.config, _layer_name(layer_id, index),
                          matrix, index))
        pool = None
        if self.config.workers > 1 and len(tasks) > 1:
            pool = self._ensure_pool()
        results = ordered_pool_map(_pack_one_layer, tasks, self.config.workers,
                                   pool=pool)
        self._record_layer_metrics(results)
        return PipelineResult(self.config, results)
