"""Packed uint64 bitset helpers for the vectorized grouping engine.

The fast column-grouping engine represents the occupied-row set of every
group as a row of a ``(G, ceil(N / 64))`` uint64 matrix.  Candidate columns
are packed the same way, so the overlap (new conflicts) and union size
(combined density) of a candidate against *all* existing groups reduce to
one broadcasted ``bitwise_and`` plus a popcount — no per-group Python loop.

Popcounts use :func:`numpy.bitwise_count` when available (NumPy >= 2.0)
and otherwise fall back to a precomputed byte-popcount table applied to a
uint8 view of the words; both paths return identical results.
"""

from __future__ import annotations

import numpy as np

#: Number of bits per bitset word.
WORD_BITS = 64

#: Popcount of every possible byte value, for the table-lookup fallback.
_BYTE_POPCOUNT = np.array([bin(value).count("1") for value in range(256)],
                          dtype=np.int64)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def words_for_rows(num_rows: int) -> int:
    """Number of uint64 words needed to hold ``num_rows`` bits (at least 1)."""
    if num_rows < 0:
        raise ValueError("num_rows must be non-negative")
    return max(1, (num_rows + WORD_BITS - 1) // WORD_BITS)


def pack_columns(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(N, M)`` matrix into per-column ``(M, W)`` bitsets.

    Row ``m`` of the result holds the N-bit occupancy pattern of column
    ``m`` (bit ``n`` set iff ``mask[n, m]``), zero-padded to a whole number
    of uint64 words.  Bit order within the words is irrelevant to the
    engine: it only ever combines bitsets with ``&`` / ``|`` and counts set
    bits, both of which are position-agnostic.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError("mask must be 2-D")
    num_rows, num_columns = mask.shape
    words = words_for_rows(num_rows)
    packed_bytes = np.packbits(mask.T, axis=1, bitorder="little")
    padded = np.zeros((num_columns, words * (WORD_BITS // 8)), dtype=np.uint8)
    padded[:, :packed_bytes.shape[1]] = packed_bytes
    return padded.view(np.uint64)


def popcount(bits: np.ndarray) -> np.ndarray:
    """Set-bit count along the last (word) axis of a uint64 bitset array.

    For a ``(..., W)`` array of words, returns a ``(...,)`` int64 array of
    total set bits per bitset.
    """
    bits = np.asarray(bits, dtype=np.uint64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(bits).sum(axis=-1, dtype=np.int64)
    as_bytes = np.ascontiguousarray(bits).view(np.uint8)
    return _BYTE_POPCOUNT[as_bytes].sum(axis=-1, dtype=np.int64)
