"""Packed uint64 bitset helpers for the vectorized combining engines.

The fast column-grouping engine (Algorithm 2) represents the occupied-row
set of every group as a row of a ``(G, ceil(N / 64))`` uint64 matrix.
Candidate columns are packed the same way, so the overlap (new conflicts)
and union size (combined density) of a candidate against *all* existing
groups reduce to one broadcasted ``bitwise_and`` plus a popcount — no
per-group Python loop.

The substrate also covers per-group occupancy for Algorithm 3's packed
flat layout (:func:`repro.combining.grouping.group_layout`):
:func:`group_occupancy` ORs the member columns of every group into the
``(G, ceil(N / 64))`` occupancy matrix with one ``bitwise_or.reduceat``
pass, and :func:`unpack_rows` turns those words back into the boolean
rows-with-a-weight matrix.  The differential suite uses the pair to
cross-check which (row, group) cells the prune engines may keep a weight
in; the fast prune engine itself derives occupancy implicitly from its
scatter pass (see :mod:`repro.combining.pruning`).

Popcounts use :func:`numpy.bitwise_count` when available (NumPy >= 2.0)
and otherwise fall back to a precomputed byte-popcount table applied to a
uint8 view of the words; both paths return identical results.
"""

from __future__ import annotations

import numpy as np

#: Number of bits per bitset word.
WORD_BITS = 64

#: Popcount of every possible byte value, for the table-lookup fallback.
_BYTE_POPCOUNT = np.array([bin(value).count("1") for value in range(256)],
                          dtype=np.int64)

_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def words_for_rows(num_rows: int) -> int:
    """Number of uint64 words needed to hold ``num_rows`` bits (at least 1)."""
    if num_rows < 0:
        raise ValueError("num_rows must be non-negative")
    return max(1, (num_rows + WORD_BITS - 1) // WORD_BITS)


def pack_columns(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean ``(N, M)`` matrix into per-column ``(M, W)`` bitsets.

    Row ``m`` of the result holds the N-bit occupancy pattern of column
    ``m`` (bit ``n`` set iff ``mask[n, m]``), zero-padded to a whole number
    of uint64 words.  Bit order within the words is irrelevant to the
    engine: it only ever combines bitsets with ``&`` / ``|`` and counts set
    bits, both of which are position-agnostic.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise ValueError("mask must be 2-D")
    num_rows, num_columns = mask.shape
    words = words_for_rows(num_rows)
    packed_bytes = np.packbits(mask.T, axis=1, bitorder="little")
    padded = np.zeros((num_columns, words * (WORD_BITS // 8)), dtype=np.uint8)
    padded[:, :packed_bytes.shape[1]] = packed_bytes
    return padded.view(np.uint64)


def unpack_rows(bits: np.ndarray, num_rows: int) -> np.ndarray:
    """Inverse of :func:`pack_columns`: expand bitsets back to boolean rows.

    For a ``(..., W)`` uint64 bitset array, returns a ``(..., num_rows)``
    boolean array whose entry ``[..., n]`` is bit ``n`` of the bitset —
    i.e. ``unpack_rows(pack_columns(mask), N).T`` reconstructs ``mask``.
    """
    bits = np.ascontiguousarray(np.asarray(bits, dtype=np.uint64))
    if num_rows < 0:
        raise ValueError("num_rows must be non-negative")
    if bits.shape[-1] * WORD_BITS < num_rows:
        raise ValueError("bitsets are narrower than num_rows")
    as_bytes = bits.view(np.uint8).reshape(*bits.shape[:-1], -1)
    expanded = np.unpackbits(as_bytes, axis=-1, bitorder="little",
                             count=num_rows)
    return expanded.astype(bool)


def group_occupancy(column_bits: np.ndarray, member_columns: np.ndarray,
                    group_starts: np.ndarray) -> np.ndarray:
    """Per-group occupied-row bitsets, one ``bitwise_or.reduceat`` pass.

    ``column_bits`` is the ``(M, W)`` per-column bitset matrix from
    :func:`pack_columns`; ``member_columns`` concatenates every group's
    column indices and ``group_starts`` marks where each group begins in
    that concatenation.  Returns the ``(G, W)`` occupancy matrix whose row
    ``g`` ORs together the bitsets of group ``g``'s member columns.
    """
    column_bits = np.asarray(column_bits, dtype=np.uint64)
    group_starts = np.asarray(group_starts, dtype=np.intp)
    if group_starts.size == 0:
        return np.zeros((0, column_bits.shape[-1]), dtype=np.uint64)
    return np.bitwise_or.reduceat(column_bits[member_columns], group_starts,
                                  axis=0)


def popcount(bits: np.ndarray) -> np.ndarray:
    """Set-bit count along the last (word) axis of a uint64 bitset array.

    For a ``(..., W)`` array of words, returns a ``(...,)`` int64 array of
    total set bits per bitset.
    """
    bits = np.asarray(bits, dtype=np.uint64)
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(bits).sum(axis=-1, dtype=np.int64)
    as_bytes = np.ascontiguousarray(bits).view(np.uint8)
    return _BYTE_POPCOUNT[as_bytes].sum(axis=-1, dtype=np.int64)
