"""Word-level cycle-accurate simulation of the weight-stationary dataflow.

This simulator moves data words bottom-to-top and partial sums left-to-right
through a grid of registers with the input skew of Figure 1c, computes every
output from the dataflow itself, and records the word-slot at which each
result exits the right edge.  It validates (a) the functional correctness
of the dataflow and (b) the analytic latency model in
:mod:`repro.systolic.timing`: the last result exits at word-slot
``(data_words - 1) + (rows - 1) + (cols - 1)``, i.e. after
``data_words + rows + cols - 2`` word-slots in total.

The simulation is O(rows x cols x slots) pure Python and is intended for
the small arrays used in tests, not for full-network benchmarking (use
:class:`repro.systolic.array.SystolicArray` for that).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class CycleSimResult:
    """Output of the cycle-accurate simulation."""

    output: np.ndarray
    #: word-slot (0-based) at which the last result word left the array.
    last_exit_slot: int
    #: total word-slots during which the array was active.
    total_slots: int
    #: exit slot of every output word, shape (rows, data_words).
    exit_slots: np.ndarray


def simulate_weight_stationary(filter_matrix: np.ndarray, data: np.ndarray) -> CycleSimResult:
    """Simulate ``filter_matrix @ data`` on a weight-stationary array.

    ``filter_matrix`` is (rows x cols) and is pre-stored in the cells;
    ``data`` is (cols x words).  Data word ``data[j, l]`` enters row 0 of
    column ``j`` at word-slot ``l + j`` (the input skew of Figure 1c),
    moves up one row per slot, and meets the partial sum for output
    ``(i, l)`` at cell ``(i, j)`` at slot ``l + i + j``; the finished
    result exits the right edge at slot ``l + i + cols - 1``.
    """
    filter_matrix = np.asarray(filter_matrix, dtype=np.float64)
    data = np.asarray(data, dtype=np.float64)
    if filter_matrix.ndim != 2 or data.ndim != 2:
        raise ValueError("filter_matrix and data must be 2-D")
    rows, cols = filter_matrix.shape
    if data.shape[0] != cols:
        raise ValueError("data must have one row per filter-matrix column")
    words = data.shape[1]
    if words == 0:
        return CycleSimResult(np.zeros((rows, 0)), last_exit_slot=-1, total_slots=0,
                              exit_slots=np.zeros((rows, 0), dtype=int))

    # Per-cell registers: the data word and partial sum each cell consumes
    # during the current slot, plus validity flags.
    data_value = np.zeros((rows, cols))
    data_valid = np.zeros((rows, cols), dtype=bool)
    sum_value = np.zeros((rows, cols))
    sum_valid = np.zeros((rows, cols), dtype=bool)

    output = np.zeros((rows, words))
    exit_slots = np.full((rows, words), -1, dtype=int)
    exit_count = np.zeros(rows, dtype=int)
    last_exit = -1

    total_slots = words + rows + cols - 2
    for slot in range(total_slots):
        # Inject skewed data into row 0 and fresh zero partial sums into
        # column 0 (aligned with the data word they will accumulate over).
        for j in range(cols):
            word_index = slot - j
            if 0 <= word_index < words:
                data_value[0, j] = data[j, word_index]
                data_valid[0, j] = True
            else:
                data_value[0, j] = 0.0
                data_valid[0, j] = False
        sum_value[:, 0] = 0.0
        sum_valid[:, 0] = data_valid[:, 0]

        # Every cell with a valid (data, partial sum) pair performs its MAC.
        active = data_valid & sum_valid
        produced = np.where(active, sum_value + filter_matrix * data_value, 0.0)

        # Results leaving the right edge this slot.
        for i in range(rows):
            if active[i, cols - 1]:
                index = exit_count[i]
                output[i, index] = produced[i, cols - 1]
                exit_slots[i, index] = slot
                exit_count[i] += 1
                last_exit = max(last_exit, slot)

        # Shift registers for the next slot: partial sums move one column
        # right, data words move one row up.
        next_sum_value = np.zeros_like(sum_value)
        next_sum_valid = np.zeros_like(sum_valid)
        next_sum_value[:, 1:] = produced[:, :-1]
        next_sum_valid[:, 1:] = active[:, :-1]

        next_data_value = np.zeros_like(data_value)
        next_data_valid = np.zeros_like(data_valid)
        next_data_value[1:, :] = data_value[:-1, :]
        next_data_valid[1:, :] = data_valid[:-1, :]

        data_value, data_valid = next_data_value, next_data_valid
        sum_value, sum_valid = next_sum_value, next_sum_valid

    if not np.all(exit_count == words):
        raise RuntimeError("systolic simulation did not drain all results")
    return CycleSimResult(output=output, last_exit_slot=last_exit,
                          total_slots=total_slots, exit_slots=exit_slots)
