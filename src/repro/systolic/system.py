"""End-to-end execution planning and quantized inference on systolic arrays.

Two levels of fidelity are provided:

* :meth:`SystolicSystem.plan_model` — given the packed filter matrices of a
  trained CNN and the spatial size of each layer's activation map, produce
  a per-layer :class:`LayerExecution` (tiles, cycles, useful and occupied
  MACs).  This is what the ASIC / FPGA evaluation (Section 7) consumes.
* :meth:`SystolicSystem.run_layer` — run a single layer's quantized
  computation exactly as the hardware would: shift block, 8-bit quantized
  inputs and weights, integer matrix multiplication through the (tiled,
  packed) array, 32-bit accumulation, ReLU, and 8-bit re-quantization.
  Tests use this path to show that packed integer execution matches the
  pruned floating-point layer up to quantization error.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.combining.packing import PackedFilterMatrix
from repro.quant.linear import LinearQuantizer
from repro.systolic.array import ArrayConfig
from repro.systolic.blocks import ReluQuantBlock, ShiftBlock
from repro.systolic.tiles import TiledMatmul
from repro.systolic.timing import cycles_for_tile, words_per_sample


@dataclass
class LayerExecution:
    """Planned execution of one packed layer on the systolic array."""

    name: str
    rows: int
    packed_columns: int
    original_columns: int
    spatial_size: int
    num_tiles: int
    cycles: int
    useful_macs: int
    occupied_macs: int

    @property
    def utilization(self) -> float:
        if self.occupied_macs == 0:
            return 0.0
        return self.useful_macs / self.occupied_macs


@dataclass
class ModelExecutionPlan:
    """Totals across all layers of a planned model execution."""

    layers: list[LayerExecution] = field(default_factory=list)

    @property
    def total_cycles(self) -> int:
        return sum(layer.cycles for layer in self.layers)

    @property
    def total_tiles(self) -> int:
        return sum(layer.num_tiles for layer in self.layers)

    @property
    def total_useful_macs(self) -> int:
        return sum(layer.useful_macs for layer in self.layers)

    @property
    def total_occupied_macs(self) -> int:
        return sum(layer.occupied_macs for layer in self.layers)

    @property
    def utilization(self) -> float:
        occupied = self.total_occupied_macs
        if occupied == 0:
            return 0.0
        return self.total_useful_macs / occupied


class SystolicSystem:
    """The full systolic array system of Figure 6 (array + shift + ReLU blocks)."""

    def __init__(self, config: ArrayConfig | None = None):
        self.config = config if config is not None else ArrayConfig()
        self.tiled = TiledMatmul(self.config)
        self.relu_quant = ReluQuantBlock(output_bits=self.config.input_bits)

    # -- planning ---------------------------------------------------------------
    def plan_layer(self, name: str, packed: PackedFilterMatrix, spatial_size: int,
                   batch: int = 1) -> LayerExecution:
        """Tile counts, cycles, and MAC counts for one packed layer."""
        words = words_per_sample(spatial_size, batch)
        data = np.zeros((packed.original_shape[1], 1))
        # Execute a single-word multiplication just to enumerate the tiles;
        # the cycle model is then evaluated at the real word count.
        result = self.tiled.multiply_packed(packed, data)
        cycles = 0
        useful = 0
        occupied = 0
        for index, tile in enumerate(result.tiles):
            tile_rows = tile.row_end - tile.row_start
            tile_cols = tile.col_end - tile.col_start
            timing = cycles_for_tile(tile_rows, tile_cols, words, self.config.timing)
            if index == 0:
                cycles += timing.weight_load_cycles + timing.matmul_cycles
            else:
                cycles += max(timing.matmul_cycles, timing.weight_load_cycles)
            # The dummy run used a single data word, so per-tile MAC counts
            # scale linearly with the real word count.
            useful += tile.useful_macs * words
            occupied += tile.occupied_macs * words
        return LayerExecution(
            name=name,
            rows=packed.num_rows,
            packed_columns=packed.num_groups,
            original_columns=packed.original_shape[1],
            spatial_size=spatial_size,
            num_tiles=result.num_tiles,
            cycles=cycles,
            useful_macs=useful,
            occupied_macs=occupied,
        )

    def plan_model(self, packed_layers: list[tuple[str, PackedFilterMatrix]],
                   spatial_sizes: list[int], batch: int = 1) -> ModelExecutionPlan:
        """Plan every layer of a model; ``spatial_sizes[i]`` is layer i's map size."""
        if len(packed_layers) != len(spatial_sizes):
            raise ValueError("need one spatial size per packed layer")
        plan = ModelExecutionPlan()
        for (name, packed), spatial in zip(packed_layers, spatial_sizes):
            plan.layers.append(self.plan_layer(name, packed, spatial, batch=batch))
        return plan

    # -- quantized execution -------------------------------------------------------
    def run_layer(self, packed: PackedFilterMatrix, activations: np.ndarray,
                  apply_shift: bool = True, apply_relu: bool = True,
                  input_quantizer: LinearQuantizer | None = None,
                  weight_quantizer: LinearQuantizer | None = None
                  ) -> tuple[np.ndarray, dict]:
        """Run one layer with 8-bit inputs / weights and integer accumulation.

        Parameters
        ----------
        packed:
            The layer's packed filter matrix (float weights; quantized here).
        activations:
            Input activations, shape (batch, in_channels, H, W), floats.
        apply_shift:
            Whether to run the shift block first (pointwise-only layers such
            as residual shortcuts skip it).
        apply_relu:
            Whether to apply ReLU before re-quantization.
        input_quantizer / weight_quantizer:
            Pre-fit :class:`~repro.quant.linear.LinearQuantizer` to use
            instead of refitting on this call's data.  A deployed array
            runs with calibrated, frozen scales
            (:meth:`repro.combining.quantized.QuantizedPackedModel.calibrate`);
            per-call refitting remains the default for single-layer use.
            The quantizer's bit width must match the array's
            ``config.input_bits`` — the MX cells are built for one width.

        Returns
        -------
        ``(output_activations, info)`` where ``output_activations`` is the
        dequantized float result with shape (batch, out_channels, H, W) and
        ``info`` carries the tiled-execution statistics, the quantizers,
        and their saturation rates on this call's data.
        """
        activations = np.asarray(activations, dtype=np.float64)
        if activations.ndim != 4:
            raise ValueError("activations must be (batch, channels, H, W)")
        batch, channels, height, width = activations.shape
        if channels != packed.original_shape[1]:
            raise ValueError("activation channels do not match the packed matrix")

        if apply_shift:
            shift = ShiftBlock(channels)
            data_matrix = shift.to_data_matrix(activations)
        else:
            data_matrix = activations.transpose(1, 0, 2, 3).reshape(channels, -1)

        if input_quantizer is None:
            input_quantizer = LinearQuantizer.fit(data_matrix,
                                                  bits=self.config.input_bits)
        if weight_quantizer is None:
            weight_quantizer = LinearQuantizer.fit(packed.weights,
                                                   bits=self.config.input_bits)
        for role, quantizer in (("input", input_quantizer),
                                ("weight", weight_quantizer)):
            if quantizer.bits != self.config.input_bits:
                raise ValueError(
                    f"{role} quantizer is {quantizer.bits}-bit but the array's "
                    f"cells are {self.config.input_bits}-bit")
        data_int, input_saturation = \
            input_quantizer.quantize_with_saturation(data_matrix)
        weights_int, weight_saturation = \
            weight_quantizer.quantize_with_saturation(packed.weights)
        packed_int = PackedFilterMatrix(
            weights=weights_int.astype(np.float64),
            channel_index=packed.channel_index.copy(),
            grouping=packed.grouping,
            original_shape=packed.original_shape,
        )

        result = self.tiled.multiply_packed(packed_int, data_int.astype(np.float64))
        accumulations = result.output * (input_quantizer.scale * weight_quantizer.scale)
        if apply_relu:
            accumulations = np.maximum(accumulations, 0.0)
        output = accumulations.reshape(packed.num_rows, batch, height, width)
        output = output.transpose(1, 0, 2, 3)
        info = {
            "num_tiles": result.num_tiles,
            "cycles": result.total_cycles,
            "useful_macs": result.useful_macs,
            "occupied_macs": result.occupied_macs,
            "utilization": result.utilization,
            "input_quantizer": input_quantizer,
            "weight_quantizer": weight_quantizer,
            "input_saturation": input_saturation,
            "weight_saturation": weight_saturation,
        }
        return output, info

    def requantize(self, accumulations: np.ndarray, scale: float | None = None
                   ) -> tuple[np.ndarray, LinearQuantizer]:
        """The ReLU / re-quantization hook between chained layers (Fig. 12).

        Rectifies the 32-bit accumulations and re-quantizes them to the
        array's input width so they can feed the next layer's input buffer.
        Pass a calibrated ``scale`` to reuse a frozen output quantizer;
        otherwise one is fit on the rectified values.  Returns
        ``(int outputs, quantizer)``.
        """
        return self.relu_quant.apply(accumulations, scale=scale)
