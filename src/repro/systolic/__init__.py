"""Weight-stationary bit-serial systolic array simulator (Section 4).

Layers of the simulator, from smallest to largest:

* :mod:`~repro.systolic.mac` — a genuinely bit-serial multiply-accumulate
  that processes the 8-bit input one bit per cycle (Figure 7).
* :mod:`~repro.systolic.cells` — the three systolic cell types of
  Figure 10: BL (balanced), IL (interleaved, hiding the 32-bit
  accumulation latency behind four input streams), and MX (multiplexed,
  selecting one of up to α input channels per cell, the hardware support
  for column combining).
* :mod:`~repro.systolic.timing` — the cycle model for balanced /
  unbalanced / interleaved cells and for whole tiles (Figures 8 and 9).
* :mod:`~repro.systolic.array` — a functional weight-stationary array that
  multiplies packed or unpacked filter matrices by data matrices and
  reports cycle counts.
* :mod:`~repro.systolic.cycle_sim` — a word-level cycle-accurate
  simulation of the skewed dataflow, used to validate the analytic timing
  model on small arrays.
* :mod:`~repro.systolic.tiles` — partitioned matrix multiplication
  (Figure 14a), alternating weight loads with matrix multiplication.
* :mod:`~repro.systolic.blocks` — the shift, ReLU, and quantization blocks
  that surround the array (Figure 12).
* :mod:`~repro.systolic.pipeline` — cross-layer pipelining of a chain of
  arrays (Section 3.6).
* :mod:`~repro.systolic.system` — end-to-end integer inference of a packed
  CNN through per-layer systolic arrays.
"""

from repro.systolic.mac import BitSerialMAC, bit_serial_multiply
from repro.systolic.cells import BLCell, ILCell, MXCell
from repro.systolic.timing import CellTiming, TileTiming, cycles_for_tile
from repro.systolic.array import SystolicArray, ArrayConfig, MatmulResult
from repro.systolic.cycle_sim import simulate_weight_stationary
from repro.systolic.tiles import TiledMatmul, TiledMatmulResult
from repro.systolic.blocks import ShiftBlock, ReluQuantBlock
from repro.systolic.pipeline import LayerLatency, pipeline_latency, sequential_latency
from repro.systolic.system import SystolicSystem, LayerExecution

__all__ = [
    "BitSerialMAC",
    "bit_serial_multiply",
    "BLCell",
    "ILCell",
    "MXCell",
    "CellTiming",
    "TileTiming",
    "cycles_for_tile",
    "SystolicArray",
    "ArrayConfig",
    "MatmulResult",
    "simulate_weight_stationary",
    "TiledMatmul",
    "TiledMatmulResult",
    "ShiftBlock",
    "ReluQuantBlock",
    "LayerLatency",
    "pipeline_latency",
    "sequential_latency",
    "SystolicSystem",
    "LayerExecution",
]
