"""Functional weight-stationary systolic array (Figure 1c / Figure 11).

The array computes exact integer (or float) matrix products with the same
semantics as the hardware — including the MX-cell channel multiplexing used
for packed filter matrices — and reports the cycle counts predicted by the
timing model.  The word-level cycle-accurate simulation lives in
:mod:`repro.systolic.cycle_sim`; this module is the fast path used by the
tiled scheduler, the end-to-end system, and the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.combining.packing import PackedFilterMatrix
from repro.systolic.timing import CellTiming, cycles_for_tile


@dataclass(frozen=True)
class ArrayConfig:
    """Dimensions and numeric configuration of a systolic array."""

    rows: int = 32
    cols: int = 32
    input_bits: int = 8
    accumulation_bits: int = 32
    #: maximum multiplexing degree of the MX cells (columns per group).
    alpha: int = 8
    interleaved: bool = True

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("array dimensions must be >= 1")
        if self.alpha < 1:
            raise ValueError("alpha must be >= 1")

    @property
    def timing(self) -> CellTiming:
        return CellTiming(input_bits=self.input_bits,
                          accumulation_bits=self.accumulation_bits,
                          interleaved=self.interleaved)

    @property
    def num_cells(self) -> int:
        return self.rows * self.cols


@dataclass
class MatmulResult:
    """Output of one (untiled) matrix multiplication on the array."""

    output: np.ndarray
    cycles: int
    #: multiply-accumulates that involved a nonzero weight (useful work).
    useful_macs: int
    #: cell-slots that were occupied for the duration of the multiplication
    #: (useful or not) — the denominator of utilization efficiency.
    occupied_macs: int

    @property
    def utilization(self) -> float:
        if self.occupied_macs == 0:
            return 0.0
        return self.useful_macs / self.occupied_macs


class SystolicArray:
    """A weight-stationary array executing dense or packed filter matrices."""

    def __init__(self, config: ArrayConfig | None = None):
        self.config = config if config is not None else ArrayConfig()

    # -- dense filter matrices --------------------------------------------------
    def multiply_dense(self, filter_matrix: np.ndarray, data: np.ndarray) -> MatmulResult:
        """Multiply an (N x M) filter matrix by an (M x L) data matrix.

        The filter matrix must fit in the array (use
        :class:`~repro.systolic.tiles.TiledMatmul` otherwise).  Zero weights
        still occupy cells — this is the baseline behaviour column combining
        removes.
        """
        filter_matrix = np.asarray(filter_matrix)
        data = np.asarray(data)
        self._check_fits(filter_matrix.shape[0], filter_matrix.shape[1])
        if data.ndim != 2 or data.shape[0] != filter_matrix.shape[1]:
            raise ValueError(
                f"data shape {data.shape} incompatible with filter matrix {filter_matrix.shape}"
            )
        output = filter_matrix @ data
        words = data.shape[1]
        timing = cycles_for_tile(filter_matrix.shape[0], filter_matrix.shape[1], words,
                                 self.config.timing)
        nonzero_cells = int(np.count_nonzero(filter_matrix))
        occupied_cells = int(filter_matrix.size)
        return MatmulResult(output=output, cycles=timing.matmul_cycles,
                            useful_macs=nonzero_cells * words,
                            occupied_macs=occupied_cells * words)

    # -- packed filter matrices ---------------------------------------------------
    def multiply_packed(self, packed: PackedFilterMatrix, data: np.ndarray) -> MatmulResult:
        """Multiply a packed filter matrix by an (M x L) data matrix.

        ``M`` is the *original* number of input channels; the MX cells in
        each combined column select the channel recorded in
        ``packed.channel_index``.  The result is numerically identical to
        multiplying the pruned, unpacked filter matrix.
        """
        data = np.asarray(data)
        self._check_fits(packed.num_rows, packed.num_groups)
        if packed.multiplexing_degree() > self.config.alpha:
            raise ValueError(
                f"packing needs multiplexing degree {packed.multiplexing_degree()}, "
                f"but the array's MX cells support alpha={self.config.alpha}"
            )
        output = packed.multiply(data)
        words = data.shape[1]
        timing = cycles_for_tile(packed.num_rows, packed.num_groups, words,
                                 self.config.timing)
        nonzero_cells = int(np.count_nonzero(packed.weights))
        occupied_cells = int(packed.weights.size)
        return MatmulResult(output=output, cycles=timing.matmul_cycles,
                            useful_macs=nonzero_cells * words,
                            occupied_macs=occupied_cells * words)

    # -- helpers ----------------------------------------------------------------
    def _check_fits(self, rows: int, cols: int) -> None:
        if rows > self.config.rows or cols > self.config.cols:
            raise ValueError(
                f"matrix of {rows}x{cols} does not fit the {self.config.rows}x"
                f"{self.config.cols} array; use TiledMatmul for partitioned execution"
            )
