"""Cross-layer pipelining of CNN inference (Section 3.6).

With one systolic array per layer, output data elements of layer *i* are
piped into layer *i+1* as soon as they leave the array instead of waiting
for the whole layer to finish.  Because neighbouring streams are skewed by
a single clock (and row permutation makes each next-layer group's channels
contiguous), layer *i+1* can start as soon as layer *i*'s **first** output
element emerges.  End-to-end single-sample latency therefore shrinks from
the sum of per-layer completion times to (roughly) the sum of per-layer
first-output delays plus one pass of the data through the slowest layer —
the source of the large latency reductions reported in Section 7.4.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.systolic.timing import (
    CellTiming,
    cycles_for_tile,
    first_output_cycles,
    words_per_sample,
)


@dataclass(frozen=True)
class LayerLatency:
    """Cycle breakdown of one layer deployed in its own systolic array."""

    name: str
    #: clocks from the layer's first input to its first output element.
    first_output_cycles: int
    #: clocks of steady-state streaming (all data words at the word rate).
    stream_cycles: int
    #: clocks for the last output row to emerge after the last word enters
    #: (row skew) plus the final serial accumulation.
    tail_cycles: int
    #: clocks for the layer to finish when it runs in isolation
    #: (fill + stream + drain of the whole tile).
    completion_cycles: int


def layer_latency(name: str, rows: int, cols: int, spatial_size: int,
                  timing: CellTiming | None = None, batch: int = 1) -> LayerLatency:
    """Latency of a layer whose packed filter matrix fits a (rows x cols) array."""
    timing = timing if timing is not None else CellTiming()
    words = words_per_sample(spatial_size, batch)
    tile = cycles_for_tile(rows, cols, words, timing)
    tail = (rows - 1) * timing.skew_clocks + tile.drain_cycles
    return LayerLatency(
        name=name,
        first_output_cycles=first_output_cycles(cols, timing),
        stream_cycles=tile.stream_cycles,
        tail_cycles=tail,
        completion_cycles=tile.matmul_cycles,
    )


def sequential_latency(layers: list[LayerLatency]) -> int:
    """Latency when each layer runs to completion before the next starts."""
    return sum(layer.completion_cycles for layer in layers)


def pipeline_latency(layers: list[LayerLatency]) -> int:
    """Latency with cross-layer pipelining.

    Every layer contributes its first-output delay (its successor cannot
    start earlier), the data itself streams through the chain at the rate
    of the slowest layer, and the final layer pays its row-skew tail and
    accumulation drain.
    """
    if not layers:
        return 0
    fills = sum(layer.first_output_cycles for layer in layers)
    bottleneck = max(layer.stream_cycles for layer in layers)
    return fills + bottleneck + layers[-1].tail_cycles


def pipeline_speedup(layers: list[LayerLatency]) -> float:
    """Sequential latency divided by pipelined latency (>= 1 for real chains)."""
    pipelined = pipeline_latency(layers)
    if pipelined == 0:
        return 1.0
    return sequential_latency(layers) / pipelined
