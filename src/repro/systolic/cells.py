"""Systolic cell types: BL, IL, and MX (Figure 10).

* **BL (balanced)** — one MAC, one input stream; appropriate when the
  accumulation width equals the input width so I/O and compute are
  balanced (Figure 8a).
* **IL (interleaved)** — four MACs sharing one input stream position but
  serving four independent, interleaved data streams; hides the 24-cycle
  gap that 32-bit accumulation would otherwise leave (Figure 8c).
* **MX (multiplexed)** — the cell that supports column combining: it
  receives up to ``alpha`` input-channel streams and selects the one its
  stored weight belongs to (Figure 10c / Figure 11c).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.systolic.mac import BitSerialMAC


@dataclass
class BLCell:
    """Balanced cell: a single MAC with matching I/O and compute time."""

    weight: int = 0
    input_bits: int = 8

    def __post_init__(self) -> None:
        self.mac = BitSerialMAC(weight=self.weight, input_bits=self.input_bits,
                                accumulation_bits=self.input_bits)

    def load_weight(self, weight: int) -> None:
        self.weight = int(weight)
        self.mac.load_weight(weight)

    def process(self, x: int, y_in: int) -> int:
        """Consume one input word and produce the updated accumulation."""
        y_out, _ = self.mac.step(x, y_in)
        return y_out


@dataclass
class ILCell:
    """Interleaved cell: four MACs serving four interleaved data streams."""

    weight: int = 0
    input_bits: int = 8
    accumulation_bits: int = 32
    streams: int = 4

    def __post_init__(self) -> None:
        if self.streams < 1:
            raise ValueError("streams must be >= 1")
        self.macs = [
            BitSerialMAC(weight=self.weight, input_bits=self.input_bits,
                         accumulation_bits=self.accumulation_bits)
            for _ in range(self.streams)
        ]

    def load_weight(self, weight: int) -> None:
        self.weight = int(weight)
        for mac in self.macs:
            mac.load_weight(weight)

    def process(self, xs: list[int], ys_in: list[int]) -> list[int]:
        """Process one word from each of the interleaved streams."""
        if len(xs) != self.streams or len(ys_in) != self.streams:
            raise ValueError(f"expected {self.streams} interleaved words")
        return [mac.step(x, y)[0] for mac, x, y in zip(self.macs, xs, ys_in)]


@dataclass
class MXCell:
    """Multiplexed cell: selects one of up to ``alpha`` input channels.

    ``channel_select`` is the position (0-based, within the group) of the
    input stream whose data this cell's weight multiplies; ``None`` marks
    an empty cell that stores a zero weight and contributes nothing.  All
    incoming channel streams are forwarded to the cell above unchanged.
    """

    weight: int = 0
    channel_select: int | None = None
    alpha: int = 8
    input_bits: int = 8
    accumulation_bits: int = 32
    streams: int = 4
    macs: list[BitSerialMAC] = field(init=False)

    def __post_init__(self) -> None:
        if self.alpha < 1:
            raise ValueError("alpha must be >= 1")
        if self.channel_select is not None and not 0 <= self.channel_select < self.alpha:
            raise ValueError("channel_select must be in [0, alpha)")
        self.macs = [
            BitSerialMAC(weight=self.weight, input_bits=self.input_bits,
                         accumulation_bits=self.accumulation_bits)
            for _ in range(self.streams)
        ]

    def load_weight(self, weight: int, channel_select: int | None) -> None:
        if channel_select is not None and not 0 <= channel_select < self.alpha:
            raise ValueError("channel_select must be in [0, alpha)")
        self.weight = int(weight)
        self.channel_select = channel_select
        for mac in self.macs:
            mac.load_weight(weight)

    def process(self, channel_words: list[int], y_in: int, stream: int = 0) -> int:
        """Consume one word from every multiplexed channel and accumulate.

        ``channel_words`` carries the current word of each of the (up to
        ``alpha``) input channels routed through this column.  The cell
        multiplies only the selected channel; an empty cell passes the
        accumulation through unchanged.
        """
        if len(channel_words) > self.alpha:
            raise ValueError(f"cell multiplexes at most {self.alpha} channels")
        if self.channel_select is None:
            return y_in
        if self.channel_select >= len(channel_words):
            raise ValueError("channel_select outside the provided channel words")
        if not 0 <= stream < self.streams:
            raise ValueError("invalid interleaved stream index")
        y_out, _ = self.macs[stream].step(channel_words[self.channel_select], y_in)
        return y_out
