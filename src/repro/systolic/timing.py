"""Cycle model for bit-serial systolic cells and tiles (Figures 8 and 9).

Timing rules derived from the paper's bit-serial design:

* An input word is 8 bits and enters a cell one bit per cycle, so the I/O
  time per word is ``input_bits`` cycles.
* The serial addition into the accumulation stream takes
  ``accumulation_bits`` cycles, so an *unbalanced* cell (8-bit input,
  32-bit accumulation) has a 24-cycle gap between the words of one stream
  (Figure 8b / 9b).
* An *interleaved* cell fills those gaps by serving
  ``accumulation_bits / input_bits`` independent data streams, restoring
  an effective throughput of one word per ``input_bits`` cycles per stream
  (Figure 8c / 9c).  MX cells are interleaved cells with channel
  multiplexing, so they share this timing.
* Neighbouring input and accumulation streams are skewed by **one clock**
  (Figure 9a) to cover the cell-to-cell communication delay, so the
  pipeline-fill latency of a ``rows x cols`` tile is ``rows + cols - 2``
  clocks, after which results stream out at the word rate.  A final
  ``accumulation_bits``-cycle drain finishes the last partial sum.

The word-level dataflow (which word meets which weight where) is validated
separately by :mod:`repro.systolic.cycle_sim`, which counts *word-slots*
rather than clocks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CellTiming:
    """Per-cell timing parameters."""

    input_bits: int = 8
    accumulation_bits: int = 32
    interleaved: bool = True
    #: clock skew between neighbouring rows / columns (Figure 9a).
    skew_clocks: int = 1

    def __post_init__(self) -> None:
        if self.input_bits < 1:
            raise ValueError("input_bits must be >= 1")
        if self.accumulation_bits < self.input_bits:
            raise ValueError("accumulation_bits must be >= input_bits")
        if self.skew_clocks < 1:
            raise ValueError("skew_clocks must be >= 1")

    @property
    def interleave_factor(self) -> int:
        """Number of independent streams an interleaved cell serves."""
        return max(1, self.accumulation_bits // self.input_bits)

    @property
    def io_cycles_per_word(self) -> int:
        """Cycles to shift one input word into a cell."""
        return self.input_bits

    @property
    def compute_cycles_per_word(self) -> int:
        """Cycles to fold one product into the accumulation stream."""
        return self.accumulation_bits

    @property
    def effective_cycles_per_word(self) -> int:
        """Cycles per input word per stream, accounting for interleaving.

        Balanced cells and interleaved cells sustain one word every
        ``input_bits`` cycles; unbalanced cells are limited by the
        accumulation width.
        """
        if self.accumulation_bits == self.input_bits or self.interleaved:
            return self.input_bits
        return self.accumulation_bits

    @property
    def idle_gap_cycles(self) -> int:
        """Idle cycles between words for a non-interleaved unbalanced cell."""
        if self.interleaved:
            return 0
        return max(0, self.accumulation_bits - self.input_bits)


@dataclass(frozen=True)
class TileTiming:
    """Cycle breakdown for one tile of a partitioned matrix multiplication."""

    rows: int
    cols: int
    data_words: int
    #: clocks of pipeline fill before the array reaches steady state.
    fill_cycles: int
    #: clocks of steady-state streaming (words x cycles-per-word).
    stream_cycles: int
    #: clocks to drain the final serial accumulation.
    drain_cycles: int
    #: clocks to shift the tile's weights into the cells.
    weight_load_cycles: int

    @property
    def matmul_cycles(self) -> int:
        """Cycles spent on the multiplication itself (fill + stream + drain)."""
        return self.fill_cycles + self.stream_cycles + self.drain_cycles

    @property
    def total_cycles(self) -> int:
        """Matmul cycles plus (non-overlapped) weight loading."""
        return self.matmul_cycles + self.weight_load_cycles


def cycles_for_tile(rows: int, cols: int, data_words: int,
                    timing: CellTiming | None = None) -> TileTiming:
    """Cycle counts for streaming ``data_words`` vectors through a tile.

    ``fill`` covers the one-clock-per-hop skew before the array reaches
    steady state (``(rows + cols - 2) * skew_clocks``), ``stream`` covers
    the ``data_words`` words at the per-word rate, and ``drain`` is the
    final serial accumulation of the last word.  Weight loading shifts
    ``rows`` 8-bit weights into each column, all columns in parallel.

    A tile that streams no data words performs no multiplication at all,
    so it reports zero fill / stream / drain cycles (``matmul_cycles == 0``)
    and degenerate tiles no longer inflate the matmul portion of
    :class:`~repro.systolic.tiles.TiledMatmul` totals.  Weight loading is
    still charged: it models shifting the tile's weights in, which is
    independent of how many words the tile then streams.
    """
    if rows < 1 or cols < 1:
        raise ValueError("rows and cols must be >= 1")
    if data_words < 0:
        raise ValueError("data_words must be non-negative")
    timing = timing if timing is not None else CellTiming()
    if data_words == 0:
        fill = stream = drain = 0
    else:
        fill = (rows + cols - 2) * timing.skew_clocks
        stream = data_words * timing.effective_cycles_per_word
        drain = timing.accumulation_bits
    weight_load = rows * timing.input_bits
    return TileTiming(rows=rows, cols=cols, data_words=data_words,
                      fill_cycles=fill, stream_cycles=stream, drain_cycles=drain,
                      weight_load_cycles=weight_load)


def first_output_cycles(cols: int, timing: CellTiming | None = None) -> int:
    """Clocks until a layer's first output element leaves the array.

    The first data word needs ``input_bits`` clocks to stream in and then
    ``cols - 1`` skew hops to traverse the row and exit on the right; this
    is the per-layer delay that cross-layer pipelining pays once per layer
    (Section 3.6).
    """
    if cols < 1:
        raise ValueError("cols must be >= 1")
    timing = timing if timing is not None else CellTiming()
    return timing.input_bits + (cols - 1) * timing.skew_clocks


def words_per_sample(spatial_size: int, batch: int = 1) -> int:
    """Number of data vectors a convolutional layer streams per sample.

    Each spatial position of the (H x W) activation map is one column of
    the data matrix (Figure 1b), so a layer streams ``H * W`` vectors per
    sample (times the batch size).
    """
    if spatial_size < 1 or batch < 1:
        raise ValueError("spatial_size and batch must be >= 1")
    return spatial_size * spatial_size * batch


def tiles_along(dimension: int, array_dimension: int) -> int:
    """Number of tile slices needed to cover ``dimension``."""
    if dimension <= 0:
        return 0
    return math.ceil(dimension / array_dimension)
