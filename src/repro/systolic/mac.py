"""Bit-serial multiplier-accumulator (Figure 7).

The MAC multiplies an unsigned-magnitude representation of the 8-bit weight
by the 8-bit input one input bit per cycle (shift-and-add), negates the
product when the weight is negative, and adds the result to the incoming
accumulation bit-serially.  The model here performs the same bit-by-bit
schedule in software so tests can check that the serial arithmetic is
exactly equivalent to an integer multiply-accumulate, and so cycle counts
are grounded in the actual schedule rather than assumed.
"""

from __future__ import annotations

from dataclasses import dataclass


def _to_bits(value: int, width: int) -> list[int]:
    """Little-endian bit list of a non-negative integer."""
    if value < 0:
        raise ValueError("value must be non-negative")
    return [(value >> i) & 1 for i in range(width)]


def bit_serial_multiply(x: int, w: int, input_bits: int = 8) -> tuple[int, int]:
    """Multiply ``x`` (unsigned input) by ``w`` (signed weight) bit-serially.

    Returns ``(product, cycles)`` where ``cycles`` is the number of input
    bits processed (one bit per cycle, as in Figure 7's serial design).
    """
    if not 0 <= x < 2 ** input_bits:
        raise ValueError(f"x must fit in {input_bits} unsigned bits, got {x}")
    magnitude = abs(int(w))
    if magnitude >= 2 ** input_bits:
        raise ValueError(f"|w| must fit in {input_bits} bits, got {w}")
    partial = 0
    for bit_index, bit in enumerate(_to_bits(int(x), input_bits)):
        if bit:
            partial += magnitude << bit_index
    product = -partial if w < 0 else partial
    return product, input_bits


@dataclass
class BitSerialMAC:
    """A single multiplier-accumulator with a stored weight.

    ``accumulation_bits`` determines how many cycles the serial addition of
    the product into the accumulation stream takes (32 by default, 16 for
    the small LeNet-5 designs of Section 7.1.2).
    """

    weight: int = 0
    input_bits: int = 8
    accumulation_bits: int = 32
    cycles_elapsed: int = 0

    def __post_init__(self) -> None:
        if self.input_bits < 1:
            raise ValueError("input_bits must be >= 1")
        if self.accumulation_bits < self.input_bits:
            raise ValueError("accumulation_bits must be >= input_bits")
        self._check_weight(self.weight)

    def _check_weight(self, weight: int) -> None:
        limit = 2 ** (self.input_bits - 1)
        if not -limit <= weight < limit:
            raise ValueError(f"weight {weight} does not fit in {self.input_bits} signed bits")

    def load_weight(self, weight: int) -> None:
        """Store a new (signed, 8-bit) weight in the cell."""
        self._check_weight(int(weight))
        self.weight = int(weight)

    def step(self, x: int, y_in: int) -> tuple[int, int]:
        """Process one input word: return ``(y_out, cycles_for_this_word)``.

        The cycle cost is the accumulation width: the product is available
        after ``input_bits`` cycles, but the serial addition into the
        ``accumulation_bits``-wide partial sum dominates (Figure 8b).
        """
        product, _ = bit_serial_multiply(int(x), self.weight, self.input_bits)
        cycles = self.accumulation_bits
        self.cycles_elapsed += cycles
        return y_in + product, cycles

    def reset(self) -> None:
        self.cycles_elapsed = 0
