"""The shift and ReLU / quantization blocks surrounding the array (Fig. 12)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.nn.layers import SHIFT_DIRECTIONS, Shift2d
from repro.quant.linear import LinearQuantizer


@dataclass
class ShiftBlock:
    """Applies the per-channel spatial shifts before data enters the array.

    The hardware block fetches 8-bit input maps from the input buffer with
    the offset selected by the shift control signal; functionally this is
    the same per-channel zero-filled translation as the network's
    :class:`~repro.nn.layers.Shift2d` layer, so the block reuses that
    assignment logic to guarantee bit-exact agreement with training.
    """

    channels: int

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ValueError("channels must be >= 1")
        self.assignment = Shift2d._assign_directions(self.channels)

    def apply(self, activations: np.ndarray) -> np.ndarray:
        """Shift an (batch, channels, H, W) activation tensor."""
        if activations.ndim != 4 or activations.shape[1] != self.channels:
            raise ValueError(
                f"expected (batch, {self.channels}, H, W), got {activations.shape}"
            )
        output = np.empty_like(activations)
        for channel in range(self.channels):
            dy, dx = SHIFT_DIRECTIONS[self.assignment[channel]]
            output[:, channel] = Shift2d._shift_channel(activations[:, channel], dy, dx)
        return output

    def to_data_matrix(self, activations: np.ndarray) -> np.ndarray:
        """Flatten shifted activations into the (channels, words) data matrix.

        Each spatial position of each sample becomes one column of the data
        matrix streamed into the systolic array (Figure 1b).
        """
        shifted = self.apply(activations)
        batch, channels, height, width = shifted.shape
        return shifted.transpose(1, 0, 2, 3).reshape(channels, batch * height * width)


@dataclass
class ReluQuantBlock:
    """ReLU on the 32-bit accumulations followed by 8-bit re-quantization.

    The hardware inspects the sign bit of the 32-bit result stream and
    outputs zeros for negative values (Figure 12); the surviving values are
    re-quantized to 8 bits before being written to the output buffer.
    """

    output_bits: int = 8

    def apply(self, accumulations: np.ndarray, scale: float | None = None
              ) -> tuple[np.ndarray, LinearQuantizer]:
        """Apply ReLU then re-quantize; returns (int outputs, quantizer)."""
        accumulations = np.asarray(accumulations, dtype=np.float64)
        rectified = np.maximum(accumulations, 0.0)
        if scale is not None:
            quantizer = LinearQuantizer(bits=self.output_bits, scale=scale)
        else:
            quantizer = LinearQuantizer.fit(rectified, bits=self.output_bits)
        return quantizer.quantize(rectified), quantizer


def data_matrix_to_activations(data_matrix: np.ndarray, batch: int, height: int,
                               width: int) -> np.ndarray:
    """Inverse of :meth:`ShiftBlock.to_data_matrix` (for the next layer)."""
    channels = data_matrix.shape[0]
    if data_matrix.shape[1] != batch * height * width:
        raise ValueError("data matrix width does not match batch * height * width")
    return data_matrix.reshape(channels, batch, height, width).transpose(1, 0, 2, 3)
