"""Partitioned (tiled) matrix multiplication on a fixed-size array (Fig. 14a).

When a layer's filter matrix is larger than the systolic array, it is split
into tiles of at most (array_rows x array_cols).  The array alternates
between loading the weights of the next tile and multiplying the current
tile by the corresponding slice of the data matrix; as in the paper, weight
loading overlaps with matrix multiplication so every cell is busy either
computing or loading, and only the very first weight load is exposed.
Partial results of tiles that share output rows are accumulated.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.combining.packing import PackedFilterMatrix
from repro.systolic.array import ArrayConfig, SystolicArray
from repro.systolic.timing import cycles_for_tile


@dataclass
class TileExecution:
    """Record of one tile's execution."""

    row_start: int
    row_end: int
    col_start: int
    col_end: int
    matmul_cycles: int
    weight_load_cycles: int
    useful_macs: int
    occupied_macs: int


@dataclass
class TiledMatmulResult:
    """Aggregate result of a partitioned matrix multiplication."""

    output: np.ndarray
    num_tiles: int
    total_cycles: int
    useful_macs: int
    occupied_macs: int
    tiles: list[TileExecution] = field(default_factory=list)

    @property
    def utilization(self) -> float:
        if self.occupied_macs == 0:
            return 0.0
        return self.useful_macs / self.occupied_macs


class TiledMatmul:
    """Execute dense or packed filter matrices of arbitrary size."""

    def __init__(self, config: ArrayConfig | None = None):
        self.config = config if config is not None else ArrayConfig()
        self.array = SystolicArray(self.config)

    # -- dense ---------------------------------------------------------------
    def multiply_dense(self, filter_matrix: np.ndarray, data: np.ndarray) -> TiledMatmulResult:
        """Tiled multiplication of an (N x M) filter matrix by (M x L) data."""
        filter_matrix = np.asarray(filter_matrix)
        data = np.asarray(data)
        if data.ndim != 2 or data.shape[0] != filter_matrix.shape[1]:
            raise ValueError("data shape incompatible with filter matrix")
        num_rows, num_cols = filter_matrix.shape
        words = data.shape[1]
        output = np.zeros((num_rows, words))
        executions: list[TileExecution] = []
        for row_start in range(0, num_rows, self.config.rows):
            row_end = min(row_start + self.config.rows, num_rows)
            for col_start in range(0, num_cols, self.config.cols):
                col_end = min(col_start + self.config.cols, num_cols)
                tile = filter_matrix[row_start:row_end, col_start:col_end]
                tile_data = data[col_start:col_end]
                output[row_start:row_end] += tile @ tile_data
                executions.append(self._tile_record(tile, words, row_start, row_end,
                                                    col_start, col_end))
        return self._aggregate(output, executions)

    # -- packed ----------------------------------------------------------------
    def multiply_packed(self, packed: PackedFilterMatrix, data: np.ndarray) -> TiledMatmulResult:
        """Tiled multiplication of a packed filter matrix by (M x L) data.

        Tiles slice the packed matrix along rows and combined columns; the
        MX cells of each tile route the original input channels recorded in
        ``packed.channel_index``.
        """
        data = np.asarray(data)
        if data.ndim != 2 or data.shape[0] != packed.original_shape[1]:
            raise ValueError("data shape incompatible with the packed matrix")
        if packed.multiplexing_degree() > self.config.alpha:
            raise ValueError("packing exceeds the array's MX multiplexing degree")
        num_rows, num_groups = packed.weights.shape
        words = data.shape[1]
        output = np.zeros((num_rows, words))
        executions: list[TileExecution] = []
        safe_index = np.where(packed.channel_index >= 0, packed.channel_index, 0)
        for row_start in range(0, num_rows, self.config.rows):
            row_end = min(row_start + self.config.rows, num_rows)
            for col_start in range(0, num_groups, self.config.cols):
                col_end = min(col_start + self.config.cols, num_groups)
                weights = packed.weights[row_start:row_end, col_start:col_end]
                index = safe_index[row_start:row_end, col_start:col_end]
                gathered = data[index]                      # (rows, groups, words)
                output[row_start:row_end] += (weights[..., None] * gathered).sum(axis=1)
                executions.append(self._tile_record(weights, words, row_start, row_end,
                                                    col_start, col_end))
        return self._aggregate(output, executions)

    # -- shared bookkeeping --------------------------------------------------------
    def _tile_record(self, tile_weights: np.ndarray, words: int, row_start: int,
                     row_end: int, col_start: int, col_end: int) -> TileExecution:
        rows = row_end - row_start
        cols = col_end - col_start
        timing = cycles_for_tile(rows, cols, words, self.config.timing)
        return TileExecution(
            row_start=row_start, row_end=row_end, col_start=col_start, col_end=col_end,
            matmul_cycles=timing.matmul_cycles,
            weight_load_cycles=timing.weight_load_cycles,
            useful_macs=int(np.count_nonzero(tile_weights)) * words,
            occupied_macs=int(tile_weights.size) * words,
        )

    def _aggregate(self, output: np.ndarray, executions: list[TileExecution]
                   ) -> TiledMatmulResult:
        if not executions:
            return TiledMatmulResult(output=output, num_tiles=0, total_cycles=0,
                                     useful_macs=0, occupied_macs=0, tiles=[])
        # The first tile's weight load is exposed; afterwards loading the
        # next tile overlaps with the current tile's multiplication
        # (Figure 14a), so each subsequent tile costs
        # max(matmul, weight_load) cycles.
        total = executions[0].weight_load_cycles + executions[0].matmul_cycles
        for execution in executions[1:]:
            total += max(execution.matmul_cycles, execution.weight_load_cycles)
        return TiledMatmulResult(
            output=output,
            num_tiles=len(executions),
            total_cycles=total,
            useful_macs=sum(e.useful_macs for e in executions),
            occupied_macs=sum(e.occupied_macs for e in executions),
            tiles=executions,
        )
