"""Run configuration shared by experiments and examples."""

from __future__ import annotations

from dataclasses import dataclass, field, asdict
from typing import Any


@dataclass
class RunConfig:
    """Top-level knobs controlling experiment scale.

    The paper trains full-size networks on MNIST / CIFAR-10 with a GPU.
    This reproduction runs on CPU with synthetic data, so every experiment
    accepts a :class:`RunConfig` that scales the workload.  The default
    values give experiments that finish in seconds while exercising the
    exact same code paths (pruning, grouping, combine-pruning, retraining,
    packed deployment on the systolic array).
    """

    seed: int = 0
    #: dataset samples for training (paper: 50-60k); scaled down for CPU.
    train_samples: int = 512
    #: dataset samples held out for evaluation.
    test_samples: int = 256
    #: spatial resolution of synthetic images (paper: 28 or 32).
    image_size: int = 12
    #: epochs per retraining round inside Algorithm 1 (paper: tens).
    epochs_per_round: int = 2
    #: epochs of final fine-tuning after the target sparsity is reached
    #: (paper: 100).
    final_epochs: int = 3
    #: mini-batch size.
    batch_size: int = 64
    #: model width multiplier (1.0 = paper-sized channel counts).
    model_scale: float = 0.25
    #: extra keyword arguments forwarded to the model constructor.
    model_kwargs: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        """Return a JSON-serialisable view of the configuration."""
        return asdict(self)

    def scaled(self, **overrides: Any) -> "RunConfig":
        """Return a copy with selected fields replaced."""
        data = self.to_dict()
        data.update(overrides)
        return RunConfig(**data)
