"""Thin logging helpers shared by trainers, experiments, and benchmarks."""

from __future__ import annotations

import logging
import sys

_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"
_configured = False


def get_logger(name: str, level: int = logging.INFO) -> logging.Logger:
    """Return a module-level logger with a single stderr handler.

    Repeated calls with the same ``name`` return the same logger and never
    attach duplicate handlers.
    """
    global _configured
    if not _configured:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(logging.Formatter(_FORMAT))
        root = logging.getLogger("repro")
        root.addHandler(handler)
        root.setLevel(level)
        root.propagate = False
        _configured = True
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)
