"""Thin logging helpers shared by trainers, experiments, and benchmarks.

One stderr handler lives on the ``repro`` root logger; every
``get_logger`` caller gets a child of it.  Two behaviours the tests pin:

* **Per-call levels apply.**  ``get_logger(name, level)`` sets the level
  on the *named* logger itself (a logger's own level governs which of
  its records emit; propagation to the root handler does not re-filter
  by ancestor levels), so one chatty module can run at DEBUG while the
  rest of the package stays at INFO — and a later call can turn it back
  down.  The first implementation latched the first caller's level onto
  the root and silently ignored every later ``level=`` argument.
* **Structured key/values.**  Fields passed via the standard
  ``extra={...}`` mechanism render as trailing ``key=value`` pairs, so
  call sites can attach machine-greppable context (model names, batch
  sizes, trace ids) without formatting it into the message string.
"""

from __future__ import annotations

import logging
import sys

_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"
_configured = False

#: Attributes present on every LogRecord; anything else on a record came
#: in through ``extra=`` and belongs in the structured suffix.
_STANDARD_ATTRS = (frozenset(vars(logging.LogRecord(
    "", 0, "", 0, "", (), None))) | {"message", "asctime", "taskName"})


class KeyValueFormatter(logging.Formatter):
    """Standard format plus sorted ``key=value`` pairs from ``extra=``.

    ``logger.info("swap done", extra={"model": "m", "batches": 3})``
    renders as ``... swap done [batches=3 model=m]`` — sorted keys, so
    the suffix is deterministic and greppable.
    """

    def format(self, record: logging.LogRecord) -> str:
        base = super().format(record)
        fields = {key: value for key, value in vars(record).items()
                  if key not in _STANDARD_ATTRS and not key.startswith("_")}
        if not fields:
            return base
        rendered = " ".join(f"{key}={fields[key]}" for key in sorted(fields))
        return f"{base} [{rendered}]"


def get_logger(name: str, level: int = logging.INFO) -> logging.Logger:
    """Return a ``repro.*`` logger with a single shared stderr handler.

    Repeated calls with the same ``name`` return the same logger and
    never attach duplicate handlers; each call applies ``level`` to the
    named logger, so levels can be changed (and changed back) at any
    time without touching other modules' loggers.
    """
    global _configured
    if not _configured:
        handler = logging.StreamHandler(sys.stderr)
        handler.setFormatter(KeyValueFormatter(_FORMAT))
        root = logging.getLogger("repro")
        root.addHandler(handler)
        # The root stays wide open: filtering happens per named logger,
        # so one module's DEBUG does not depend on who configured first.
        root.setLevel(logging.DEBUG)
        root.propagate = False
        _configured = True
    if not name.startswith("repro"):
        name = f"repro.{name}"
    logger = logging.getLogger(name)
    logger.setLevel(level)
    return logger
