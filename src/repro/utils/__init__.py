"""Shared utilities: deterministic seeding, run configuration, logging."""

from repro.utils.seeding import seed_everything, new_rng
from repro.utils.logging import get_logger
from repro.utils.lru import LRUCache
from repro.utils.config import RunConfig

__all__ = ["seed_everything", "new_rng", "get_logger", "LRUCache", "RunConfig"]
