"""A small least-recently-used mapping for bounded accounting caches.

Serving keeps several caches whose key spaces are unbounded in
production — systolic accounting plans keyed by (batch size, observed
spatial map), worker-process plan caches keyed by (artifact path,
content fingerprint) — and under varied traffic (or repeated hot swaps)
a plain dict grows without limit.  :class:`LRUCache` is the bound: a
dict with capped size that evicts the least recently touched entry.

Not thread-safe on its own; callers that share one instance across
threads guard it with their own lock (the worker-process caches are
single-threaded per process and need none).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable


class LRUCache:
    """A bounded mapping evicting the least recently used entry.

    ``get`` refreshes recency; ``put`` inserts (or refreshes) and evicts
    the oldest entry once ``maxsize`` is exceeded.
    """

    def __init__(self, maxsize: int):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()

    def get(self, key: Hashable, default: Any = None) -> Any:
        try:
            self._entries.move_to_end(key)
        except KeyError:
            return default
        return self._entries[key]

    def put(self, key: Hashable, value: Any) -> Any:
        """Insert ``key`` -> ``value`` (refreshing recency) and return the
        stored value, evicting the oldest entries past ``maxsize``."""
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self.maxsize:
            self._entries.popitem(last=False)
        return value

    def setdefault(self, key: Hashable, value: Any) -> Any:
        """Like ``dict.setdefault`` with recency refresh and eviction."""
        existing = self.get(key, default=None)
        if existing is not None:
            return existing
        return self.put(key, value)

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def clear(self) -> None:
        self._entries.clear()
