"""Deterministic random-number management.

All stochastic components in the library (dataset synthesis, weight
initialization, SGD shuffling) draw from ``numpy.random.Generator``
instances created here so that experiments are exactly reproducible.
"""

from __future__ import annotations

import random

import numpy as np

_GLOBAL_SEED: int | None = None


def seed_everything(seed: int) -> np.random.Generator:
    """Seed Python's and NumPy's global generators and return a new Generator.

    Parameters
    ----------
    seed:
        Any non-negative integer.  The same seed always yields the same
        sequence of datasets, initial weights, and batch orders.
    """
    global _GLOBAL_SEED
    if seed < 0:
        raise ValueError(f"seed must be non-negative, got {seed}")
    _GLOBAL_SEED = int(seed)
    random.seed(seed)
    np.random.seed(seed % (2**32))
    return np.random.default_rng(seed)


def new_rng(seed: int | None = None) -> np.random.Generator:
    """Create an independent ``numpy.random.Generator``.

    If ``seed`` is ``None`` the generator is derived from the last seed
    passed to :func:`seed_everything` (or entropy if none was set).
    """
    if seed is not None:
        return np.random.default_rng(seed)
    if _GLOBAL_SEED is not None:
        return np.random.default_rng(_GLOBAL_SEED)
    return np.random.default_rng()


def global_seed() -> int | None:
    """Return the last seed passed to :func:`seed_everything`, if any."""
    return _GLOBAL_SEED
