"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.data import synthetic_cifar10, synthetic_mnist

#: Frozen JSON fixtures the golden regression harness diffs against.
GOLDEN_DIR = Path(__file__).resolve().parent / "golden"


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--regen-golden", action="store_true", default=False,
        help="rewrite the golden JSON fixtures under tests/golden/ from the "
             "current engine outputs instead of comparing against them")


@pytest.fixture
def golden_check(request: pytest.FixtureRequest):
    """Compare a JSON-serializable payload against a frozen golden fixture.

    ``golden_check(name, payload)`` asserts ``payload`` equals the stored
    ``tests/golden/<name>.json`` exactly (floats survive the JSON round
    trip bit-for-bit via ``repr``-based shortest-round-trip encoding).
    Running pytest with ``--regen-golden`` rewrites the fixture instead,
    so intentional engine changes are re-frozen in one command and show
    up as a reviewable diff.  When several tests (e.g. the engine-combo
    parametrizations) feed the same fixture name during one regen run,
    the first writes and the rest are compared against it — a divergence
    between engines fails the regen instead of being silently overwritten
    by whichever combo ran last.
    """
    regen = request.config.getoption("--regen-golden")
    session = request.session
    regenerated = getattr(session, "_golden_regenerated", None)
    if regenerated is None:
        regenerated = session._golden_regenerated = {}

    def check(name: str, payload) -> None:
        path = GOLDEN_DIR / f"{name}.json"
        encoded = json.dumps(payload, indent=2, sort_keys=True) + "\n"
        if regen:
            if name in regenerated:
                assert encoded == regenerated[name], (
                    f"two tests produced different payloads for golden "
                    f"fixture {name!r} during --regen-golden; the engines "
                    "disagree — fix that before refreezing")
                return
            GOLDEN_DIR.mkdir(exist_ok=True)
            path.write_text(encoded)
            regenerated[name] = encoded
            return
        assert path.exists(), (
            f"golden fixture {path} is missing; generate it with "
            f"`pytest {request.node.nodeid} --regen-golden`")
        stored = json.loads(path.read_text())
        # Round-trip the payload through JSON so the comparison sees exactly
        # what a regen would have written (e.g. tuples become lists).
        assert json.loads(encoded) == stored, (
            f"output diverged from frozen golden fixture {path.name}; if the "
            "change is intentional, refreeze with `pytest --regen-golden` "
            "and review the JSON diff")

    return check


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def sparse_matrix(rng: np.random.Generator) -> np.ndarray:
    """A representative sparse filter matrix (24 filters x 40 channels, ~20% dense)."""
    values = rng.normal(size=(24, 40))
    mask = rng.random((24, 40)) < 0.2
    return values * mask


@pytest.fixture(scope="session")
def tiny_mnist():
    """Small synthetic MNIST-like train / test splits shared across tests."""
    train = synthetic_mnist(128, image_size=8, seed=0, split_seed=0)
    test = synthetic_mnist(64, image_size=8, seed=0, split_seed=1)
    return train, test


@pytest.fixture(scope="session")
def tiny_cifar():
    """Small synthetic CIFAR-like train / test splits shared across tests."""
    train = synthetic_cifar10(128, image_size=8, seed=0, split_seed=0)
    test = synthetic_cifar10(64, image_size=8, seed=0, split_seed=1)
    return train, test


def numerical_gradient(func, array: np.ndarray, epsilon: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of a scalar function with respect to ``array``.

    ``func`` must return a float and must depend on ``array`` *in place*
    (the helper perturbs entries of the array it is given).
    """
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = func()
        flat[index] = original - epsilon
        lower = func()
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2.0 * epsilon)
    return grad
