"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.data import synthetic_cifar10, synthetic_mnist


@pytest.fixture
def rng() -> np.random.Generator:
    """A fresh deterministic random generator per test."""
    return np.random.default_rng(1234)


@pytest.fixture
def sparse_matrix(rng: np.random.Generator) -> np.ndarray:
    """A representative sparse filter matrix (24 filters x 40 channels, ~20% dense)."""
    values = rng.normal(size=(24, 40))
    mask = rng.random((24, 40)) < 0.2
    return values * mask


@pytest.fixture(scope="session")
def tiny_mnist():
    """Small synthetic MNIST-like train / test splits shared across tests."""
    train = synthetic_mnist(128, image_size=8, seed=0, split_seed=0)
    test = synthetic_mnist(64, image_size=8, seed=0, split_seed=1)
    return train, test


@pytest.fixture(scope="session")
def tiny_cifar():
    """Small synthetic CIFAR-like train / test splits shared across tests."""
    train = synthetic_cifar10(128, image_size=8, seed=0, split_seed=0)
    test = synthetic_cifar10(64, image_size=8, seed=0, split_seed=1)
    return train, test


def numerical_gradient(func, array: np.ndarray, epsilon: float = 1e-5) -> np.ndarray:
    """Central-difference gradient of a scalar function with respect to ``array``.

    ``func`` must return a float and must depend on ``array`` *in place*
    (the helper perturbs entries of the array it is given).
    """
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    grad_flat = grad.reshape(-1)
    for index in range(flat.size):
        original = flat[index]
        flat[index] = original + epsilon
        upper = func()
        flat[index] = original - epsilon
        lower = func()
        flat[index] = original
        grad_flat[index] = (upper - lower) / (2.0 * epsilon)
    return grad
