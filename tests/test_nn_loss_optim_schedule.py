"""Tests for the loss function, optimizer, and learning-rate schedules."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.nn import (
    ConstantSchedule,
    CosineSchedule,
    Dense,
    SGD,
    SoftmaxCrossEntropy,
    StepSchedule,
    accuracy,
)
from repro.nn.parameter import Parameter

from tests.conftest import numerical_gradient


# -- softmax cross-entropy -------------------------------------------------------

def test_loss_of_perfect_prediction_is_small():
    loss_fn = SoftmaxCrossEntropy()
    logits = np.array([[10.0, -10.0], [-10.0, 10.0]])
    labels = np.array([0, 1])
    assert loss_fn(logits, labels) < 1e-4


def test_loss_of_uniform_prediction_is_log_classes():
    loss_fn = SoftmaxCrossEntropy()
    logits = np.zeros((4, 5))
    labels = np.array([0, 1, 2, 3])
    assert loss_fn(logits, labels) == pytest.approx(math.log(5))


def test_loss_gradient_matches_finite_differences(rng):
    loss_fn = SoftmaxCrossEntropy()
    logits = rng.normal(size=(3, 4))
    labels = np.array([1, 0, 3])

    def loss() -> float:
        return loss_fn(logits, labels)

    numeric = numerical_gradient(loss, logits)
    loss_fn(logits, labels)
    analytic = loss_fn.backward()
    np.testing.assert_allclose(analytic, numeric, rtol=1e-4, atol=1e-7)


def test_loss_rejects_mismatched_batch():
    loss_fn = SoftmaxCrossEntropy()
    with pytest.raises(ValueError):
        loss_fn(np.zeros((3, 2)), np.array([0, 1]))


def test_loss_is_stable_for_large_logits():
    loss_fn = SoftmaxCrossEntropy()
    logits = np.array([[1e4, -1e4]])
    assert np.isfinite(loss_fn(logits, np.array([0])))


def test_accuracy_counts_argmax_matches():
    logits = np.array([[2.0, 1.0], [0.0, 3.0], [5.0, 4.0], [0.0, 1.0]])
    labels = np.array([0, 1, 1, 1])
    assert accuracy(logits, labels) == pytest.approx(0.75)


# -- SGD ---------------------------------------------------------------------------

def test_sgd_plain_step_moves_against_gradient():
    param = Parameter(np.array([1.0, 2.0]))
    optimizer = SGD([param], lr=0.1, momentum=0.0)
    param.grad[:] = [1.0, -1.0]
    optimizer.step()
    np.testing.assert_allclose(param.data, [0.9, 2.1])


def test_sgd_momentum_accumulates_velocity():
    param = Parameter(np.array([0.0]))
    optimizer = SGD([param], lr=1.0, momentum=0.9, nesterov=False)
    for _ in range(2):
        param.grad[:] = 1.0
        optimizer.step()
    # step 1: v = 1, x = -1;  step 2: v = 1.9, x = -2.9
    np.testing.assert_allclose(param.data, [-2.9])


def test_sgd_nesterov_differs_from_plain_momentum():
    plain = Parameter(np.array([0.0]))
    nesterov = Parameter(np.array([0.0]))
    opt_plain = SGD([plain], lr=1.0, momentum=0.9, nesterov=False)
    opt_nesterov = SGD([nesterov], lr=1.0, momentum=0.9, nesterov=True)
    plain.grad[:] = 1.0
    nesterov.grad[:] = 1.0
    opt_plain.step()
    opt_nesterov.step()
    assert nesterov.data[0] < plain.data[0]


def test_sgd_weight_decay_shrinks_weights():
    param = Parameter(np.array([10.0]))
    optimizer = SGD([param], lr=0.1, momentum=0.0, weight_decay=0.5)
    param.grad[:] = 0.0
    optimizer.step()
    np.testing.assert_allclose(param.data, [9.5])


def test_sgd_respects_pruning_masks():
    param = Parameter(np.array([1.0, 1.0]))
    param.set_mask(np.array([1.0, 0.0]))
    optimizer = SGD([param], lr=0.1, momentum=0.9)
    param.grad[:] = [1.0, 1.0]
    optimizer.step()
    assert param.data[1] == 0.0
    assert param.data[0] != 1.0


def test_sgd_set_lr_accepts_zero_but_not_negative():
    param = Parameter(np.array([1.0]))
    optimizer = SGD([param], lr=0.1)
    optimizer.set_lr(0.0)
    assert optimizer.lr == 0.0
    with pytest.raises(ValueError):
        optimizer.set_lr(-0.1)


def test_sgd_training_reduces_loss_on_linear_regression(rng):
    layer = Dense(3, 1, rng=rng)
    optimizer = SGD(layer.parameters(), lr=0.05, momentum=0.9)
    true_w = np.array([[1.0, -2.0, 0.5]])
    x = rng.normal(size=(64, 3))
    y = x @ true_w.T
    losses = []
    for _ in range(50):
        pred = layer.forward(x)
        error = pred - y
        losses.append(float((error ** 2).mean()))
        optimizer.zero_grad()
        layer.backward(2 * error / len(x))
        optimizer.step()
    assert losses[-1] < 0.05 * losses[0]


# -- schedules ----------------------------------------------------------------------

def test_constant_schedule_is_constant():
    schedule = ConstantSchedule(0.1)
    assert schedule(0, 10) == schedule(9, 10) == 0.1


def test_cosine_schedule_starts_at_lr_and_ends_at_fraction():
    schedule = CosineSchedule(1.0, final_fraction=0.2)
    assert schedule(0, 100) == pytest.approx(1.0)
    assert schedule(99, 100) == pytest.approx(0.2)


def test_cosine_schedule_is_monotonically_decreasing():
    schedule = CosineSchedule(0.5, final_fraction=0.0)
    values = [schedule(step, 20) for step in range(20)]
    assert all(a >= b for a, b in zip(values, values[1:]))


def test_cosine_schedule_single_step_returns_lr():
    schedule = CosineSchedule(0.3)
    assert schedule(0, 1) == 0.3


def test_step_schedule_decays_every_step_size():
    schedule = StepSchedule(1.0, step_size=2, gamma=0.1)
    assert schedule(0, 10) == 1.0
    assert schedule(1, 10) == 1.0
    assert schedule(2, 10) == pytest.approx(0.1)
    assert schedule(4, 10) == pytest.approx(0.01)


def test_schedule_validation():
    with pytest.raises(ValueError):
        CosineSchedule(-1.0)
    with pytest.raises(ValueError):
        CosineSchedule(1.0, final_fraction=1.5)
    with pytest.raises(ValueError):
        StepSchedule(1.0, step_size=0)
