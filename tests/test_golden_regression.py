"""Golden regression harness for the packing engines.

Small frozen JSON fixtures under ``tests/golden/`` pin the exact outputs
of the group -> conflict-prune -> pack -> tile flow — tile counts, packing
efficiency, pruned-weight counts — for seeded 64x128 layers and a seeded
LeNet-5 workload; cycle-level execution plans (per-layer tiles, cycles,
MAC counts) for the full-size VGG and ResNet-20 workloads; and the
quantized integer forward of a seeded LeNet-5 at 8 bits (predictions,
logits, and per-layer error accounting).  Every engine combination must
reproduce the frozen numbers bit-for-bit, so future engine rewrites are
diffed against the frozen behaviour instead of only against each other.

Alongside the JSON fixtures, two **serialized packed artifacts** (a float
and an 8-bit quantized LeNet-5, written by
:func:`repro.combining.serialization.save_packed`) are checked in as
binary fixtures: the round-trip tests load them with the *current* reader
and pin save -> load -> forward end to end, so a format change that breaks
existing artifacts (or shifts a single output bit) fails here instead of
in production registries.

To re-freeze after an intentional behaviour change::

    PYTHONPATH=src python -m pytest tests/test_golden_regression.py --regen-golden

and review the JSON diff (artifact fixtures are re-written too).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.combining import (
    GROUPING_ENGINES,
    PRUNE_ENGINES,
    PackedModel,
    PackingPipeline,
    PipelineConfig,
    QuantizedPackedModel,
    load_packed,
    save_packed,
)
from repro.combining.serialization import fingerprint_packed
from repro.experiments.workloads import (
    PAPER_DENSITY,
    sparse_filter_matrix,
    sparse_network,
    spatial_sizes,
)
from repro.models import build_model

ENGINE_COMBOS = [(grouping, prune)
                 for grouping in GROUPING_ENGINES for prune in PRUNE_ENGINES]

#: Seeded 64x128 layers at the densities the paper's workloads span.
LAYER_CASES: tuple[tuple[int, float], ...] = (
    (0, 0.10), (1, 0.10), (2, 0.10),
    (0, 0.16), (1, 0.16), (2, 0.16),
)


def layer_metrics(seed: int, density: float, grouping_engine: str,
                  prune_engine: str) -> dict:
    rng = np.random.default_rng(seed)
    matrix = sparse_filter_matrix(64, 128, density, rng)
    config = PipelineConfig(alpha=8, gamma=0.5, grouping_engine=grouping_engine,
                            prune_engine=prune_engine)
    layer = PackingPipeline(config).run_layer(f"seed{seed}", matrix)
    return {
        "rows": layer.rows,
        "columns_before": layer.columns_before,
        "columns_after": layer.columns_after,
        "tiles_before": layer.tiles_before,
        "tiles_after": layer.tiles_after,
        "packing_efficiency": layer.packing_efficiency,
        "nonzeros_before": layer.nonzeros_before,
        "nonzeros_after": layer.nonzeros_after,
        "pruned_weights": layer.pruned_weights,
    }


@pytest.mark.parametrize("grouping_engine,prune_engine", ENGINE_COMBOS)
def test_seeded_layers_match_golden(golden_check, grouping_engine, prune_engine):
    payload = {
        f"seed{seed}_density{int(round(density * 100))}":
            layer_metrics(seed, density, grouping_engine, prune_engine)
        for seed, density in LAYER_CASES
    }
    golden_check("packed_layers_64x128", payload)


@pytest.mark.parametrize("grouping_engine,prune_engine", ENGINE_COMBOS)
def test_lenet5_packed_model_matches_golden(golden_check, grouping_engine,
                                            prune_engine):
    layers = sparse_network("lenet5", density=0.13, seed=0)
    config = PipelineConfig(alpha=8, gamma=0.5, grouping_engine=grouping_engine,
                            prune_engine=prune_engine)
    with PackingPipeline(config) as pipeline:
        result = pipeline.run(layers)
    model = PackedModel.from_pipeline_result(result)
    plan = model.plan(spatial_sizes(layers))
    payload = {
        "layers": {
            layer.name: {
                "columns_after": layer.columns_after,
                "tiles_after": layer.tiles_after,
                "packing_efficiency": layer.packing_efficiency,
                "pruned_weights": layer.pruned_weights,
            }
            for layer in result.layers
        },
        "model": {
            "packing_efficiency": model.packing_efficiency(),
            "total_nonzeros": model.total_nonzeros(),
            "multiplexing_degree": model.multiplexing_degree(),
            "total_tiles": plan.total_tiles,
            "total_cycles": plan.total_cycles,
            "utilization": plan.utilization,
        },
    }
    golden_check("packed_model_lenet5", payload)


@pytest.mark.parametrize("network", ["vgg", "resnet20"])
@pytest.mark.parametrize("grouping_engine,prune_engine", ENGINE_COMBOS)
def test_workload_execution_plan_matches_golden(golden_check, network,
                                                grouping_engine, prune_engine):
    """Cycle-level plans of the full-size VGG / ResNet-20 workloads."""
    layers = sparse_network(network, density=PAPER_DENSITY[network], seed=0)
    config = PipelineConfig(alpha=8, gamma=0.5, grouping_engine=grouping_engine,
                            prune_engine=prune_engine)
    with PackingPipeline(config) as pipeline:
        result = pipeline.run(layers)
    model = PackedModel.from_pipeline_result(result)
    plan = model.plan(spatial_sizes(layers))
    payload = {
        "layers": {
            execution.name: {
                "packed_columns": execution.packed_columns,
                "num_tiles": execution.num_tiles,
                "cycles": execution.cycles,
                "useful_macs": execution.useful_macs,
                "occupied_macs": execution.occupied_macs,
            }
            for execution in plan.layers
        },
        "totals": {
            "total_tiles": plan.total_tiles,
            "total_cycles": plan.total_cycles,
            "total_useful_macs": plan.total_useful_macs,
            "total_occupied_macs": plan.total_occupied_macs,
            "utilization": plan.utilization,
        },
    }
    golden_check(f"execution_plan_{network}", payload)


def quantized_lenet5():
    """The seeded LeNet-5 quantized-forward scenario the fixture freezes."""
    model = build_model("lenet5", in_channels=1, num_classes=10, scale=1.0,
                        image_size=8, rng=np.random.default_rng(3))
    mask_rng = np.random.default_rng(4)
    for _, layer in model.packable_layers():
        layer.weight.data *= mask_rng.random(layer.weight.data.shape) < 0.5
    rng = np.random.default_rng(7)
    calibration = rng.normal(size=(32, 1, 8, 8))
    batch = rng.normal(size=(64, 1, 8, 8))
    return model, calibration, batch


@pytest.mark.parametrize("grouping_engine,prune_engine", ENGINE_COMBOS)
def test_lenet5_quantized_forward_matches_golden(golden_check, grouping_engine,
                                                 prune_engine):
    """The 8-bit integer forward of a seeded LeNet-5, frozen end to end."""
    model, calibration, batch = quantized_lenet5()
    config = PipelineConfig(alpha=8, gamma=0.5, grouping_engine=grouping_engine,
                            prune_engine=prune_engine)
    quantized = QuantizedPackedModel.from_model(model, config, bits=8)
    quantized.calibrate(calibration)
    outputs = quantized.forward(batch)
    # Agreement straight from the fixture outputs — re-running predict()
    # here would replace the tracked stats the layer report freezes.
    agreement = float(np.mean(np.argmax(outputs, axis=1)
                              == quantized.packed.predict(batch)))
    payload = {
        "bits": 8,
        "predictions": np.argmax(outputs, axis=1).tolist(),
        "first_logits": outputs[0].tolist(),
        "agreement": agreement,
        "layers": {
            report.name: {
                "weight_rmse": report.weight_rmse,
                "input_rmse": report.input_rmse,
                "input_saturation": report.input_saturation,
                "divergence_rmse": report.divergence_rmse,
                "num_tiles": report.num_tiles,
                "cycles": report.cycles,
            }
            for report in quantized.layer_report()
        },
        "calibration_scales": {
            calibration_entry.name: {
                "input_scale": calibration_entry.input_quantizer.scale,
                "weight_scale": calibration_entry.weight_quantizer.scale,
            }
            for calibration_entry in quantized.layer_calibrations()
        },
    }
    golden_check("quantized_forward_lenet5", payload)


# -- serialized packed artifacts ---------------------------------------------
GOLDEN_MODEL_SPEC = {"name": "lenet5",
                     "kwargs": {"in_channels": 1, "num_classes": 10,
                                "scale": 1.0, "image_size": 8}}


def _golden_dir():
    from pathlib import Path

    return Path(__file__).resolve().parent / "golden"


def _artifact_check(request, path, fresh, batch, fixture_name, golden_check):
    """Regen or verify one checked-in artifact: save -> load -> forward.

    On ``--regen-golden`` the artifact is re-written from the freshly
    packed model first; either way the checked-in file is then loaded with
    the current reader and its forward must be bit-identical to the fresh
    model's — the acceptance contract of the serialization format — with
    the outputs additionally frozen in a JSON fixture.
    """
    if request.config.getoption("--regen-golden"):
        save_packed(fresh, path, model_spec=GOLDEN_MODEL_SPEC)
    assert path.exists(), (
        f"golden artifact {path} is missing; generate it with "
        f"`pytest {request.node.nodeid} --regen-golden`")
    loaded = load_packed(path)
    loaded_outputs = loaded.forward(batch)
    assert np.array_equal(loaded_outputs, fresh.forward(batch)), (
        "the checked-in artifact no longer reproduces the freshly packed "
        "model's forward bit-for-bit")
    packed = loaded.packed if isinstance(loaded, QuantizedPackedModel) else loaded
    payload = {
        "predictions": np.argmax(loaded_outputs, axis=1).tolist(),
        "first_logits": loaded_outputs[0].tolist(),
        "fingerprints": {spec.name: fingerprint_packed(spec.packed)
                         for spec in packed.specs},
    }
    golden_check(fixture_name, payload)


def test_packed_artifact_round_trip_matches_golden(request, golden_check):
    """save -> load -> forward of the float LeNet-5 artifact, pinned."""
    model, _, batch = quantized_lenet5()
    fresh = PackedModel.from_model(model, PipelineConfig(alpha=8, gamma=0.5))
    _artifact_check(request, _golden_dir() / "lenet5_packed_artifact.npz",
                    fresh, batch, "artifact_forward_lenet5", golden_check)


def test_quantized_artifact_round_trip_matches_golden(request, golden_check):
    """save -> load -> forward of the 8-bit quantized artifact, pinned."""
    model, calibration, batch = quantized_lenet5()
    fresh = QuantizedPackedModel.from_model(
        model, PipelineConfig(alpha=8, gamma=0.5), bits=8)
    fresh.calibrate(calibration)
    _artifact_check(request, _golden_dir() / "lenet5_quantized8_artifact.npz",
                    fresh, batch, "artifact_forward_lenet5_int8", golden_check)


def test_golden_fixtures_are_checked_in():
    """The harness must fail loudly if the frozen fixtures go missing."""
    golden_dir = _golden_dir()
    names = {path.name for path in golden_dir.glob("*.json")}
    assert {"packed_layers_64x128.json", "packed_model_lenet5.json",
            "execution_plan_vgg.json", "execution_plan_resnet20.json",
            "quantized_forward_lenet5.json", "artifact_forward_lenet5.json",
            "artifact_forward_lenet5_int8.json"} <= names
    artifacts = {path.name for path in golden_dir.glob("*.npz")}
    assert {"lenet5_packed_artifact.npz",
            "lenet5_quantized8_artifact.npz"} <= artifacts
