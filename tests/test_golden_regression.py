"""Golden regression harness for the packing engines.

Small frozen JSON fixtures under ``tests/golden/`` pin the exact outputs
of the group -> conflict-prune -> pack -> tile flow — tile counts, packing
efficiency, pruned-weight counts — for seeded 64x128 layers and a seeded
LeNet-5 workload; cycle-level execution plans (per-layer tiles, cycles,
MAC counts) for the full-size VGG and ResNet-20 workloads; and the
quantized integer forward of a seeded LeNet-5 at 8 bits (predictions,
logits, and per-layer error accounting).  Every engine combination must
reproduce the frozen numbers bit-for-bit, so future engine rewrites are
diffed against the frozen behaviour instead of only against each other.

To re-freeze after an intentional behaviour change::

    PYTHONPATH=src python -m pytest tests/test_golden_regression.py --regen-golden

and review the JSON diff.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.combining import (
    GROUPING_ENGINES,
    PRUNE_ENGINES,
    PackedModel,
    PackingPipeline,
    PipelineConfig,
    QuantizedPackedModel,
)
from repro.experiments.workloads import (
    PAPER_DENSITY,
    sparse_filter_matrix,
    sparse_network,
    spatial_sizes,
)
from repro.models import build_model

ENGINE_COMBOS = [(grouping, prune)
                 for grouping in GROUPING_ENGINES for prune in PRUNE_ENGINES]

#: Seeded 64x128 layers at the densities the paper's workloads span.
LAYER_CASES: tuple[tuple[int, float], ...] = (
    (0, 0.10), (1, 0.10), (2, 0.10),
    (0, 0.16), (1, 0.16), (2, 0.16),
)


def layer_metrics(seed: int, density: float, grouping_engine: str,
                  prune_engine: str) -> dict:
    rng = np.random.default_rng(seed)
    matrix = sparse_filter_matrix(64, 128, density, rng)
    config = PipelineConfig(alpha=8, gamma=0.5, grouping_engine=grouping_engine,
                            prune_engine=prune_engine)
    layer = PackingPipeline(config).run_layer(f"seed{seed}", matrix)
    return {
        "rows": layer.rows,
        "columns_before": layer.columns_before,
        "columns_after": layer.columns_after,
        "tiles_before": layer.tiles_before,
        "tiles_after": layer.tiles_after,
        "packing_efficiency": layer.packing_efficiency,
        "nonzeros_before": layer.nonzeros_before,
        "nonzeros_after": layer.nonzeros_after,
        "pruned_weights": layer.pruned_weights,
    }


@pytest.mark.parametrize("grouping_engine,prune_engine", ENGINE_COMBOS)
def test_seeded_layers_match_golden(golden_check, grouping_engine, prune_engine):
    payload = {
        f"seed{seed}_density{int(round(density * 100))}":
            layer_metrics(seed, density, grouping_engine, prune_engine)
        for seed, density in LAYER_CASES
    }
    golden_check("packed_layers_64x128", payload)


@pytest.mark.parametrize("grouping_engine,prune_engine", ENGINE_COMBOS)
def test_lenet5_packed_model_matches_golden(golden_check, grouping_engine,
                                            prune_engine):
    layers = sparse_network("lenet5", density=0.13, seed=0)
    config = PipelineConfig(alpha=8, gamma=0.5, grouping_engine=grouping_engine,
                            prune_engine=prune_engine)
    with PackingPipeline(config) as pipeline:
        result = pipeline.run(layers)
    model = PackedModel.from_pipeline_result(result)
    plan = model.plan(spatial_sizes(layers))
    payload = {
        "layers": {
            layer.name: {
                "columns_after": layer.columns_after,
                "tiles_after": layer.tiles_after,
                "packing_efficiency": layer.packing_efficiency,
                "pruned_weights": layer.pruned_weights,
            }
            for layer in result.layers
        },
        "model": {
            "packing_efficiency": model.packing_efficiency(),
            "total_nonzeros": model.total_nonzeros(),
            "multiplexing_degree": model.multiplexing_degree(),
            "total_tiles": plan.total_tiles,
            "total_cycles": plan.total_cycles,
            "utilization": plan.utilization,
        },
    }
    golden_check("packed_model_lenet5", payload)


@pytest.mark.parametrize("network", ["vgg", "resnet20"])
@pytest.mark.parametrize("grouping_engine,prune_engine", ENGINE_COMBOS)
def test_workload_execution_plan_matches_golden(golden_check, network,
                                                grouping_engine, prune_engine):
    """Cycle-level plans of the full-size VGG / ResNet-20 workloads."""
    layers = sparse_network(network, density=PAPER_DENSITY[network], seed=0)
    config = PipelineConfig(alpha=8, gamma=0.5, grouping_engine=grouping_engine,
                            prune_engine=prune_engine)
    with PackingPipeline(config) as pipeline:
        result = pipeline.run(layers)
    model = PackedModel.from_pipeline_result(result)
    plan = model.plan(spatial_sizes(layers))
    payload = {
        "layers": {
            execution.name: {
                "packed_columns": execution.packed_columns,
                "num_tiles": execution.num_tiles,
                "cycles": execution.cycles,
                "useful_macs": execution.useful_macs,
                "occupied_macs": execution.occupied_macs,
            }
            for execution in plan.layers
        },
        "totals": {
            "total_tiles": plan.total_tiles,
            "total_cycles": plan.total_cycles,
            "total_useful_macs": plan.total_useful_macs,
            "total_occupied_macs": plan.total_occupied_macs,
            "utilization": plan.utilization,
        },
    }
    golden_check(f"execution_plan_{network}", payload)


def quantized_lenet5():
    """The seeded LeNet-5 quantized-forward scenario the fixture freezes."""
    model = build_model("lenet5", in_channels=1, num_classes=10, scale=1.0,
                        image_size=8, rng=np.random.default_rng(3))
    mask_rng = np.random.default_rng(4)
    for _, layer in model.packable_layers():
        layer.weight.data *= mask_rng.random(layer.weight.data.shape) < 0.5
    rng = np.random.default_rng(7)
    calibration = rng.normal(size=(32, 1, 8, 8))
    batch = rng.normal(size=(64, 1, 8, 8))
    return model, calibration, batch


@pytest.mark.parametrize("grouping_engine,prune_engine", ENGINE_COMBOS)
def test_lenet5_quantized_forward_matches_golden(golden_check, grouping_engine,
                                                 prune_engine):
    """The 8-bit integer forward of a seeded LeNet-5, frozen end to end."""
    model, calibration, batch = quantized_lenet5()
    config = PipelineConfig(alpha=8, gamma=0.5, grouping_engine=grouping_engine,
                            prune_engine=prune_engine)
    quantized = QuantizedPackedModel.from_model(model, config, bits=8)
    quantized.calibrate(calibration)
    outputs = quantized.forward(batch)
    # Agreement straight from the fixture outputs — re-running predict()
    # here would replace the tracked stats the layer report freezes.
    agreement = float(np.mean(np.argmax(outputs, axis=1)
                              == quantized.packed.predict(batch)))
    payload = {
        "bits": 8,
        "predictions": np.argmax(outputs, axis=1).tolist(),
        "first_logits": outputs[0].tolist(),
        "agreement": agreement,
        "layers": {
            report.name: {
                "weight_rmse": report.weight_rmse,
                "input_rmse": report.input_rmse,
                "input_saturation": report.input_saturation,
                "divergence_rmse": report.divergence_rmse,
                "num_tiles": report.num_tiles,
                "cycles": report.cycles,
            }
            for report in quantized.layer_report()
        },
        "calibration_scales": {
            calibration_entry.name: {
                "input_scale": calibration_entry.input_quantizer.scale,
                "weight_scale": calibration_entry.weight_quantizer.scale,
            }
            for calibration_entry in quantized.layer_calibrations()
        },
    }
    golden_check("quantized_forward_lenet5", payload)


def test_golden_fixtures_are_checked_in():
    """The harness must fail loudly if the frozen fixtures go missing."""
    from pathlib import Path

    golden_dir = Path(__file__).resolve().parent / "golden"
    names = {path.name for path in golden_dir.glob("*.json")}
    assert {"packed_layers_64x128.json", "packed_model_lenet5.json",
            "execution_plan_vgg.json", "execution_plan_resnet20.json",
            "quantized_forward_lenet5.json"} <= names
