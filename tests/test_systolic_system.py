"""Tests for the end-to-end systolic array system (planning + quantized execution)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.combining import group_columns, pack_filter_matrix
from repro.nn import PointwiseConv2d, Shift2d
from repro.systolic import ArrayConfig, SystolicSystem


def packed_layer(rng, rows=24, cols=16, density=0.25, alpha=8, gamma=0.5):
    matrix = rng.normal(size=(rows, cols)) * (rng.random((rows, cols)) < density)
    grouping = group_columns(matrix, alpha=alpha, gamma=gamma)
    return matrix, pack_filter_matrix(matrix, grouping)


def test_plan_layer_reports_tiles_cycles_and_macs(rng):
    _, packed = packed_layer(rng, rows=96, cols=94, density=0.16)
    system = SystolicSystem(ArrayConfig(rows=32, cols=32, alpha=8))
    execution = system.plan_layer("layer", packed, spatial_size=16)
    assert execution.rows == 96
    assert execution.packed_columns == packed.num_groups
    assert execution.num_tiles >= 1
    assert execution.cycles > 0
    assert execution.useful_macs <= execution.occupied_macs
    assert execution.occupied_macs == packed.weights.size * 256


def test_plan_model_totals_are_sums(rng):
    layers = [packed_layer(rng)[1] for _ in range(3)]
    system = SystolicSystem(ArrayConfig(rows=32, cols=32, alpha=8))
    plan = system.plan_model([(f"l{i}", p) for i, p in enumerate(layers)], [8, 8, 4])
    assert plan.total_cycles == sum(l.cycles for l in plan.layers)
    assert plan.total_tiles == sum(l.num_tiles for l in plan.layers)
    assert 0 < plan.utilization <= 1


def test_plan_model_requires_matching_spatial_sizes(rng):
    _, packed = packed_layer(rng)
    system = SystolicSystem()
    with pytest.raises(ValueError):
        system.plan_model([("l", packed)], [8, 8])


def test_packed_layer_plan_needs_fewer_cycles_than_baseline(rng):
    matrix, packed = packed_layer(rng, rows=96, cols=94, density=0.16)
    baseline_grouping = group_columns(matrix, alpha=1, gamma=0.0)
    baseline_packed = pack_filter_matrix(matrix, baseline_grouping)
    system = SystolicSystem(ArrayConfig(rows=32, cols=32, alpha=8))
    packed_plan = system.plan_layer("packed", packed, 16)
    baseline_plan = system.plan_layer("baseline", baseline_packed, 16)
    assert packed_plan.cycles < baseline_plan.cycles
    assert packed_plan.num_tiles < baseline_plan.num_tiles
    assert packed_plan.utilization > baseline_plan.utilization


def test_run_layer_matches_float_reference_within_quantization_error(rng):
    """Quantized integer execution through the packed array must match the
    float shift + pointwise layer up to 8-bit quantization error."""
    in_channels, out_channels = 12, 20
    matrix = rng.normal(size=(out_channels, in_channels)) * \
        (rng.random((out_channels, in_channels)) < 0.4)
    grouping = group_columns(matrix, alpha=8, gamma=0.5)
    packed = pack_filter_matrix(matrix, grouping)
    pruned = packed.to_sparse()

    activations = rng.normal(size=(4, in_channels, 6, 6))
    system = SystolicSystem(ArrayConfig(rows=32, cols=32, alpha=8))
    output, info = system.run_layer(packed, activations, apply_shift=True, apply_relu=True)

    shift = Shift2d(in_channels)
    reference = np.maximum(
        np.einsum("nc,bchw->bnhw", pruned, shift.forward(activations)), 0.0)
    scale = np.abs(reference).max()
    assert np.abs(output - reference).max() < 0.05 * scale + 1e-9
    assert info["num_tiles"] >= 1
    assert 0 < info["utilization"] <= 1


def test_run_layer_without_shift_or_relu(rng):
    matrix = rng.normal(size=(8, 6))
    grouping = group_columns(matrix, alpha=4, gamma=0.5)
    packed = pack_filter_matrix(matrix, grouping)
    activations = rng.normal(size=(2, 6, 3, 3))
    system = SystolicSystem(ArrayConfig(rows=16, cols=16, alpha=4))
    output, _ = system.run_layer(packed, activations, apply_shift=False, apply_relu=False)
    reference = np.einsum("nc,bchw->bnhw", packed.to_sparse(), activations)
    assert np.abs(output - reference).max() < 0.05 * np.abs(reference).max() + 1e-9
    assert np.any(output < 0)  # ReLU really was skipped


def test_run_layer_validates_activation_shape(rng):
    _, packed = packed_layer(rng, rows=8, cols=6)
    system = SystolicSystem()
    with pytest.raises(ValueError):
        system.run_layer(packed, rng.normal(size=(2, 5, 3, 3)))
    with pytest.raises(ValueError):
        system.run_layer(packed, rng.normal(size=(2, 6, 3)))
