"""Tests for the bit-serial timing model (Figures 8 and 9)."""

from __future__ import annotations

import pytest

from repro.systolic.timing import (
    CellTiming,
    cycles_for_tile,
    first_output_cycles,
    tiles_along,
    words_per_sample,
)


def test_balanced_cell_has_no_idle_gap():
    timing = CellTiming(input_bits=8, accumulation_bits=8, interleaved=False)
    assert timing.effective_cycles_per_word == 8
    assert timing.idle_gap_cycles == 0


def test_unbalanced_cell_has_24_cycle_gap():
    timing = CellTiming(input_bits=8, accumulation_bits=32, interleaved=False)
    assert timing.effective_cycles_per_word == 32
    assert timing.idle_gap_cycles == 24


def test_interleaved_cell_restores_word_rate():
    timing = CellTiming(input_bits=8, accumulation_bits=32, interleaved=True)
    assert timing.effective_cycles_per_word == 8
    assert timing.interleave_factor == 4
    assert timing.idle_gap_cycles == 0


def test_16bit_accumulation_interleave_factor_is_two():
    timing = CellTiming(input_bits=8, accumulation_bits=16)
    assert timing.interleave_factor == 2


def test_timing_validation():
    with pytest.raises(ValueError):
        CellTiming(input_bits=0)
    with pytest.raises(ValueError):
        CellTiming(input_bits=8, accumulation_bits=4)
    with pytest.raises(ValueError):
        CellTiming(skew_clocks=0)


def test_tile_cycles_breakdown():
    timing = CellTiming()
    tile = cycles_for_tile(32, 32, 1024, timing)
    assert tile.fill_cycles == 62          # (32 + 32 - 2) x 1-clock skew
    assert tile.stream_cycles == 8192      # 1024 words x 8 cycles
    assert tile.drain_cycles == 32
    assert tile.weight_load_cycles == 32 * 8
    assert tile.matmul_cycles == 62 + 8192 + 32
    assert tile.total_cycles == tile.matmul_cycles + 256


def test_tile_cycles_scale_linearly_with_words():
    small = cycles_for_tile(16, 16, 100)
    large = cycles_for_tile(16, 16, 200)
    assert large.stream_cycles == 2 * small.stream_cycles
    assert large.fill_cycles == small.fill_cycles


def test_fewer_columns_means_fewer_fill_cycles():
    wide = cycles_for_tile(32, 94, 100)
    narrow = cycles_for_tile(32, 17, 100)
    assert narrow.fill_cycles < wide.fill_cycles


def test_tile_cycle_validation():
    with pytest.raises(ValueError):
        cycles_for_tile(0, 4, 10)
    with pytest.raises(ValueError):
        cycles_for_tile(4, 4, -1)


def test_zero_words_tile_does_no_matmul_work():
    # A degenerate tile that streams no data performs no multiplication,
    # so it must not charge fill / drain cycles into TiledMatmul totals.
    tile = cycles_for_tile(4, 4, 0)
    assert tile.fill_cycles == 0
    assert tile.stream_cycles == 0
    assert tile.drain_cycles == 0
    assert tile.matmul_cycles == 0


def test_single_word_tile_still_pays_fill_and_drain():
    tile = cycles_for_tile(4, 4, 1)
    assert tile.fill_cycles == 6
    assert tile.drain_cycles == 32
    assert tile.matmul_cycles == 6 + 8 + 32


def test_first_output_cycles_is_input_word_plus_column_skew():
    timing = CellTiming()
    assert first_output_cycles(1, timing) == 8
    assert first_output_cycles(17, timing) == 8 + 16
    with pytest.raises(ValueError):
        first_output_cycles(0)


def test_words_per_sample_is_spatial_area_times_batch():
    assert words_per_sample(32) == 1024
    assert words_per_sample(8, batch=4) == 256
    with pytest.raises(ValueError):
        words_per_sample(0)


def test_tiles_along():
    assert tiles_along(94, 32) == 3
    assert tiles_along(32, 32) == 1
    assert tiles_along(0, 32) == 0
